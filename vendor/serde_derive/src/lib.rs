//! Offline stand-in for `serde_derive`.
//!
//! Derives the simplified `serde::Serialize`/`serde::Deserialize` traits
//! defined by the workspace's vendored `serde` crate. No `syn`/`quote`:
//! the input token stream is parsed by hand, which is sufficient for the
//! shapes this workspace derives on — plain structs (named, tuple, or unit)
//! without generic parameters.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a struct looks like after parsing.
enum Shape {
    /// `struct S { a: T, b: U }` with the field names in order.
    Named(Vec<String>),
    /// `struct S(T, U);` with the field count.
    Tuple(usize),
    /// `struct S;`
    Unit,
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Parses `[attrs] [pub] struct Name [{...} | (...) ;]`.
fn parse_struct(input: TokenStream) -> Result<Parsed, String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(n)) => break n.to_string(),
                other => return Err(format!("expected struct name, got {other:?}")),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return Err("derive on enums is not supported by the vendored serde_derive".into())
            }
            Some(other) => return Err(format!("unexpected token before struct: {other}")),
            None => return Err("ran out of tokens looking for `struct`".into()),
        }
    };
    // Generic structs would need `<...>` handling; none exist in this repo.
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err("generic structs are not supported by the vendored serde_derive".into());
        }
    }
    let shape = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(named_fields(g.stream())?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => return Err(format!("expected struct body, got {other:?}")),
    };
    Ok(Parsed { name, shape })
}

/// Splits a brace-group token stream into fields at top-level commas,
/// tracking `<`/`>` depth so commas inside generic types don't split.
fn split_fields(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut fields = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    fields.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        fields.push(current);
    }
    fields
}

/// Field names of a named struct: for each comma-separated field, the last
/// identifier before the first top-level `:`.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for field in split_fields(stream) {
        let mut name: Option<String> = None;
        let mut i = 0;
        while i < field.len() {
            match &field[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => i += 1, // attr marker; group skipped below
                TokenTree::Group(_) => {}
                TokenTree::Punct(p) if p.as_char() == ':' => break,
                TokenTree::Ident(id) if id.to_string() != "pub" => {
                    name = Some(id.to_string());
                }
                _ => {}
            }
            i += 1;
        }
        names.push(name.ok_or("field without a name")?);
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_fields(stream).len()
}

/// `#[derive(Serialize)]` — emits an impl of the vendored
/// `serde::Serialize` (`fn to_value(&self) -> serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — emits an impl of the vendored
/// `serde::Deserialize` (`fn from_value(&serde::Value) -> Result<Self, _>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let bindings: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             value.field(\"{f}\").ok_or(::serde::DeError::MissingField(\"{f}\"))?\
                         )?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", bindings.join(", "))
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Tuple(n) => {
            let bindings: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                             value.element({i}).ok_or(::serde::DeError::MissingField(\"{i}\"))?\
                         )?"
                    )
                })
                .collect();
            format!("Ok({name}({}))", bindings.join(", "))
        }
        Shape::Unit => format!("Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}
