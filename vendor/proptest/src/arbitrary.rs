//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the type's whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut StdRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut StdRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, broad magnitude spread: mantissa in [0,1) times 2^[-64, 64).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.next_u64() % 128) as i32 - 64;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * unit * (exp as f64).exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + (rng.next_u64() % 0x5f) as u8) as char
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
