//! Fixed-size array strategies (`uniform4`, `uniform20`, …).

use crate::strategy::Strategy;
use rand::rngs::StdRng;

/// An `[S::Value; N]` strategy sampling each slot independently.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

/// Generic constructor behind the `uniformN` helpers.
pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
    UniformArray { element }
}

macro_rules! uniform_fns {
    ($(($name:ident, $n:literal)),*) => {$(
        /// Array strategy of the arity the name says.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            uniform(element)
        }
    )*};
}

uniform_fns!(
    (uniform1, 1),
    (uniform2, 2),
    (uniform3, 3),
    (uniform4, 4),
    (uniform5, 5),
    (uniform6, 6),
    (uniform7, 7),
    (uniform8, 8),
    (uniform12, 12),
    (uniform16, 16),
    (uniform20, 20),
    (uniform24, 24),
    (uniform32, 32)
);
