//! String generation from a small regex subset.
//!
//! Supported syntax — enough for the patterns in this workspace's tests:
//! literal characters, `\x` escapes (always literal), character classes
//! `[a-zA-Z0-9]` (ranges and singletons, no negation), groups `(...)` with
//! `|` alternation (including empty branches), and the quantifiers `{m}`,
//! `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8 repetitions).

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Node {
    /// Concatenation.
    Seq(Vec<Node>),
    /// Alternation (uniform choice between branches).
    Alt(Vec<Node>),
    /// One literal character.
    Lit(char),
    /// Character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// `node{min,max}` with `max` inclusive.
    Repeat(Box<Node>, usize, usize),
}

/// Generates one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let node = parse_alt(&chars, &mut pos);
    assert!(
        pos == chars.len(),
        "unsupported regex tail {:?} in pattern {pattern:?}",
        &chars[pos..].iter().collect::<String>()
    );
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Seq(parts) => {
            for part in parts {
                emit(part, rng, out);
            }
        }
        Node::Alt(branches) => {
            let pick = rng.gen_range(0..branches.len());
            emit(&branches[pick], rng, out);
        }
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick).expect("class char"));
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick within total");
        }
        Node::Repeat(inner, min, max) => {
            let n = if min == max {
                *min
            } else {
                rng.gen_range(*min..=*max)
            };
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

// ---- Parser ---------------------------------------------------------------

fn parse_alt(chars: &[char], pos: &mut usize) -> Node {
    let mut branches = vec![parse_seq(chars, pos)];
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        branches.push(parse_seq(chars, pos));
    }
    if branches.len() == 1 {
        branches.pop().expect("one branch")
    } else {
        Node::Alt(branches)
    }
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Node {
    let mut parts = Vec::new();
    while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
        let atom = parse_atom(chars, pos);
        parts.push(parse_quantifier(chars, pos, atom));
    }
    Node::Seq(parts)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_alt(chars, pos);
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "unclosed group in pattern"
            );
            *pos += 1;
            inner
        }
        '[' => {
            *pos += 1;
            let mut ranges = Vec::new();
            while *pos < chars.len() && chars[*pos] != ']' {
                let lo = if chars[*pos] == '\\' {
                    *pos += 1;
                    chars[*pos]
                } else {
                    chars[*pos]
                };
                *pos += 1;
                if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                    let hi = chars[*pos + 1];
                    assert!(lo <= hi, "inverted class range {lo}-{hi}");
                    ranges.push((lo, hi));
                    *pos += 2;
                } else {
                    ranges.push((lo, lo));
                }
            }
            assert!(*pos < chars.len(), "unclosed class in pattern");
            *pos += 1; // ']'
            assert!(!ranges.is_empty(), "empty character class");
            Node::Class(ranges)
        }
        '\\' => {
            *pos += 1;
            let c = chars[*pos];
            *pos += 1;
            Node::Lit(c)
        }
        '.' => {
            *pos += 1;
            Node::Class(vec![(' ', '~')])
        }
        c => {
            *pos += 1;
            Node::Lit(c)
        }
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
    if *pos >= chars.len() {
        return atom;
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        '*' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 8)
        }
        '+' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, 8)
        }
        '{' => {
            *pos += 1;
            let mut min = String::new();
            while chars[*pos].is_ascii_digit() {
                min.push(chars[*pos]);
                *pos += 1;
            }
            let min: usize = min.parse().expect("quantifier min");
            let max = if chars[*pos] == ',' {
                *pos += 1;
                let mut max = String::new();
                while chars[*pos].is_ascii_digit() {
                    max.push(chars[*pos]);
                    *pos += 1;
                }
                max.parse().expect("quantifier max")
            } else {
                min
            };
            assert!(chars[*pos] == '}', "unclosed quantifier");
            *pos += 1;
            Node::Repeat(Box::new(atom), min, max)
        }
        _ => atom,
    }
}

#[cfg(test)]
mod tests {
    use super::sample_pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_with_counted_repeat() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let s = sample_pattern("[a-zA-Z0-9]{0,80}", &mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn grouped_alternation_with_escapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_empty = false;
        let mut saw_nonempty = false;
        for _ in 0..300 {
            let s = sample_pattern("[a-z]{1,12}\\((uint256|string|address)?\\)", &mut rng);
            let open = s.find('(').expect("open paren");
            assert!(s.ends_with(')'));
            assert!((1..=12).contains(&open));
            let arg = &s[open + 1..s.len() - 1];
            assert!(matches!(arg, "" | "uint256" | "string" | "address"), "{s}");
            if arg.is_empty() {
                saw_empty = true;
            } else {
                saw_nonempty = true;
            }
        }
        assert!(saw_empty && saw_nonempty);
    }

    #[test]
    fn plain_literals_pass_through() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_pattern("hello", &mut rng), "hello");
    }
}
