//! Sampling helpers: `Index` (a length-agnostic index) and `select`.

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// An index drawn independently of any particular collection length;
/// callers scale it with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Maps this draw onto `0..len`. Panics if `len` is zero, matching the
    /// real proptest behavior.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Index {
        Index(rng.next_u64())
    }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// Uniform choice from a fixed list.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty list");
    Select { options }
}
