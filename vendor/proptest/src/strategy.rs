//! The [`Strategy`] trait and its combinators. Sampling only — no shrink
//! trees; every strategy is just "deterministically draw a value from an RNG".

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Attempts a `prop_filter` predicate is given before the runner declares
/// the strategy unsatisfiable.
const MAX_FILTER_ATTEMPTS: usize = 10_000;

/// A generator of values for property tests.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (resampling up to a bounded number of
    /// attempts). `label` appears in the panic if the filter starves.
    fn prop_filter<F>(self, label: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            label,
            pred,
        }
    }

    /// Feeds each generated value into `f` to build a second strategy, then
    /// samples that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `f` receives the strategy built so far and
    /// wraps it one level deeper, up to `depth` levels. `_desired_size` and
    /// `_expected_branch_size` are accepted for API parity and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = f(current).boxed();
            let fallback = leaf.clone();
            current = BoxedStrategy::new(move |rng| {
                // 1-in-4 early leaf keeps expected sizes small while still
                // reaching the full depth regularly.
                if rng.gen_range(0u32..4) == 0 {
                    fallback.sample(rng)
                } else {
                    branch.sample(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    label: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let candidate = self.inner.sample(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {MAX_FILTER_ATTEMPTS} samples in a row",
            self.label
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling function.
    pub fn new(f: impl Fn(&mut StdRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy {
            sampler: Rc::new(f),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.sampler)(rng)
    }
}

/// Uniform choice between equally-weighted boxed strategies
/// (the expansion of `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].sample(rng)
    }
}

// ---- Ranges as strategies -------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---- Tuples of strategies -------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---- Strings from regex-like patterns ------------------------------------

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}
