//! `Option` strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
        // Match proptest's default: None roughly one time in five.
        if rng.gen_range(0u32..5) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// `Some` of the inner strategy most of the time, `None` occasionally.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
