//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Inclusive-exclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (exclusive).
    pub max_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.min + 1 >= self.max_exclusive {
            self.min
        } else {
            rng.gen_range(self.min..self.max_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

/// `Vec` strategy with element strategy and length bounds.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector of values from `element`, with length drawn from `size`
/// (a `usize` for an exact length, or a `usize` range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// `BTreeSet` strategy.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        // Inserting duplicates can leave the set short of `target`; bounded
        // extra draws recover the common cases without risking livelock on
        // small domains.
        for _ in 0..target * 8 + 8 {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.sample(rng));
        }
        out
    }
}

/// A set of values from `element` whose size is drawn from `size`
/// (best effort when the element domain is smaller than the request).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
