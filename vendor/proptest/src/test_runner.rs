//! Runner configuration (`ProptestConfig` in the prelude).

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Cases per property.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Config {
        // The real default (256) is overkill for deterministic sampling
        // without shrinking; 64 keeps `cargo test` fast.
        Config { cases: 64 }
    }
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}
