//! Offline stand-in for `proptest`.
//!
//! The container has no crates.io access, so this crate reimplements the
//! slice of the proptest API the workspace's property tests use:
//!
//! - [`proptest!`] with an optional `#![proptest_config(...)]` header,
//! - [`strategy::Strategy`] with `prop_map` / `prop_filter` /
//!   `prop_flat_map` / `prop_recursive` / `boxed`,
//! - [`arbitrary::any`], integer/float range strategies, tuple strategies,
//! - [`collection::vec`], [`collection::btree_set`], [`array::uniform4`]-style
//!   fixed arrays, [`option::of`], [`sample::select`], [`sample::Index`],
//! - string strategies from a small regex subset (`"[a-z]{1,12}"`, groups,
//!   alternation, `?`/`*`/`+`/`{m,n}` quantifiers),
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Cases are generated deterministically from the test's name, so runs are
//! reproducible without an environment variable protocol. There is **no
//! shrinking**: a failing case panics with its case index, which is enough
//! to re-run and debug a deterministic failure.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// The `proptest!` macro expands inside user crates that may not depend on
// `rand` themselves; route all rand paths through this re-export.
#[doc(hidden)]
pub use rand as __rand;

/// FNV-1a over a byte string — stable test-name seeding.
#[doc(hidden)]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///     #[test]
///     fn my_property(a in strategy_a(), b in 0usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)).as_bytes());
                for __case in 0..__config.cases {
                    let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        __seed ^ (__case as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted union of strategies with identical value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 5usize..10, b in -3i64..3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((-3..3).contains(&b));
        }

        #[test]
        fn map_and_filter_compose(
            v in (0u64..1000).prop_map(|x| x * 2).prop_filter("nonzero", |&x| x != 0),
        ) {
            prop_assert!(v % 2 == 0 && v != 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn collections_respect_sizes(
            xs in crate::collection::vec(any::<u8>(), 3..6),
            set in crate::collection::btree_set(0usize..100, 1..4),
            arr in crate::array::uniform4(any::<u64>()),
            opt in crate::option::of(1u32..5),
            pick in crate::sample::select(vec![10usize, 20, 30]),
            idx in any::<crate::sample::Index>(),
        ) {
            prop_assert!(xs.len() >= 3 && xs.len() < 6);
            prop_assert!(!set.is_empty() && set.len() < 4);
            prop_assert_eq!(arr.len(), 4);
            if let Some(v) = opt { prop_assert!((1..5).contains(&v)); }
            prop_assert!([10, 20, 30].contains(&pick));
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn regex_strings_match_shape(
            s in "[a-z]{2,5}",
            sig in "[a-z]{1,4}\\((uint256|string)?\\)",
        ) {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(sig.ends_with(')') && sig.contains('('));
        }

        #[test]
        fn flat_map_threads_values(
            t in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
                crate::collection::vec(0u8..255, r * c).prop_map(move |v| (r, c, v))
            }),
        ) {
            prop_assert_eq!(t.2.len(), t.0 * t.1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1_000_000, 5);
        let sample = |seed: u64| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            strat.sample(&mut rng)
        };
        assert_eq!(sample(1), sample(1));
        assert_ne!(sample(1), sample(2));
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::Strategy;
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 64, 8, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        for _ in 0..200 {
            assert!(depth(&strat.sample(&mut rng)) <= 4 + 1);
        }
    }
}
