//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! subset of the `rand 0.8` API the OFL-W3 sources use is reimplemented
//! here from scratch: [`rngs::StdRng`] (an xoshiro256** generator),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The streams are **not** bit-compatible with the real `rand` crate — they
//! only promise what the simulator needs: determinism for a given seed,
//! uniformity good enough for data partitioning and Monte-Carlo sampling,
//! and identical results across platforms.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics if the range is empty, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
        self.start + v
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding landing exactly on the excluded end.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**,
    /// seeded through SplitMix64 exactly as the xoshiro reference code
    /// recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let g: f32 = rng.gen_range(-1.5..1.5f32);
            assert!((-1.5..1.5).contains(&g));
        }
    }

    #[test]
    fn range_samples_cover_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "seed 9 should move something"
        );
    }

    #[test]
    fn trait_object_compatible_call_through_ref() {
        let mut rng = StdRng::seed_from_u64(3);
        // The crate's call sites pass `&mut rng`; make sure that compiles.
        fn takes_rng<R: Rng>(r: &mut R) -> u64 {
            r.gen_range(0u64..10)
        }
        assert!(takes_rng(&mut rng) < 10);
    }
}
