//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — backed
//! by a simple adaptive timing loop instead of criterion's full statistical
//! machinery. Results print as `name  time/iter  (throughput)` lines.
//!
//! Like the real crate, bench targets also build under `cargo test`, where
//! each registered function runs exactly once for a smoke check.

use std::time::{Duration, Instant};

/// An opaque identity function the optimizer cannot see through.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration annotation used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// The timing loop: runs `f` until ~`target_time` is spent, returns
/// (iterations, total elapsed).
fn measure<O>(mut f: impl FnMut() -> O, target_time: Duration) -> (u64, Duration) {
    // Warm-up and per-iteration estimate.
    let warmup_start = Instant::now();
    black_box(f());
    let per_iter = warmup_start.elapsed().max(Duration::from_nanos(1));
    let iters = (target_time.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    (iters, start.elapsed())
}

fn render_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher<'a> {
    label: String,
    throughput: Option<Throughput>,
    target_time: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Times the closure and prints one result line.
    pub fn iter<O>(&mut self, f: impl FnMut() -> O) {
        let (iters, elapsed) = measure(f, self.target_time);
        self.report(iters, elapsed);
    }

    /// Runs `setup` outside the timed region, timing only `routine`.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        // Estimate from one warm-up iteration of the routine alone.
        let input = setup();
        let warmup_start = Instant::now();
        black_box(routine(input));
        let per_iter = warmup_start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_time.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut timed = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
        }
        self.report(iters, timed);
    }

    fn report(&self, iters: u64, elapsed: Duration) {
        let nanos = elapsed.as_nanos() as f64 / iters as f64;
        let throughput = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gib = bytes as f64 / nanos; // bytes/ns == GB/s
                format!("  ({gib:.3} GB/s)")
            }
            Some(Throughput::Elements(n)) => {
                let me = n as f64 / nanos * 1e3; // elements/ns -> M elem/s
                format!("  ({me:.1} M elem/s)")
            }
            None => String::new(),
        };
        println!(
            "bench: {:<44} {:>12}/iter{throughput}  [{iters} iters]",
            self.label,
            render_time(nanos)
        );
    }
}

/// Top-level bench registry (the stub keeps only configuration).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// In smoke mode (under `cargo test`) everything runs once.
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            smoke: cfg!(test) || std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Builder-style sample-size knob (scales the per-bench time budget).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    fn target_time(&self) -> Duration {
        if self.smoke {
            Duration::ZERO
        } else {
            // ~0.3 ms of measurement per sample-size unit: the default 100
            // gives ~30 ms per bench — coarse but comparable run to run.
            Duration::from_micros(300) * self.sample_size as u32
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            label: name.into(),
            throughput: None,
            target_time: self.target_time(),
            _marker: std::marker::PhantomData,
        };
        f(&mut bencher);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            target_time: self.target_time(),
            _criterion: self,
        }
    }

    /// Final report hook (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    target_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Scales the group's time budget, mirroring `Criterion::sample_size`.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if self.target_time > Duration::ZERO {
            self.target_time = Duration::from_micros(300) * (n.max(1)) as u32;
        }
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            label: format!("{}/{}", self.name, name.into()),
            throughput: self.throughput,
            target_time: self.target_time,
            _marker: std::marker::PhantomData,
        };
        f(&mut bencher);
        self
    }

    /// Closes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a bench group function, in either criterion form:
/// `criterion_group!(benches, f, g)` or
/// `criterion_group!(name = benches; config = ...; targets = f, g)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the bench binary's `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u32;
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 1);
    }

    #[test]
    fn groups_prefix_names_and_apply_throughput() {
        let mut criterion = Criterion::default().sample_size(10);
        let mut group = criterion.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn render_time_units() {
        assert!(render_time(12.0).ends_with("ns"));
        assert!(render_time(12_000.0).ends_with("µs"));
        assert!(render_time(12_000_000.0).ends_with("ms"));
        assert!(render_time(12_000_000_000.0).ends_with(" s"));
    }
}
