//! Offline stand-in for `serde_json`: serializes the vendored
//! [`serde::Value`] tree to JSON text. Non-finite floats become `null`,
//! matching what `serde_json` does for `f64::NAN` under its default
//! configuration when going through `Value`.

use serde::{Serialize, Value};

/// Serialization failure (kept for API parity; rendering never fails).
#[derive(Debug)]
pub struct Error(&'static str);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                // Keep integral floats recognizable as floats, like serde_json.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => write_seq(items.iter(), indent, depth, out, '[', ']', |v, o, d| {
            write_value(v, indent, d, o)
        }),
        Value::Object(entries) => write_seq(
            entries.iter(),
            indent,
            depth,
            out,
            '{',
            '}',
            |(k, v), o, d| {
                write_escaped(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, indent, d, o);
            },
        ),
    }
}

fn write_seq<I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        newline_indent(indent, depth + 1, out);
        write_item(item, out, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    newline_indent(indent, depth, out);
    out.push(close);
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("ofl".into())),
            ("n".into(), Value::UInt(10)),
            ("acc".into(), Value::Float(0.9387)),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"ofl","n":10,"acc":0.9387}"#
        );
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = Value::Object(vec![("xs".into(), Value::Array(vec![Value::Int(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"xs\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn nan_becomes_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_quotes() {
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), r#""a\"b""#);
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }
}
