//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this vendored replacement uses a
//! concrete JSON-like [`Value`] tree: `Serialize` maps a type into a
//! [`Value`], `Deserialize` maps a [`Value`] back. `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` keep working through the sibling `serde_derive`
//! stub, and the vendored `serde_json` renders [`Value`] as JSON text.
//!
//! The surface is deliberately small — exactly what the OFL-W3 experiment
//! records and primitive types need — but the trait names and derive syntax
//! match the real crate, so swapping the real serde back in later is a
//! manifest change, not a source change.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up an array element by index.
    pub fn element(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub enum DeError {
    /// Wrong variant for the target type.
    TypeMismatch(&'static str),
    /// Missing object field / array element.
    MissingField(&'static str),
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeError::TypeMismatch(what) => write!(f, "type mismatch: expected {what}"),
            DeError::MissingField(name) => write!(f, "missing field {name}"),
        }
    }
}

impl std::error::Error for DeError {}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---- Serialize impls ------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls ----------------------------------------------------

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::TypeMismatch("bool")),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(v) => Ok(*v as $t),
                    Value::UInt(v) => Ok(*v as $t),
                    _ => Err(DeError::TypeMismatch(stringify!($t))),
                }
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::UInt(v) => Ok(*v as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::TypeMismatch("f64")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::TypeMismatch("string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::TypeMismatch("array")),
        }
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(DeError::TypeMismatch("fixed-size array")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn arrays_roundtrip() {
        let a = [1u8, 2, 3];
        let v = a.to_value();
        assert_eq!(<[u8; 3]>::from_value(&v).unwrap(), a);
        assert_eq!(
            <[u8; 2]>::from_value(&v),
            Err(DeError::TypeMismatch("fixed-size array"))
        );
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Str("x".into())),
        ]);
        assert_eq!(v.field("b"), Some(&Value::Str("x".into())));
        assert_eq!(v.field("c"), None);
    }

    #[test]
    fn option_none_is_null() {
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }
}
