//! Model sharing over IPFS: content addressing, integrity verification, and
//! tamper detection — the substrate behind the paper's Steps 2–6.
//!
//! A model owner trains a network, serializes it (317 KB, as in §4.4), adds
//! it to the IPFS swarm, and shares only the CID. The buyer fetches by CID,
//! the blocks verify against their hashes in transit, and the decoded model
//! predicts identically to the original. A tampered block is rejected.
//!
//! Run with: `cargo run --release --example model_sharing`

use ofl_w3::data::mnist;
use ofl_w3::fl::client::{train_local, TrainConfig};
use ofl_w3::ipfs::cid::Cid;
use ofl_w3::ipfs::swarm::{IpfsNode, Swarm};
use ofl_w3::tensor::serialize::{decode_model, encode_model};

fn main() {
    println!("=== training a model to share ===");
    let (train, test) = mnist::generate(7, 1_000, 300);
    let cfg = TrainConfig {
        dims: vec![784, 100, 10],
        epochs: 5,
        ..TrainConfig::default()
    };
    let trained = train_local(&train, &cfg);
    let acc = trained.model.accuracy(&test.images, &test.labels);
    println!(
        "owner's local model: {:.1} % test accuracy, {} parameters",
        acc * 100.0,
        trained.model.param_count()
    );

    println!("\n=== sharing over IPFS ===");
    let bytes = encode_model(&trained.model);
    println!(
        "serialized model: {} bytes (the paper reports 317 KB)",
        bytes.len()
    );
    let mut swarm = Swarm::new();
    let owner = swarm.add_node(IpfsNode::new("owner"));
    let buyer = swarm.add_node(IpfsNode::new("buyer"));
    let added = swarm.node_mut(owner).add(&bytes);
    println!(
        "added as {} blocks; root CID (goes on-chain): {}",
        added.blocks, added.root
    );
    // 317 KB exceeds the 256 KiB chunk size → multi-block DAG with a CIDv1
    // root (`b…`), as `ipfs add --cid-version=1` produces. Files under one
    // chunk get classic 46-char `Qm…` CIDv0 identifiers.
    assert_eq!(added.root.version(), 1);
    assert_eq!(added.blocks, 3, "2 leaves + 1 root");

    println!("\n=== buyer retrieves by CID ===");
    let (fetched, stats) = swarm
        .fetch(buyer, &added.root)
        .expect("all blocks available");
    println!(
        "fetched {} blocks / {} bytes in {} want-list rounds from {:?}",
        stats.blocks_fetched,
        stats.bytes_fetched,
        stats.rounds,
        stats.providers.keys().collect::<Vec<_>>()
    );
    let restored = decode_model(&fetched).expect("valid model bytes");
    assert_eq!(restored, trained.model, "bit-exact model transfer");
    let restored_acc = restored.accuracy(&test.images, &test.labels);
    println!(
        "restored model predicts identically: {:.1} % accuracy  ✓",
        restored_acc * 100.0
    );

    println!("\n=== tamper detection ===");
    let mut corrupt = fetched.clone();
    corrupt[1000] ^= 0xff;
    let honest_cid = Cid::v0_of(&fetched);
    let corrupt_cid = Cid::v0_of(&corrupt);
    println!("honest  CID: {honest_cid}");
    println!("corrupt CID: {corrupt_cid}");
    assert_ne!(honest_cid, corrupt_cid);
    // A malicious node cannot serve corrupted bytes under the honest CID:
    // the blockstore verifies hashes on insert.
    let mut mallory = IpfsNode::new("mallory");
    let result = mallory
        .store_mut()
        .put(added.root.clone(), corrupt[..].to_vec());
    println!("storing corrupt bytes under the honest CID: {result:?}  (rejected ✓)");
    assert!(result.is_err());
}
