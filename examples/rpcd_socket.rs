//! Out-of-process backend walkthrough: launch the `rpcd` node daemon,
//! mount it as a `ShardSpec::Remote` endpoint of a world's provider pool,
//! and drive the complete 7-step marketplace workflow **through the
//! socket** — then run the identical configuration in-process and show the
//! two runs are indistinguishable, down to the RPC metering.
//!
//! The daemon here is served on a background thread by the same
//! `serve_listener` loop the standalone `rpcd` binary runs; point
//! `RemoteEndpoint::Tcp` at `rpcd --tcp 127.0.0.1:8945` for the true
//! two-process version.
//!
//! Run: `cargo run --example rpcd_socket`

use ofl_w3::core::config::MarketConfig;
use ofl_w3::core::engine::{EngineConfig, MultiMarket};
use ofl_w3::core::world::ShardSpec;
use ofl_w3::rpc::RemoteEndpoint;

fn main() {
    // A small two-market fleet: market 0 stays on the in-process shard,
    // market 1 is placed on the shard the daemon serves.
    let base = MarketConfig {
        n_owners: 3,
        n_train: 300,
        n_test: 100,
        seed: 7,
        train: ofl_w3::fl::client::TrainConfig {
            dims: vec![784, 16, 10],
            epochs: 1,
            ..ofl_w3::fl::client::TrainConfig::default()
        },
        ..MarketConfig::small_test()
    };
    let configs = || MultiMarket::replica_configs(&base, 2, 2);

    // 1. The node daemon: one TCP listener, one connection to serve.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    println!("rpcd listening on tcp://{addr} (background thread running the binary's serve loop)");
    let server = std::thread::spawn(move || ofl_w3::rpcd::serve_listener(listener, Some(1)));

    // 2. A world whose pool mixes one local shard with one remote shard.
    //    `World::from_shards` connects, sends a Provision frame carrying
    //    the shard's chain parameters + genesis, and from then on every
    //    contract call, transaction broadcast, receipt poll, IPFS transfer,
    //    and backstage mining op for that shard crosses the socket.
    let mut shard = 0usize;
    let endpoint = RemoteEndpoint::Tcp(addr);
    let remote_fleet = MultiMarket::with_shards_via(configs(), 2, |config| {
        shard += 1;
        if shard == 2 {
            ShardSpec::Remote {
                endpoint: endpoint.clone(),
                config,
            }
        } else {
            ShardSpec::Local(config)
        }
    });

    let (mm, remote) = remote_fleet
        .run(&EngineConfig::default(), &[])
        .expect("socket-backed fleet completes");

    println!("\nsocket-backed run:");
    for (m, session) in remote.sessions.iter().enumerate() {
        println!(
            "  market {m}: {} models aggregated at {:.2}% accuracy, {} payments, {:.1} virtual s",
            session.cids.len(),
            session.aggregated_accuracy * 100.0,
            session.payments.len(),
            session.total_sim_seconds,
        );
    }
    for (i, metrics) in remote.rpc_per_endpoint.iter().enumerate() {
        let backend = if i == 1 { "remote (socket)" } else { "local" };
        println!(
            "  endpoint {i} [{backend}]: {} rpc calls, {} round trips, {:.2} virtual s priced",
            metrics.total_calls(),
            metrics.round_trips,
            metrics.total_cost().as_secs_f64(),
        );
    }

    // 3. The same seed, all in-process: the boundary must be invisible.
    let (_, local) = MultiMarket::with_shards(configs(), 2)
        .run(&EngineConfig::default(), &[])
        .expect("in-process fleet completes");
    assert_eq!(remote.total_sim_seconds, local.total_sim_seconds);
    assert_eq!(remote.rpc, local.rpc);
    assert_eq!(remote.cid_txs_per_block, local.cid_txs_per_block);
    for (r, l) in remote.sessions.iter().zip(&local.sessions) {
        assert_eq!(r.cids, l.cids);
        assert_eq!(r.total_sim_seconds, l.total_sim_seconds);
    }
    println!(
        "\nin-process rerun matches bit-for-bit: {} total rpc calls, {:.1} virtual s — \
         the process boundary is invisible to the marketplace",
        local.rpc.total_calls(),
        local.total_sim_seconds,
    );

    drop(mm); // closes the socket; the daemon thread drains and exits
    server.join().expect("daemon thread exits");
}
