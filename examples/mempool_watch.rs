//! Mempool watching over push subscriptions: a funded non-participant
//! opens a `pendingTxs` subscription, sees every `uploadCid` broadcast
//! while it is still in the mempool, and front-runs each one with a junk
//! registration bid at tip + 1 wei — landing *ahead* of the victim in the
//! same block. The junk CIDs are unparseable, so the buyer never retrieves
//! them and the adversary is never paid: visibility is not value.
//!
//! The watched shard is served by the `rpcd` daemon over a real TCP
//! socket, so the pending-tx events cross the wire as `Notify` push
//! frames; an in-process rerun of the same seed then reproduces the
//! identical event stream and outcomes, bit for bit.
//!
//! Run: `cargo run --example mempool_watch`

use ofl_w3::core::config::MarketConfig;
use ofl_w3::core::engine::{EngineConfig, MultiMarket};
use ofl_w3::core::scenario::FailurePlan;
use ofl_w3::core::world::ShardSpec;
use ofl_w3::rpc::RemoteEndpoint;

fn main() {
    // A small two-market fleet. `fund_adversary` gives each market one
    // extra funded account that never trains or sells — the mempool
    // watcher. Only market 1's failure plan actually turns it loose.
    let base = MarketConfig {
        n_owners: 3,
        n_train: 300,
        n_test: 100,
        seed: 11,
        fund_adversary: true,
        train: ofl_w3::fl::client::TrainConfig {
            dims: vec![784, 16, 10],
            epochs: 1,
            ..ofl_w3::fl::client::TrainConfig::default()
        },
        ..MarketConfig::small_test()
    };
    let configs = || MultiMarket::replica_configs(&base, 2, 2);
    let engine = EngineConfig {
        watch_events: true,
        ..EngineConfig::default()
    };
    let failures = vec![
        FailurePlan::clean(),
        FailurePlan {
            mempool_front_run: true,
            ..FailurePlan::default()
        },
    ];

    // The node daemon serving market 1's shard: one TCP listener, one
    // connection — every broadcast, receipt poll, and pending-tx push for
    // that shard crosses this socket.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    println!("rpcd listening on tcp://{addr} (daemon thread serving the watched shard)");
    let server = std::thread::spawn(move || ofl_w3::rpcd::serve_listener(listener, Some(1)));

    let mut shard = 0usize;
    let endpoint = RemoteEndpoint::Tcp(addr);
    let fleet = MultiMarket::with_shards_via(configs(), 2, |config| {
        shard += 1;
        if shard == 2 {
            ShardSpec::Remote {
                endpoint: endpoint.clone(),
                config,
            }
        } else {
            ShardSpec::Local(config)
        }
    });
    let (mm, remote) = fleet
        .run(&engine, &failures)
        .expect("watched fleet completes");

    println!(
        "\n{} push events observed across both shards (digest {:#018x})",
        remote.events_observed, remote.event_digest
    );
    for (m, detail) in remote.details.iter().enumerate() {
        let junk = detail
            .cids_onchain
            .iter()
            .filter(|c| c.starts_with("junk-"))
            .count();
        println!(
            "market {m}: {} front-runs, {} CIDs on-chain ({} junk), {} retrieved, {} paid",
            detail.front_run_count,
            detail.cids_onchain.len(),
            junk,
            detail.cids_retrieved.len(),
            remote.sessions[m].payments.len(),
        );
    }

    // The clean market saw no front-running; the watched market's every
    // honest registration was beaten to its block by a junk bid — which
    // the buyer then skipped at retrieval, so only honest owners got paid.
    assert_eq!(remote.details[0].front_run_count, 0);
    assert_eq!(remote.details[1].front_run_count, base.n_owners);
    assert_eq!(remote.details[1].cids_onchain.len(), 2 * base.n_owners);
    assert!(remote.details[1].cids_onchain[0].starts_with("junk-"));
    assert!(remote.details[1]
        .cids_retrieved
        .iter()
        .all(|c| !c.starts_with("junk-")));
    assert_eq!(remote.sessions[1].payments.len(), base.n_owners);
    println!(
        "\nevery honest uploadCid was front-run, yet the freeloader earned nothing — \
         junk CIDs are never retrieved, never paid"
    );

    // Same seed, all in-process: the socket boundary is invisible to the
    // event stream and to every outcome.
    let (_, local) = MultiMarket::with_shards(configs(), 2)
        .run(&engine, &failures)
        .expect("in-process rerun completes");
    assert_eq!(
        (remote.events_observed, remote.event_digest),
        (local.events_observed, local.event_digest),
        "push event streams must match across backends"
    );
    assert_eq!(remote.total_sim_seconds, local.total_sim_seconds);
    for (r, l) in remote.details.iter().zip(&local.details) {
        assert_eq!(r.cids_onchain, l.cids_onchain);
        assert_eq!(r.cids_retrieved, l.cids_retrieved);
        assert_eq!(r.front_run_count, l.front_run_count);
    }
    println!(
        "in-process rerun reproduces the stream bit-for-bit: {} events, digest {:#018x}",
        local.events_observed, local.event_digest
    );

    drop(mm); // closes the socket; the daemon thread drains and exits
    server.join().expect("daemon thread exits");
}
