//! Quickstart: the complete OFL-W3 workflow in one call.
//!
//! Runs a scaled-down marketplace session — 4 model owners, one buyer,
//! Dirichlet non-IID data — through all seven steps of the paper's workflow:
//! contract deployment, local training, IPFS model sharing, on-chain CID
//! exchange, PFNM one-shot aggregation, LOO contribution assessment, and
//! payment.
//!
//! Run with: `cargo run --release --example quickstart`

use ofl_w3::core::config::MarketConfig;
use ofl_w3::core::market::{render_payment_table, Marketplace};
use ofl_w3::primitives::format_eth;
use ofl_w3::rpc::EndpointId;

fn main() {
    println!("OFL-W3 quickstart: one-shot federated learning on Web 3.0\n");

    let config = MarketConfig::small_test();
    println!(
        "participants: {} model owners + 1 model buyer (budget {} ETH)",
        config.n_owners,
        format_eth(&config.budget_wei, 2)
    );

    let (market, report) = Marketplace::run(config).expect("the session completes");

    println!("\n-- model quality (paper Fig 4) --");
    for (i, acc) in report.local_accuracies.iter().enumerate() {
        println!("  owner {i}: local model accuracy {:.1} %", acc * 100.0);
    }
    println!(
        "  one-shot PFNM aggregate: {:.1} % ({} global neurons)",
        report.aggregated_accuracy * 100.0,
        report.global_neurons
    );

    println!("\n-- on-chain artifacts --");
    println!(
        "  CidStorage contract: {}",
        market.contract.expect("deployed").address.to_checksum()
    );
    for (i, cid) in report.cids.iter().enumerate() {
        println!("  owner {i} model CID: {cid}");
    }

    println!("\n-- gas costs (paper Fig 5) --");
    for g in report.gas.iter().take(3) {
        println!(
            "  {:<14} {:>9} gas  {} ETH",
            g.label,
            g.gas_used,
            format_eth(&g.fee_wei, 8)
        );
    }
    println!("  ... ({} transactions total)", report.gas.len());

    println!("\n-- payments (paper Table 1) --");
    println!("{}", render_payment_table(&report.payments));

    println!("-- time distribution (paper Fig 7) --");
    println!("{}", market.buyer_recorder.render("buyer"));
    println!(
        "total simulated time: {:.0} s across {} blocks",
        report.total_sim_seconds,
        market.world.chain(EndpointId(0)).height()
    );
}
