//! Multi-market walkthrough: several complete marketplace sessions sharing
//! ONE Web 3.0 substrate — one chain, one mempool, one IPFS swarm — driven
//! by the discrete-event session engine.
//!
//! Each market has its own buyer, its own `CidStorage` contract, its own
//! owners and budget; what they share is the world. Owners across all
//! markets train and upload concurrently, their `uploadCid` transactions
//! pile into the shared mempool, and the 12-second slot boundary mines them
//! into shared blocks — so base-fee movement and per-block gas pressure
//! emerge from real contention.
//!
//! Run with: `cargo run --release --example multi_market`

use ofl_w3::core::config::MarketConfig;
use ofl_w3::core::engine::{Arrivals, EngineConfig, MultiMarket};
use ofl_w3::core::scenario::Scenario;
use ofl_w3::fl::client::TrainConfig;
use ofl_w3::netsim::clock::SimDuration;
use ofl_w3::primitives::format_eth;
use ofl_w3::rpc::EndpointId;

fn base_config() -> MarketConfig {
    MarketConfig {
        n_owners: 8,
        n_train: 1600,
        n_test: 300,
        train: TrainConfig {
            dims: vec![784, 32, 10],
            epochs: 2,
            ..TrainConfig::default()
        },
        ..MarketConfig::small_test()
    }
}

fn main() {
    println!("OFL-W3 multi-market worlds: 4 concurrent sessions, one chain\n");

    // 4 markets × 8 owners, decorrelated seeds, everyone arriving at once.
    let mm = MultiMarket::replicated(&base_config(), 4);
    let (mm, report) = mm
        .run(&EngineConfig::default(), &[])
        .expect("all four sessions complete");

    println!("market  owners  aggregate acc  paid (ETH)   session time");
    for (m, session) in report.sessions.iter().enumerate() {
        println!(
            "  m{m}    {:>4}   {:>10.2} %  {:>10}   {:>9.1} s",
            session.payments.len(),
            session.aggregated_accuracy * 100.0,
            format_eth(&session.total_paid(), 6),
            session.total_sim_seconds,
        );
    }
    println!(
        "\nwhole world finished in {:.1} virtual seconds on {} blocks",
        report.total_sim_seconds,
        mm.world.chain(EndpointId(0)).height()
    );

    // Shared blocks: the contention the serial workflow can never create.
    println!("\nCID transactions per block (distinct owners, all markets):");
    for (endpoint, block, owners) in &report.cid_txs_per_block {
        println!(
            "  {endpoint} block {block:>3}: {owners:>2} owners  {}",
            "#".repeat(*owners)
        );
    }
    println!(
        "fullest block carried {} of 32 owners",
        report.max_owners_sharing_block()
    );

    // Compare one of those markets against the serial engine.
    let serial = Scenario::new("serial-8", base_config())
        .run()
        .expect("serial baseline completes");
    let event_secs = report.sessions[0].total_sim_seconds;
    println!(
        "\nserial 8-owner session: {:.1} s of virtual time ({} blockchain waits in a row)",
        serial.total_sim_seconds, 8
    );
    println!(
        "event-driven 8-owner session: {:.1} s  ({:.1}x less virtual time)",
        event_secs,
        serial.total_sim_seconds / event_secs
    );

    // Staggered arrivals: owners trickle in 30 s apart instead.
    let staggered = EngineConfig {
        arrivals: Arrivals::Staggered(SimDuration::from_secs(30)),
        ..EngineConfig::default()
    };
    let (_, rolling) = MultiMarket::new(vec![base_config()])
        .run(&staggered, &[])
        .expect("staggered session completes");
    println!(
        "\nstaggered arrivals (30 s apart): {:.1} s total, fullest block carried {} owner(s)",
        rolling.total_sim_seconds,
        rolling.max_owners_sharing_block()
    );

    // Sharded placement: the same 4 markets, but spread across 2 chains of
    // one provider pool. Each market's traffic — contract calls, wallet
    // signing reads, CID transactions — stays on its own shard, so blocks
    // are only contended by same-shard siblings.
    let (mm, sharded) = MultiMarket::replicated_sharded(&base_config(), 4, 2)
        .run(&EngineConfig::default(), &[])
        .expect("sharded session completes");
    println!(
        "\n4 markets across 2 shards: {:.1} virtual s, CID txs landed on shards {:?}",
        sharded.total_sim_seconds,
        sharded.shards_with_cid_txs()
    );
    for (s, metrics) in sharded.rpc_per_endpoint.iter().enumerate() {
        println!(
            "  shard {s}: {} rpc round trips, {} uploadCid-bearing chain height",
            metrics.round_trips,
            mm.world.chain(EndpointId(s)).height()
        );
    }
}
