//! Gas audit: drive the `CidStorage` contract directly against the
//! blockchain simulator and audit every wei — MetaMask-style confirmation
//! dialogs, receipts, EIP-1559 base-fee dynamics, burn vs tip accounting.
//!
//! This example uses the `ofl-eth` substrate on its own, without the FL
//! layers, showing it works as a general-purpose chain simulator.
//!
//! Run with: `cargo run --release --example gas_audit`

use ofl_w3::eth::chain::{Chain, ChainConfig};
use ofl_w3::eth::contracts::{cid_storage_init_code, CidStorage};
use ofl_w3::eth::wallet::Wallet;
use ofl_w3::primitives::u256::U256;
use ofl_w3::primitives::{format_eth, wei_per_eth};

fn main() {
    let wallet = Wallet::from_seed("gas-audit", 3);
    let [deployer, alice, bob]: [_; 3] = wallet.addresses().try_into().expect("three accounts");
    let genesis: Vec<_> = wallet
        .addresses()
        .into_iter()
        .map(|a| (a, wei_per_eth()))
        .collect();
    let mut chain = Chain::new(ChainConfig::default(), &genesis);
    let supply0 = chain.state().total_supply();

    println!("=== deployment ===");
    let summary = wallet.summarize(
        &chain,
        &deployer,
        None,
        &U256::ZERO,
        &cid_storage_init_code(),
    );
    println!("{}", summary.display());
    let hash = wallet
        .send(
            &mut chain,
            &deployer,
            None,
            U256::ZERO,
            cid_storage_init_code(),
        )
        .expect("deploy accepted");
    chain.mine_block(12);
    let receipt = chain.receipt(&hash).expect("mined").clone();
    let contract = CidStorage::at(receipt.contract_address.expect("created"));
    println!(
        "deployed at {} | gas {} | fee {} ETH | base fee now {} gwei",
        contract.address.to_checksum(),
        receipt.gas_used,
        format_eth(&receipt.fee, 8),
        chain.base_fee().div_rem(&U256::from(1_000_000_000u64)).0
    );

    println!("\n=== uploads from two users ===");
    for (who, name, cid) in [
        (
            alice,
            "alice",
            "QmAliceModelV1AliceModelV1AliceModelV1Alice",
        ),
        (bob, "bob", "QmBobModelV1BobModelV1BobModelV1BobModelV1B"),
    ] {
        let data = CidStorage::upload_cid_calldata(cid);
        let summary = wallet.summarize(&chain, &who, Some(&contract.address), &U256::ZERO, &data);
        println!("\n[{name}] MetaMask says:\n{}", summary.display());
        let h = wallet
            .send(&mut chain, &who, Some(contract.address), U256::ZERO, data)
            .expect("upload accepted");
        chain.mine_block(24);
        let r = chain.receipt(&h).expect("mined");
        println!(
            "[{name}] confirmed in block {} | gas {} | fee {} ETH | event topics {:?}",
            r.block_number,
            r.gas_used,
            format_eth(&r.fee, 8),
            r.logs[0].topics.len()
        );
    }

    println!("\n=== free reads ===");
    let count = contract.cid_count(&chain, &deployer).expect("reads");
    println!("cidCount() = {count} (no gas charged, no block mined)");
    for i in 0..count {
        println!(
            "getCid({i}) = {}",
            contract.get_cid(&chain, &deployer, i).expect("reads")
        );
    }

    println!("\n=== conservation audit ===");
    let supply_now = chain.state().total_supply();
    let burned = chain.burned();
    println!("initial supply : {} ETH", format_eth(&supply0, 8));
    println!("current supply : {} ETH", format_eth(&supply_now, 8));
    println!("burned (EIP-1559): {} ETH", format_eth(&burned, 8));
    println!(
        "coinbase tips  : {} ETH",
        format_eth(&chain.balance(&chain.config().coinbase), 8)
    );
    assert_eq!(
        supply_now.wrapping_add(&burned),
        supply0,
        "wei must be conserved: supply + burned == genesis supply"
    );
    println!("supply + burned == genesis supply  ✓");
}
