//! DApp walkthrough: the button-level user experience of the paper's Fig 3.
//!
//! Drives the same marketplace session as `quickstart`, but through the
//! [`OwnerApp`]/[`BuyerApp`] facades that mirror the React + MetaMask
//! interface — each printed line corresponds to one click and the resulting
//! UI feedback, demonstrating that "anyone, regardless of their knowledge of
//! blockchain or Web 3.0" can participate.
//!
//! Run with: `cargo run --release --example dapp_walkthrough`

use ofl_w3::core::config::MarketConfig;
use ofl_w3::core::dapp::{BuyerApp, OwnerApp};
use ofl_w3::core::market::Marketplace;
use ofl_w3::rpc::EndpointId;

fn main() {
    println!("=== OFL-W3 DApp walkthrough (Fig 3) ===\n");
    let mut market = Marketplace::new(MarketConfig::small_test());

    println!("[buyer screen]");
    let mut buyer = BuyerApp::new();
    println!(
        "  click \"Deploy Contract\"  -> {}",
        buyer.deploy_contract(&mut market).expect("deploys")
    );

    for i in 0..market.owners.len() {
        println!("\n[owner {i} screen]");
        let mut app = OwnerApp::new(i);
        println!(
            "  click \"Connect Wallet\"   -> {}",
            app.connect_wallet(&mut market)
        );
        println!(
            "  click \"Train Model\"      -> {}",
            app.train_model(&mut market)
        );
        println!(
            "  click \"Upload Model\"     -> {}",
            app.upload_model(&mut market).expect("uploads")
        );
        println!(
            "  click \"Send CID\"         -> {}",
            app.send_cid(&mut market).expect("sends")
        );
    }

    println!("\n[buyer screen]");
    println!(
        "  click \"Download CIDs\"    -> {}",
        buyer.download_cids(&mut market).expect("downloads")
    );
    println!(
        "  click \"Retrieve Models\"  -> {}",
        buyer.retrieve_models(&mut market).expect("retrieves")
    );
    let report = buyer
        .aggregate_and_pay(&mut market)
        .expect("aggregates and pays");
    println!(
        "  click \"Aggregate & Pay\"  -> {}",
        buyer.events().last().expect("logged").message
    );

    println!("\n=== session complete ===");
    println!(
        "aggregate accuracy {:.1} %, {} owners paid, {} blocks mined",
        report.aggregated_accuracy * 100.0,
        report.payments.len(),
        market.world.chain(EndpointId(0)).height()
    );
}
