//! Scenario sweep: every partition regime and failure-injection regime of
//! the scenario harness, end to end, in one table.
//!
//! Each row is a complete marketplace session — contract deployment, local
//! training, IPFS sharing, on-chain CID exchange, PFNM aggregation, LOO
//! payment — under a different data distribution or injected fault
//! (dropped IPFS blocks, reverted CID transactions, freeloading owners,
//! silent dropouts).
//!
//! Run with: `cargo run --release --example scenario_sweep`

use ofl_w3::core::scenario::ScenarioSuite;

fn main() {
    println!("OFL-W3 scenario sweep: partition regimes + failure injection\n");

    let suite = ScenarioSuite::full(42);
    println!(
        "running {} scenarios (4 owners each, test scale)...\n",
        suite.scenarios.len()
    );
    let outcomes = suite.run().expect("every regime completes");
    println!("{}", ScenarioSuite::render_table(&outcomes));

    // The sweep is deterministic by seed: rerunning must reproduce every
    // payment, accuracy, and gas figure bit for bit.
    let again = ScenarioSuite::full(42).run().expect("rerun completes");
    let reproduced = outcomes
        .iter()
        .zip(&again)
        .all(|(a, b)| a.fingerprint() == b.fingerprint());
    println!(
        "determinism: rerun with the same seed reproduced all {} outcomes: {}",
        outcomes.len(),
        reproduced
    );
}
