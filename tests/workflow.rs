//! Cross-crate integration tests: the complete OFL-W3 workflow under
//! different partition regimes, with invariants spanning the blockchain,
//! IPFS, FL, and incentive layers.

use ofl_w3::core::config::{MarketConfig, PartitionScheme};
use ofl_w3::core::market::{buyer_phase, Marketplace};
use ofl_w3::primitives::u256::U256;
use ofl_w3::rpc::EndpointId;

fn config_with(partition: PartitionScheme, seed: u64) -> MarketConfig {
    MarketConfig {
        partition,
        seed,
        ..MarketConfig::small_test()
    }
}

#[test]
fn session_completes_under_every_partition_scheme() {
    for (scheme, seed) in [
        (PartitionScheme::Iid, 1u64),
        (PartitionScheme::Dirichlet { alpha: 0.5 }, 2),
        (PartitionScheme::Shards { per_client: 2 }, 3),
        (PartitionScheme::LabelSkew { classes: 3 }, 4),
    ] {
        let (market, report) =
            Marketplace::run(config_with(scheme, seed)).expect("session completes");
        assert_eq!(report.payments.len(), market.owners.len(), "{scheme:?}");
        // PFNM degrades under extreme label skew (the gap FedOV targets, per
        // the paper's related work), so the invariant is "clearly above the
        // 10 % chance level", not a fixed quality bar.
        assert!(
            report.aggregated_accuracy > 0.15,
            "{scheme:?}: aggregate accuracy {}",
            report.aggregated_accuracy
        );
        // The aggregate never loses to the worst silo.
        assert!(report.aggregated_accuracy >= report.worst_local_accuracy());
    }
}

#[test]
fn eth_is_conserved_across_the_whole_session() {
    let (market, _) = Marketplace::run(config_with(PartitionScheme::Dirichlet { alpha: 0.5 }, 7))
        .expect("session completes");
    // Genesis supply = current balances + EIP-1559 burn.
    let supply = market.world.chain(EndpointId(0)).state().total_supply();
    let burned = market.world.chain(EndpointId(0)).burned();
    // Genesis: buyer 1 ETH + owners 0.1 ETH each.
    let expected = ofl_w3::primitives::wei_per_eth().wrapping_add(
        &ofl_w3::primitives::wei_per_eth()
            .div_rem(&U256::from(10u64))
            .0
            .wrapping_mul(&U256::from(market.owners.len() as u64)),
    );
    assert_eq!(supply.wrapping_add(&burned), expected);
}

#[test]
fn contract_state_survives_and_reads_are_replayable() {
    let (mut market, report) =
        Marketplace::run(config_with(PartitionScheme::Iid, 9)).expect("session completes");
    let contract = market.contract.expect("deployed");
    let reader = market.buyer.address;
    let n_owners = market.owners.len() as u64;
    // On-chain CIDs still readable after the session, in order, for free —
    // through the typed binding over the provider traits.
    let onchain = contract
        .all_cids(market.world.eth(EndpointId(0)), &reader)
        .value
        .expect("reads succeed");
    assert_eq!(onchain, report.cids);
    // Contract counter matches.
    assert_eq!(
        contract
            .cid_count(market.world.eth(EndpointId(0)), &reader)
            .value
            .expect("reads succeed"),
        n_owners
    );
}

#[test]
fn buyer_spent_budget_plus_fees_owners_gained() {
    let budget = MarketConfig::small_test().budget_wei;
    let (market, report) =
        Marketplace::run(config_with(PartitionScheme::Iid, 11)).expect("session completes");
    let buyer_balance = market
        .world
        .chain(EndpointId(0))
        .balance(&market.buyer.address);
    let spent = ofl_w3::primitives::wei_per_eth().wrapping_sub(&buyer_balance);
    // Buyer spent at least the budget (plus gas), but less than budget+0.01.
    assert!(spent >= budget);
    let cap = budget.wrapping_add(
        &ofl_w3::primitives::wei_per_eth()
            .div_rem(&U256::from(100u64))
            .0,
    );
    assert!(spent < cap, "buyer overspent: {spent}");
    // Every owner's payment arrived net of their own upload gas.
    for (owner, row) in market.owners.iter().zip(&report.payments) {
        let balance = market.world.chain(EndpointId(0)).balance(&owner.address);
        let genesis = ofl_w3::primitives::wei_per_eth()
            .div_rem(&U256::from(10u64))
            .0;
        let fee = owner.upload_receipt.as_ref().expect("uploaded").fee;
        assert_eq!(
            balance,
            genesis.wrapping_sub(&fee).wrapping_add(&row.amount_wei)
        );
    }
}

#[test]
fn ipfs_swarm_holds_every_model_after_session() {
    let (market, report) =
        Marketplace::run(config_with(PartitionScheme::Iid, 13)).expect("session completes");
    // The buyer pinned every fetched model; owners still hold theirs.
    for (owner, cid_str) in market.owners.iter().zip(&report.cids) {
        let cid = ofl_w3::ipfs::cid::Cid::parse(cid_str).expect("valid CID");
        assert!(market
            .world
            .swarm(EndpointId(0))
            .node(owner.ipfs_node)
            .has_block(&cid));
        assert!(market
            .world
            .swarm(EndpointId(0))
            .node(market.buyer.ipfs_node)
            .has_block(&cid));
    }
}

#[test]
fn timing_has_every_workflow_phase() {
    let (market, report) =
        Marketplace::run(config_with(PartitionScheme::Iid, 17)).expect("session completes");
    let buyer_phases: Vec<&str> = report
        .buyer_breakdown
        .iter()
        .map(|(name, _, _)| name.as_str())
        .collect();
    for expected in [
        buyer_phase::DEPLOY,
        buyer_phase::DOWNLOAD_CIDS,
        buyer_phase::RETRIEVE,
        buyer_phase::AGGREGATE,
        buyer_phase::PAYMENT,
    ] {
        assert!(buyer_phases.contains(&expected), "missing {expected}");
    }
    // Block production and virtual time agree: at least one block per
    // confirmation-bearing step.
    assert!(market.world.chain(EndpointId(0)).height() >= (market.owners.len() + 2) as u64);
    assert!(report.total_sim_seconds >= market.world.chain(EndpointId(0)).height() as f64);
}

#[test]
fn different_seeds_give_different_markets_same_invariants() {
    let (_, a) = Marketplace::run(config_with(PartitionScheme::Dirichlet { alpha: 0.5 }, 100))
        .expect("session completes");
    let (_, b) = Marketplace::run(config_with(PartitionScheme::Dirichlet { alpha: 0.5 }, 200))
        .expect("session completes");
    assert_ne!(a.cids, b.cids, "seeds must differentiate the data/models");
    let budget = MarketConfig::small_test().budget_wei;
    assert_eq!(a.total_paid(), budget);
    assert_eq!(b.total_paid(), budget);
}
