//! Adversarial and failure-injection tests: the properties that make the
//! Web 3.0 substrate trustworthy — signature forgery fails, tampered
//! content is rejected, reverted transactions leave no trace, and freeloading
//! owners earn the smallest payments.

use ofl_w3::core::config::{MarketConfig, PartitionScheme};
use ofl_w3::core::market::Marketplace;
use ofl_w3::eth::chain::{Chain, ChainConfig, ChainError};
use ofl_w3::eth::secp256k1;
use ofl_w3::eth::tx::{sign_tx, SignedTx, TxRequest};
use ofl_w3::eth::wallet::Wallet;
use ofl_w3::ipfs::cid::Cid;
use ofl_w3::ipfs::swarm::{IpfsError, IpfsNode, Swarm};
use ofl_w3::primitives::u256::U256;
use ofl_w3::primitives::{wei_per_eth, H160};

/// A signature from Mallory's key cannot move Alice's funds: the recovered
/// sender is Mallory, whose account cannot pay.
#[test]
fn forged_transaction_cannot_spend_other_accounts() {
    let alice_key = U256::from(111u64);
    let mallory_key = U256::from(222u64);
    let alice = secp256k1::public_key(&alice_key)
        .expect("valid key")
        .to_eth_address()
        .expect("finite");
    let mut chain = Chain::new(ChainConfig::default(), &[(alice, wei_per_eth())]);
    // Mallory crafts a tx "from Alice" but can only sign with her own key.
    let req = TxRequest {
        chain_id: chain.config().chain_id,
        nonce: 0,
        max_priority_fee_per_gas: U256::from(1_000_000_000u64),
        max_fee_per_gas: U256::from(40_000_000_000u64),
        gas_limit: 21_000,
        to: Some(H160::from_slice(&[0x66; 20])),
        value: wei_per_eth().div_rem(&U256::from(2u64)).0,
        data: vec![],
    };
    let forged = sign_tx(req, &mallory_key).expect("signs fine");
    // The chain derives the sender from the signature: it is Mallory's
    // (unfunded) address, so the transaction is rejected outright.
    assert_eq!(chain.submit(forged), Err(ChainError::InsufficientFunds));
    assert_eq!(chain.balance(&alice), wei_per_eth());
}

/// Corrupting a raw transaction in flight invalidates it.
#[test]
fn tampered_raw_transaction_rejected_or_reassigned() {
    let key = U256::from(333u64);
    let sender = secp256k1::public_key(&key)
        .expect("valid")
        .to_eth_address()
        .expect("finite");
    let mut chain = Chain::new(ChainConfig::default(), &[(sender, wei_per_eth())]);
    let req = TxRequest {
        chain_id: chain.config().chain_id,
        nonce: 0,
        max_priority_fee_per_gas: U256::from(1_000_000_000u64),
        max_fee_per_gas: U256::from(40_000_000_000u64),
        gas_limit: 21_000,
        to: Some(H160::from_slice(&[0x77; 20])),
        value: U256::from(1_000u64),
        data: vec![],
    };
    let honest = sign_tx(req, &key).expect("signs");
    let mut raw = honest.encode();
    // Flip a bit in the value field region.
    let idx = raw.len() / 2;
    raw[idx] ^= 0x01;
    match SignedTx::decode(&raw) {
        Err(_) => {} // malformed: rejected at decode
        Ok(tampered) => {
            // If it still parses, the recovered sender differs from the
            // honest signer, so it cannot spend the honest account.
            if let Ok(who) = tampered.recover_sender() {
                assert_ne!(who, sender);
            }
            // Either way the honest account is untouched.
            let _ = chain.submit_raw(&raw);
            assert_eq!(chain.balance(&sender), wei_per_eth());
        }
    }
}

/// A peer cannot serve corrupted model bytes: every block verifies against
/// its multihash during the fetch.
#[test]
fn swarm_rejects_poisoned_blocks() {
    let mut swarm = Swarm::new();
    let honest = swarm.add_node(IpfsNode::new("honest"));
    let victim = swarm.add_node(IpfsNode::new("victim"));
    let payload = vec![0x42u8; 1024];
    let cid = swarm.node_mut(honest).add(&payload).root;
    // Poisoning the store directly is impossible (put verifies)...
    let mut mallory = IpfsNode::new("mallory");
    assert!(mallory
        .store_mut()
        .put(cid.clone(), vec![0xffu8; 1024])
        .is_err());
    // ...and a fetch of a never-stored CID reports unavailability rather
    // than fabricating data.
    let phantom = Cid::v0_of(b"phantom");
    assert!(matches!(
        swarm.fetch(victim, &phantom),
        Err(IpfsError::BlockUnavailable(_))
    ));
    // The honest fetch still works afterwards.
    let (got, _) = swarm.fetch(victim, &cid).expect("honest path intact");
    assert_eq!(got, payload);
}

/// An owner whose "model" is untrained noise earns one of the smallest
/// payments: LOO prices freeloading.
#[test]
fn freeloader_earns_least() {
    let mut config = MarketConfig {
        partition: PartitionScheme::Iid,
        seed: 31,
        ..MarketConfig::small_test()
    };
    config.n_owners = 5;
    let mut market = Marketplace::new(config);
    market.deploy_contract().expect("deploys");
    let freeloader = 2usize;
    for i in 0..market.owners.len() {
        if i == freeloader {
            // Skip training by replacing the silo with 3 examples: the
            // "model" is effectively random.
            let tiny = market.owners[i].data.subset(&[0, 1, 2]);
            market.owners[i].data = tiny;
        }
        market.owner_train(i);
        market.owner_upload_model(i).expect("uploads");
        market.owner_send_cid(i).expect("sends");
    }
    let cids = market.buyer_download_cids().expect("downloads");
    market.buyer_retrieve_models(&cids).expect("retrieves");
    let report = market.buyer_aggregate_and_pay().expect("pays");
    // The freeloader's local accuracy is near chance…
    assert!(
        report.local_accuracies[freeloader] < 0.5,
        "freeloader acc {}",
        report.local_accuracies[freeloader]
    );
    // …and its payment is within the bottom two.
    let mut sorted: Vec<U256> = report.payments.iter().map(|p| p.amount_wei).collect();
    sorted.sort();
    assert!(
        report.payments[freeloader].amount_wei <= sorted[1],
        "freeloader was overpaid: {:?}",
        report.payments[freeloader].amount_wei
    );
}

/// Replaying a mined transaction is impossible (nonce) and so is replaying
/// it on another chain (chain id).
#[test]
fn replay_protection() {
    let wallet = Wallet::from_seed("replay", 2);
    let [a, b]: [_; 2] = wallet.addresses().try_into().expect("two");
    let mut chain = Chain::new(
        ChainConfig::default(),
        &[(a, wei_per_eth()), (b, wei_per_eth())],
    );
    let key = wallet.account(&a).expect("known").private_key;
    let req = TxRequest {
        chain_id: chain.config().chain_id,
        nonce: 0,
        max_priority_fee_per_gas: U256::from(1_000_000_000u64),
        max_fee_per_gas: U256::from(40_000_000_000u64),
        gas_limit: 21_000,
        to: Some(b),
        value: U256::from(5u64),
        data: vec![],
    };
    let tx = sign_tx(req, &key).expect("signs");
    chain.submit(tx.clone()).expect("first submit ok");
    chain.mine_block(12);
    // Same-chain replay: stale nonce.
    assert!(matches!(
        chain.submit(tx.clone()),
        Err(ChainError::NonceTooLow { .. })
    ));
    // Cross-chain replay: different chain id.
    let mainnet_cfg = ChainConfig {
        chain_id: 1,
        ..ChainConfig::default()
    };
    let mut mainnet = Chain::new(mainnet_cfg, &[(a, wei_per_eth())]);
    assert!(matches!(
        mainnet.submit(tx),
        Err(ChainError::WrongChain { .. })
    ));
}
