//! Substrate interoperability tests: each pair of layers composed directly,
//! without the marketplace orchestration.

use ofl_w3::data::mnist;
use ofl_w3::eth::chain::{Chain, ChainConfig};
use ofl_w3::eth::contracts::{cid_storage_init_code, CidStorage};
use ofl_w3::eth::wallet::Wallet;
use ofl_w3::fl::client::{train_local, TrainConfig};
use ofl_w3::ipfs::cid::Cid;
use ofl_w3::ipfs::swarm::{IpfsNode, Swarm};
use ofl_w3::primitives::u256::U256;
use ofl_w3::primitives::wei_per_eth;
use ofl_w3::tensor::serialize::{decode_model, encode_model};

/// model → bytes → IPFS → CID string → contract → read back → fetch →
/// decode → identical predictions. The full data path of Steps 2–6.
#[test]
fn model_roundtrips_through_ipfs_and_chain() {
    // Train a small model.
    let (train, test) = mnist::generate(3, 400, 100);
    let cfg = TrainConfig {
        dims: vec![784, 16, 10],
        epochs: 2,
        ..TrainConfig::default()
    };
    let trained = train_local(&train, &cfg);
    let bytes = encode_model(&trained.model);

    // Owner adds to IPFS.
    let mut swarm = Swarm::new();
    let owner_node = swarm.add_node(IpfsNode::new("owner"));
    let buyer_node = swarm.add_node(IpfsNode::new("buyer"));
    let cid = swarm.node_mut(owner_node).add(&bytes).root;
    let cid_str = cid.to_string_form();

    // Owner records the CID on-chain.
    let wallet = Wallet::from_seed("interop", 2);
    let [owner_addr, buyer_addr]: [_; 2] = wallet.addresses().try_into().expect("two accounts");
    let mut chain = Chain::new(
        ChainConfig::default(),
        &[(owner_addr, wei_per_eth()), (buyer_addr, wei_per_eth())],
    );
    let hash = wallet
        .send(
            &mut chain,
            &owner_addr,
            None,
            U256::ZERO,
            cid_storage_init_code(),
        )
        .expect("deploy");
    chain.mine_block(12);
    let contract = CidStorage::at(
        chain
            .receipt(&hash)
            .expect("mined")
            .contract_address
            .expect("created"),
    );
    wallet
        .send(
            &mut chain,
            &owner_addr,
            Some(contract.address),
            U256::ZERO,
            CidStorage::upload_cid_calldata(&cid_str),
        )
        .expect("upload");
    chain.mine_block(24);

    // Buyer reads the CID from the chain and fetches from IPFS.
    let read_back = contract
        .get_cid(&chain, &buyer_addr, 0)
        .expect("stored string survives the EVM");
    assert_eq!(read_back, cid_str);
    let parsed = Cid::parse(&read_back).expect("chain preserved a valid CID");
    let (fetched, stats) = swarm.fetch(buyer_node, &parsed).expect("available");
    assert!(stats.blocks_fetched >= 1);
    let restored = decode_model(&fetched).expect("valid model bytes");
    assert_eq!(restored, trained.model);
    assert_eq!(
        restored.predict(&test.images),
        trained.model.predict(&test.images)
    );
}

/// Ten concurrent owners writing CIDs: the contract keeps them ordered and
/// duplicate CIDs are allowed (two owners may legally share a model).
#[test]
fn contract_handles_many_writers_and_duplicates() {
    let wallet = Wallet::from_seed("many-writers", 11);
    let genesis: Vec<_> = wallet
        .addresses()
        .into_iter()
        .map(|a| (a, wei_per_eth()))
        .collect();
    let mut chain = Chain::new(ChainConfig::default(), &genesis);
    let deployer = wallet.addresses()[0];
    let hash = wallet
        .send(
            &mut chain,
            &deployer,
            None,
            U256::ZERO,
            cid_storage_init_code(),
        )
        .expect("deploy");
    chain.mine_block(12);
    let contract = CidStorage::at(
        chain
            .receipt(&hash)
            .expect("mined")
            .contract_address
            .expect("created"),
    );
    let mut expected: Vec<String> = Vec::new();
    let mut t = 12;
    for (i, who) in wallet.addresses().into_iter().enumerate() {
        // Two owners share the same CID on purpose.
        let cid = if i == 7 {
            expected[0].clone()
        } else {
            Cid::v0_of(format!("model-{i}").as_bytes()).to_string_form()
        };
        wallet
            .send(
                &mut chain,
                &who,
                Some(contract.address),
                U256::ZERO,
                CidStorage::upload_cid_calldata(&cid),
            )
            .expect("upload");
        t += 12;
        chain.mine_block(t);
        expected.push(cid);
    }
    assert_eq!(
        contract.all_cids(&chain, &deployer).expect("reads"),
        expected
    );
}

/// FL models of different hidden sizes coexist on IPFS; PFNM rejects the
/// mismatch cleanly rather than aggregating garbage.
#[test]
fn pfnm_rejects_heterogeneous_architectures_from_the_wire() {
    let (train, _) = mnist::generate(5, 300, 10);
    let mut swarm = Swarm::new();
    let node = swarm.add_node(IpfsNode::new("owner"));
    let mut models = Vec::new();
    for dims in [vec![784usize, 16, 10], vec![784, 24, 10]] {
        let cfg = TrainConfig {
            dims,
            epochs: 1,
            ..TrainConfig::default()
        };
        let m = train_local(&train, &cfg).model;
        let cid = swarm.node_mut(node).add(&encode_model(&m)).root;
        let (bytes, _) = swarm.fetch(node, &cid).expect("local");
        models.push(decode_model(&bytes).expect("valid"));
    }
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    // Different hidden widths are fine for PFNM (it matches neurons)…
    let ok = ofl_w3::fl::pfnm::aggregate(
        &models,
        &[1, 1],
        &ofl_w3::fl::pfnm::PfnmConfig::default(),
        &mut rng,
    );
    assert!(ok.is_ok(), "different hidden widths must aggregate");
    // …but a different *input* dimension must be rejected.
    let mut models2 = models;
    models2.push(bad_cfg_model());
    let err = ofl_w3::fl::pfnm::aggregate(
        &models2,
        &[1, 1, 1],
        &ofl_w3::fl::pfnm::PfnmConfig::default(),
        &mut rng,
    );
    assert!(err.is_err());
}

fn bad_cfg_model() -> ofl_w3::tensor::nn::Mlp {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    ofl_w3::tensor::nn::Mlp::new(&[100, 8, 10], &mut rng)
}
