//! Observability regression suite: the `ofl-trace` determinism contract
//! held against real engine runs.
//!
//! The contract under test: a trace is a pure function of the seed. The
//! default categories (engine, world, provider, sign) fire identically
//! whether shards run in-process, over the in-memory rpcd pipe, or over
//! pipelined TCP sockets, and whether the shard executor is serial or
//! parallel — so the exported JSONL is byte-identical across all of them.
//! And tracing itself must be a pure observer: enabling it changes no
//! report field.

use std::sync::{Mutex, MutexGuard, OnceLock};

use ofl_w3::core::config::{MarketConfig, PartitionScheme};
use ofl_w3::core::engine::{EngineConfig, EngineReport, MultiMarket};
use ofl_w3::core::world::{ShardConfig, ShardSpec, DEFAULT_TX_WIRE_BYTES};
use ofl_w3::netsim::par::{parallel_enabled, set_parallel};
use ofl_w3::rpc::{
    provision_socket_provider, provision_socket_provider_via, RemoteEndpoint, WireMode,
};
use ofl_w3::rpcd::{DaemonOptions, PipeTransport};

/// The tracer and the executor flag are process-global, so every test that
/// installs a recorder or flips `set_parallel` holds this for its whole
/// body.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn fleet_base(owners: usize, seed: u64) -> MarketConfig {
    MarketConfig {
        n_owners: owners,
        n_train: 100 * owners,
        n_test: 60,
        partition: PartitionScheme::Iid,
        seed,
        train: ofl_w3::fl::client::TrainConfig {
            dims: vec![784, 8, 10],
            epochs: 1,
            ..ofl_w3::fl::client::TrainConfig::default()
        },
        ..MarketConfig::small_test()
    }
}

/// Runs `f` under a fresh tracer and returns its report plus the exported
/// deterministic JSONL.
fn traced_run(f: impl FnOnce() -> EngineReport) -> (EngineReport, String) {
    let tracer = ofl_w3::trace::start_tracing();
    let report = f();
    let trace = ofl_w3::trace::stop_tracing(tracer);
    assert_eq!(trace.dropped, 0, "collector lanes must not overflow");
    assert!(!trace.events.is_empty(), "a traced run emits events");
    (report, trace.to_jsonl())
}

fn in_process(configs: Vec<MarketConfig>, shards: usize) -> EngineReport {
    MultiMarket::with_shards(configs, shards)
        .run(&EngineConfig::default(), &[])
        .expect("in-process fleet run")
        .1
}

/// Every shard mounted over the deterministic in-memory rpcd pipe.
fn pipe_backed(configs: Vec<MarketConfig>, shards: usize) -> EngineReport {
    let profile = configs[0].profile;
    MultiMarket::with_shards_via(configs, shards, |config: ShardConfig| {
        ShardSpec::Mounted(
            provision_socket_provider(
                Box::new(PipeTransport::new()),
                config.chain.clone(),
                config.genesis.clone(),
                profile,
                DEFAULT_TX_WIRE_BYTES,
                config.knobs(),
            )
            .expect("pipe provisions"),
        )
    })
    .run(&EngineConfig::default(), &[])
    .expect("pipe-backed fleet run")
    .1
}

/// Every shard over its own pipelined TCP connection to one rpcd daemon
/// running in this process.
fn tcp_backed(configs: Vec<MarketConfig>, shards: usize) -> EngineReport {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        ofl_w3::rpcd::serve_listener_with(listener, DaemonOptions::max(shards))
    });
    let profile = configs[0].profile;
    let (mm, report) = MultiMarket::with_shards_via(configs, shards, |config: ShardConfig| {
        let transport = RemoteEndpoint::Tcp(addr.clone())
            .connect()
            .expect("connect to rpcd");
        ShardSpec::Mounted(
            provision_socket_provider_via(
                transport,
                config.chain.clone(),
                config.genesis.clone(),
                profile,
                DEFAULT_TX_WIRE_BYTES,
                config.knobs(),
                WireMode::Pipelined { window: 8 },
            )
            .expect("provision over tcp"),
        )
    })
    .run(&EngineConfig::default(), &[])
    .expect("tcp-backed fleet run");
    drop(mm);
    let stats = server.join().expect("rpcd server thread exits");
    assert_eq!(stats.connections as usize, shards);
    report
}

/// The digest tracing must not perturb.
fn digest(report: &EngineReport) -> (f64, Vec<f64>, u64) {
    (
        report.total_sim_seconds,
        report
            .sessions
            .iter()
            .map(|s| s.aggregated_accuracy)
            .collect(),
        report.rpc.round_trips,
    )
}

/// Satellite (c), main pin: two same-seed 32-owner runs export
/// byte-identical JSONL traces, the trace is invariant across the
/// in-process / pipe / pipelined-TCP backends, and enabling tracing
/// changes no report digest.
#[test]
fn same_seed_traces_are_byte_identical_across_runs_and_backends() {
    let _guard = trace_lock();
    let base = fleet_base(8, 47);
    let configs = || MultiMarket::replica_configs(&base, 4, 2);

    // Reference: the same fleet untraced.
    let untraced = in_process(configs(), 2);
    let owners: usize = untraced.sessions.iter().map(|s| s.payments.len()).sum();
    assert_eq!(owners, 32);

    let (first_report, first) = traced_run(|| in_process(configs(), 2));
    let (_, second) = traced_run(|| in_process(configs(), 2));
    assert_eq!(
        digest(&first_report),
        digest(&untraced),
        "enabling tracing must not perturb the simulation"
    );
    assert!(first == second, "same-seed traces must be byte-identical");
    let report = ofl_w3::trace::diff::diff_jsonl(&first, &second);
    assert!(report.divergence.is_none());
    assert_eq!(report.compared as usize + 1, first.lines().count());

    // Backend invariance: the default categories never see the wire, so
    // the pipe- and TCP-backed fleets export the same bytes.
    let (pipe_report, piped) = traced_run(|| pipe_backed(configs(), 2));
    assert_eq!(digest(&pipe_report), digest(&untraced));
    assert!(
        first == piped,
        "pipe-backed trace must match the in-process trace byte-for-byte"
    );
    let (tcp_report, tcp) = traced_run(|| tcp_backed(configs(), 2));
    assert_eq!(digest(&tcp_report), digest(&untraced));
    assert!(
        first == tcp,
        "TCP-pipelined trace must match the in-process trace byte-for-byte"
    );
}

/// The off-thread collector merges per-source lanes in `(ts, source, seq)`
/// order, so flipping the shard executor — serial closures on the caller
/// thread vs fork/join worker threads — changes nothing in the export.
#[test]
fn serial_and_parallel_executors_merge_identical_traces() {
    let _guard = trace_lock();
    let base = fleet_base(3, 91);
    let configs = || MultiMarket::replica_configs(&base, 2, 2);
    let was_parallel = parallel_enabled();

    set_parallel(false);
    let (serial_report, serial) = traced_run(|| in_process(configs(), 2));
    set_parallel(true);
    let (parallel_report, parallel) = traced_run(|| in_process(configs(), 2));
    set_parallel(was_parallel);

    assert_eq!(digest(&serial_report), digest(&parallel_report));
    assert!(
        serial == parallel,
        "serial and parallel executors must merge to identical traces"
    );
}

/// Triage: two traces from different seeds diverge, and the diff names the
/// first divergent event rather than just "files differ". The gzip
/// container round-trips losslessly and is auto-detected.
#[test]
fn trace_diff_pinpoints_the_first_divergent_event() {
    let _guard = trace_lock();
    let run = |seed: u64| {
        let base = fleet_base(3, seed);
        let configs = MultiMarket::replica_configs(&base, 2, 2);
        traced_run(|| in_process(configs, 2)).1
    };
    let a = run(91);
    let b = run(92);

    let report = ofl_w3::trace::diff::diff_jsonl(&a, &b);
    let divergence = report
        .divergence
        .expect("different seeds must produce divergent traces");
    // The meta line (event counts differ) is skipped; the pinpointed lines
    // are real events from each trace.
    assert!(divergence.a.starts_with("{\"ts\":") || divergence.a == "<end of trace>");
    assert!(divergence.b.starts_with("{\"ts\":") || divergence.b == "<end of trace>");
    assert_ne!(divergence.a, divergence.b);

    // The .jsonl.gz artifact path: compress, auto-detect, decompress,
    // byte-identical — so diffing artifacts equals diffing exports.
    let gz = ofl_w3::trace::gzip::gzip_stored(a.as_bytes());
    let back = ofl_w3::trace::diff::decode_trace_bytes(&gz).expect("gunzip");
    assert_eq!(back, a);
    let plain = ofl_w3::trace::diff::decode_trace_bytes(a.as_bytes()).expect("plain passthrough");
    assert_eq!(plain, a);
}
