//! Scenario-suite integration tests: the partition regimes,
//! failure-injection regimes, and event-driven concurrency regimes of
//! `ofl_core::scenario` run end-to-end, deterministically by seed, with the
//! cross-layer invariants holding in every regime.

use std::sync::OnceLock;

use ofl_w3::core::config::{MarketConfig, PartitionScheme};
use ofl_w3::core::engine::{EngineConfig, MultiMarket};
use ofl_w3::core::market::Marketplace;
use ofl_w3::core::scenario::{Scenario, ScenarioOutcome, ScenarioSuite};
use ofl_w3::rpc::EndpointId;

const SUITE_SEED: u64 = 7;

/// Shrinks a suite to unit-test size so the sweep stays fast; the regimes
/// (partitions, failure plans) are exactly what the builders advertise.
fn trimmed(mut suite: ScenarioSuite) -> ScenarioSuite {
    for scenario in &mut suite.scenarios {
        trim(scenario);
    }
    suite
}

fn trim(scenario: &mut Scenario) {
    scenario.config.n_train = 400;
    scenario.config.n_test = 100;
    scenario.config.train.epochs = 1;
}

fn run_full_suite() -> Vec<ScenarioOutcome> {
    trimmed(ScenarioSuite::full(SUITE_SEED))
        .run()
        .expect("every regime completes")
}

/// One shared sweep: several tests assert different properties of the same
/// outcomes, so run the suite once and let the determinism test do the
/// second, independent run.
fn shared_outcomes() -> &'static [ScenarioOutcome] {
    static OUTCOMES: OnceLock<Vec<ScenarioOutcome>> = OnceLock::new();
    OUTCOMES.get_or_init(run_full_suite)
}

#[test]
fn suite_sweeps_partitions_and_failures_deterministically() {
    let suite = trimmed(ScenarioSuite::full(SUITE_SEED));
    // The acceptance bar: at least 4 partition regimes, at least 2
    // failure-injection regimes, and at least 3 concurrency regimes in one
    // engine.
    let clean = suite
        .scenarios
        .iter()
        .filter(|s| s.failures.is_clean())
        .count();
    let faulty = suite
        .scenarios
        .iter()
        .filter(|s| !s.failures.is_clean())
        .count();
    let concurrent = suite
        .scenarios
        .iter()
        .filter(|s| s.mode != ofl_w3::core::scenario::ExecutionMode::Serial)
        .count();
    assert!(clean >= 4, "partition regimes: {clean}");
    assert!(faulty >= 2, "failure regimes: {faulty}");
    assert!(concurrent >= 3, "concurrency regimes: {concurrent}");

    let first = shared_outcomes();
    let second = run_full_suite();
    assert_eq!(first.len(), suite.scenarios.len());
    // Bit-identical outcomes run to run: same payments, accuracies, gas,
    // CIDs, and virtual timing.
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a, b, "{} diverged between runs", a.name);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}

#[test]
fn seed_changes_data_models_and_cids() {
    let baseline = shared_outcomes()
        .iter()
        .find(|o| o.name == "iid")
        .expect("iid regime present");
    let mut reseeded = Scenario::small("iid", PartitionScheme::Iid, SUITE_SEED + 1000);
    trim(&mut reseeded);
    let outcome = reseeded.run().expect("completes");
    // Same regime, different seed: different silos, models, and CIDs.
    assert_ne!(outcome.cids_onchain, baseline.cids_onchain);
    // But the same system invariants hold.
    assert!(outcome.eth_conserved && outcome.budget_exhausted());
}

#[test]
fn every_regime_upholds_system_invariants() {
    for outcome in shared_outcomes() {
        // ETH is conserved no matter what was injected.
        assert!(outcome.eth_conserved, "{}: ETH leaked", outcome.name);
        // Whoever was aggregated gets paid from the full budget, exactly.
        assert!(outcome.n_models_aggregated > 0, "{}", outcome.name);
        assert!(outcome.budget_exhausted(), "{}", outcome.name);
        assert_eq!(outcome.payments.len(), outcome.n_models_aggregated);
        // Retrieved CIDs are always a subset of what is on-chain.
        assert!(outcome
            .cids_retrieved
            .iter()
            .all(|cid| outcome.cids_onchain.contains(cid)));
        // The chain dominates virtual time, so sessions take minutes.
        assert!(outcome.total_sim_seconds > 12.0, "{}", outcome.name);
    }
}

#[test]
fn failure_regimes_change_what_the_buyer_aggregates() {
    let outcomes = shared_outcomes();
    let by_name = |name: &str| -> &ScenarioOutcome {
        outcomes
            .iter()
            .find(|o| o.name == name)
            .unwrap_or_else(|| panic!("scenario {name} missing"))
    };
    // Clean partition regimes aggregate everyone.
    for name in ["iid", "dirichlet-0.5", "shards-2", "label-skew-3"] {
        let outcome = by_name(name);
        assert_eq!(outcome.n_models_aggregated, outcome.n_owners, "{name}");
        assert_eq!(outcome.reverted_tx_count, 0, "{name}");
    }
    // A dropped block leaves the CID on-chain but unfetchable.
    let dropped = by_name("dropped-ipfs-block");
    assert_eq!(dropped.cids_onchain.len(), dropped.n_owners);
    assert_eq!(dropped.n_models_aggregated, dropped.n_owners - 1);
    // A reverted uploadCid never reaches the contract.
    let reverted = by_name("reverted-cid-tx");
    assert_eq!(reverted.reverted_tx_count, 1);
    assert_eq!(reverted.cids_onchain.len(), reverted.n_owners - 1);
    // A freeloader is aggregated, but LOO prices it into the bottom of the
    // payment table (same bar as the seed adversarial suite: bottom two).
    let freeload = by_name("freeloading-owner");
    assert_eq!(freeload.n_models_aggregated, freeload.n_owners);
    let freeloader_payment = freeload.payments[0].1;
    let mut sorted: Vec<_> = freeload.payments.iter().map(|(_, w)| *w).collect();
    sorted.sort();
    assert!(
        freeloader_payment <= sorted[1],
        "freeloader overpaid: {freeloader_payment:?} vs {sorted:?}"
    );
    // A silent dropout simply doesn't participate.
    let dropout = by_name("silent-dropout");
    assert_eq!(dropout.cids_onchain.len(), dropout.n_owners - 1);
    // The combined storm still completes and pays the survivors.
    let storm = by_name("failure-storm");
    assert_eq!(storm.n_models_aggregated, storm.n_owners - 2);
    assert!(storm.budget_exhausted());
    // A flaky RPC provider faults the *infrastructure*, not the owners:
    // requests time out and are retried, every model still lands and is
    // aggregated, and the metering shows the wasted round trips.
    let flaky = by_name("flaky-provider");
    assert!(flaky.rpc_timeouts > 0, "flaky regime must drop requests");
    assert_eq!(flaky.n_models_aggregated, flaky.n_owners);
    assert_eq!(flaky.cids_onchain.len(), flaky.n_owners);
    assert!(flaky.budget_exhausted() && flaky.eth_conserved);
    // A throttling endpoint 429s bursts — including the wallet's signing
    // reads — yet back-off retries land every model and payment.
    let limited = by_name("rate-limited");
    assert!(limited.rpc_timeouts > 0, "429s must surface as rpc errors");
    assert_eq!(limited.n_models_aggregated, limited.n_owners);
    assert!(limited.budget_exhausted() && limited.eth_conserved);
}

/// The flaky-provider regime (and the session reports underneath it) are
/// bit-identical under equal fault seeds — the determinism bar the other
/// failure regimes already meet.
#[test]
fn flaky_provider_sessions_are_bit_identical_by_seed() {
    use ofl_w3::rpc::FaultProfile;

    // Scenario level: same sweep seed, same fingerprint.
    let run_flaky = || {
        let mut scenario = ScenarioSuite::failure_sweep(SUITE_SEED.wrapping_add(100))
            .scenarios
            .into_iter()
            .find(|s| s.name == "flaky-provider")
            .expect("flaky regime in the sweep");
        trim(&mut scenario);
        scenario.run().expect("flaky session completes via retries")
    };
    let a = run_flaky();
    let b = run_flaky();
    assert_eq!(a, b);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert!(a.rpc_timeouts > 0);

    // SessionReport level: every field of the report, including the
    // provider metering, is identical run to run.
    let config = || MarketConfig {
        seed: 4321,
        n_train: 500,
        n_test: 150,
        rpc_faults: Some(FaultProfile::new(0xBEEF, 0.2)),
        ..MarketConfig::small_test()
    };
    let (_, r1) = Marketplace::run(config()).expect("first flaky run");
    let (_, r2) = Marketplace::run(config()).expect("second flaky run");
    assert_eq!(r1.cids, r2.cids);
    assert_eq!(r1.local_accuracies, r2.local_accuracies);
    assert_eq!(r1.aggregated_accuracy, r2.aggregated_accuracy);
    assert_eq!(r1.total_sim_seconds, r2.total_sim_seconds);
    assert_eq!(r1.rpc, r2.rpc, "provider metering must be deterministic");
    assert!(r1.rpc.total_errors() > 0, "faults must actually fire");
    assert_eq!(
        r1.payments.iter().map(|p| p.amount_wei).collect::<Vec<_>>(),
        r2.payments.iter().map(|p| p.amount_wei).collect::<Vec<_>>()
    );
    assert_eq!(r1.buyer_breakdown, r2.buyer_breakdown);
    assert_eq!(r1.owner_breakdowns, r2.owner_breakdowns);
    // A clean run with the same market seed differs only in infrastructure:
    // same CIDs, fewer round trips.
    let clean = MarketConfig {
        rpc_faults: None,
        ..config()
    };
    let (_, r3) = Marketplace::run(clean).expect("clean run");
    assert_eq!(r1.cids, r3.cids);
    assert!(r1.rpc.round_trips > r3.rpc.round_trips);
}

/// The new concurrency regimes are bit-identically deterministic by seed:
/// rerunning the event-driven sweep reproduces every fingerprint.
#[test]
fn concurrency_regimes_are_deterministic_by_seed() {
    let run = || {
        trimmed(ScenarioSuite::concurrency_sweep(
            SUITE_SEED.wrapping_add(200),
        ))
        .run()
        .expect("every concurrency regime completes")
    };
    let first = run();
    let second = run();
    assert!(first.len() >= 3);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a, b, "{} diverged between event-driven reruns", a.name);
        assert_eq!(a.fingerprint(), b.fingerprint(), "{}", a.name);
        assert!(a.eth_conserved, "{}", a.name);
        assert!(a.budget_exhausted(), "{}", a.name);
    }
}

/// The headline acceptance scenario: 32 owners on the discrete-event
/// engine. Their `uploadCid` transactions pile into the shared mempool and
/// get mined into *shared* blocks — at least one block carries
/// transactions from ≥ 2 distinct owners (in fact all of them) — and the
/// session's total virtual time is strictly less than the serial engine's
/// for the same configuration.
#[test]
fn thirty_two_concurrent_owners_share_blocks_and_beat_serial() {
    let config = MarketConfig {
        n_owners: 32,
        n_train: 640,
        n_test: 60,
        partition: PartitionScheme::Iid,
        seed: 33,
        train: ofl_w3::fl::client::TrainConfig {
            dims: vec![784, 8, 10],
            epochs: 1,
            ..ofl_w3::fl::client::TrainConfig::default()
        },
        ..MarketConfig::small_test()
    };

    // Serial baseline: every owner in turn, one CID transaction per block.
    let serial = Scenario::new("serial-32", config.clone())
        .run()
        .expect("serial 32-owner session completes");
    assert_eq!(serial.n_models_aggregated, 32);

    // Event-driven: same config, same world parameters, concurrent owners.
    let (mm, report) = MultiMarket::new(vec![config])
        .run(&EngineConfig::default(), &[])
        .expect("event-driven 32-owner session completes");
    assert_eq!(report.sessions[0].payments.len(), 32);

    // Shared blocks: some block carries CID transactions from at least two
    // distinct owners (simultaneous arrival packs all 32 into one slot).
    assert!(
        report.max_owners_sharing_block() >= 2,
        "cid txs per block: {:?}",
        report.cid_txs_per_block
    );
    let packed: usize = report.cid_txs_per_block.iter().map(|(_, _, n)| n).sum();
    assert_eq!(packed, 32, "every owner's CID landed");

    // Strictly less virtual time than the serial schedule for the same
    // config (the serial engine pays ~12 s of blockchain wait per owner).
    assert!(
        report.sessions[0].total_sim_seconds < serial.total_sim_seconds,
        "event-driven {} s vs serial {} s",
        report.sessions[0].total_sim_seconds,
        serial.total_sim_seconds
    );

    // Same marketplace outcome, different schedule: identical CID sets.
    let mut event_cids = report.sessions[0].cids.clone();
    let mut serial_cids = serial.cids_onchain.clone();
    event_cids.sort();
    serial_cids.sort();
    assert_eq!(event_cids, serial_cids);

    // The contention actually exercised EIP-1559: the packed block moved
    // the base fee, which a one-tx-per-block serial run barely does.
    assert!(mm.world.chain(EndpointId(0)).height() >= 1);
}

/// Shard determinism, half one: a 2-shard `MultiMarket` run — two markets
/// placed on different chains of one provider pool — is bit-identical by
/// seed, down to per-endpoint RPC metering and per-shard block occupancy.
#[test]
fn two_shard_multimarket_is_bit_identical_by_seed() {
    let base = || MarketConfig {
        n_owners: 3,
        n_train: 300,
        n_test: 80,
        partition: PartitionScheme::Iid,
        seed: 77,
        train: ofl_w3::fl::client::TrainConfig {
            dims: vec![784, 16, 10],
            epochs: 1,
            ..ofl_w3::fl::client::TrainConfig::default()
        },
        ..MarketConfig::small_test()
    };
    let run = || {
        let (_, report) = ofl_w3::core::engine::MultiMarket::replicated_sharded(&base(), 2, 2)
            .run(&EngineConfig::default(), &[])
            .expect("sharded run completes");
        report
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_sim_seconds, b.total_sim_seconds);
    assert_eq!(a.cid_txs_per_block, b.cid_txs_per_block);
    assert_eq!(a.rpc, b.rpc);
    assert_eq!(a.rpc_per_endpoint, b.rpc_per_endpoint);
    for (ra, rb) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(ra.cids, rb.cids);
        assert_eq!(ra.total_sim_seconds, rb.total_sim_seconds);
        assert_eq!(ra.rpc, rb.rpc);
        assert_eq!(
            ra.payments.iter().map(|p| p.amount_wei).collect::<Vec<_>>(),
            rb.payments.iter().map(|p| p.amount_wei).collect::<Vec<_>>()
        );
    }
    // The placement did what it says: both shards carried CID traffic, and
    // each market's report snapshots its own endpoint's counters.
    assert_eq!(a.shards_with_cid_txs(), vec![EndpointId(0), EndpointId(1)]);
    assert_eq!(
        a.rpc.total_calls(),
        a.rpc_per_endpoint[0].total_calls() + a.rpc_per_endpoint[1].total_calls()
    );
    // And the scenario layer reaches the same regime deterministically.
    let scenario_run = || {
        let mut scenario = trimmed(ScenarioSuite::concurrency_sweep(
            SUITE_SEED.wrapping_add(200),
        ))
        .scenarios
        .into_iter()
        .find(|s| s.name == "sharded-2x4")
        .expect("sharded regime in the sweep");
        trim(&mut scenario);
        scenario.run().expect("sharded scenario completes")
    };
    let sa = scenario_run();
    let sb = scenario_run();
    assert_eq!(sa, sb);
    assert_eq!(sa.fingerprint(), sb.fingerprint());
    assert!(sa.eth_conserved && sa.budget_exhausted());
}

/// Shard determinism, half two: when both markets share one shard of a
/// 2-endpoint pool, the idle endpoint meters nothing, the busy endpoint's
/// counters equal the single-endpoint world's totals, and the run itself
/// is bit-identical to the pool-of-one world.
#[test]
fn same_shard_metrics_sum_to_single_endpoint_totals() {
    let base = || MarketConfig {
        n_owners: 3,
        n_train: 300,
        n_test: 80,
        partition: PartitionScheme::Iid,
        seed: 78,
        train: ofl_w3::fl::client::TrainConfig {
            dims: vec![784, 16, 10],
            epochs: 1,
            ..ofl_w3::fl::client::TrainConfig::default()
        },
        ..MarketConfig::small_test()
    };
    let configs = || {
        (0..2)
            .map(|m| {
                let mut c = base();
                c.seed = c.seed.wrapping_add(m as u64 * 7919);
                c.train.seed = c.train.seed.wrapping_add(m as u64 * 104_729);
                c
            })
            .collect::<Vec<_>>()
    };
    let (_, single) = ofl_w3::core::engine::MultiMarket::new(configs())
        .run(&EngineConfig::default(), &[])
        .expect("single-endpoint run");
    let (_, padded) = ofl_w3::core::engine::MultiMarket::with_shards(configs(), 2)
        .run(&EngineConfig::default(), &[])
        .expect("2-endpoint same-placement run");
    // The idle shard saw nothing; the busy shard saw everything.
    assert_eq!(padded.rpc_per_endpoint[1].total_calls(), 0);
    assert_eq!(padded.rpc_per_endpoint[0], single.rpc);
    // Per-endpoint metering sums to the single-endpoint totals.
    assert_eq!(
        padded.rpc_per_endpoint[0].total_calls() + padded.rpc_per_endpoint[1].total_calls(),
        single.rpc.total_calls()
    );
    assert_eq!(padded.rpc, single.rpc);
    // Same-shard placement reproduces the shared-block behavior
    // bit-identically: same blocks, same owners per block, same timing.
    assert_eq!(padded.total_sim_seconds, single.total_sim_seconds);
    assert_eq!(
        padded
            .cid_txs_per_block
            .iter()
            .map(|(_, b, n)| (*b, *n))
            .collect::<Vec<_>>(),
        single
            .cid_txs_per_block
            .iter()
            .map(|(_, b, n)| (*b, *n))
            .collect::<Vec<_>>()
    );
    assert!(padded.max_owners_sharing_block() >= 2);
    for (pa, sb) in padded.sessions.iter().zip(&single.sessions) {
        assert_eq!(pa.cids, sb.cids);
        assert_eq!(pa.total_sim_seconds, sb.total_sim_seconds);
    }
}

/// The determinism regression the roadmap asks for: two `Marketplace::run`
/// calls with the same `MarketConfig.seed` produce identical
/// `SessionReport`s — payments, accuracies, gas, CIDs, and timing.
#[test]
fn same_seed_yields_identical_session_reports() {
    let config = || MarketConfig {
        seed: 1234,
        n_train: 500,
        n_test: 150,
        ..MarketConfig::small_test()
    };
    let (_, a) = Marketplace::run(config()).expect("first run");
    let (_, b) = Marketplace::run(config()).expect("second run");

    assert_eq!(a.aggregated_accuracy, b.aggregated_accuracy);
    assert_eq!(a.local_accuracies, b.local_accuracies);
    assert_eq!(a.loo_drop_accuracies, b.loo_drop_accuracies);
    assert_eq!(a.contributions, b.contributions);
    assert_eq!(a.global_neurons, b.global_neurons);
    assert_eq!(a.cids, b.cids);
    assert_eq!(a.total_sim_seconds, b.total_sim_seconds);
    // Payments: same recipients, same amounts, same receipts' gas.
    assert_eq!(a.payments.len(), b.payments.len());
    for (pa, pb) in a.payments.iter().zip(&b.payments) {
        assert_eq!(pa.address, pb.address);
        assert_eq!(pa.amount_wei, pb.amount_wei);
        assert_eq!(pa.receipt.gas_used, pb.receipt.gas_used);
        assert_eq!(pa.receipt.fee, pb.receipt.fee);
    }
    // Gas table: identical labels and quantities row by row.
    assert_eq!(a.gas.len(), b.gas.len());
    for (ga, gb) in a.gas.iter().zip(&b.gas) {
        assert_eq!(ga.label, gb.label);
        assert_eq!(ga.gas_used, gb.gas_used);
        assert_eq!(ga.fee_wei, gb.fee_wei);
    }
    // Timing breakdowns agree phase by phase.
    assert_eq!(a.buyer_breakdown, b.buyer_breakdown);
    assert_eq!(a.owner_breakdowns, b.owner_breakdowns);
}

// ----------------------------------------------------------------------
// Out-of-process backend: the same scenarios served by an rpcd daemon.
// ----------------------------------------------------------------------

mod remote_backend {
    use super::*;
    use ofl_w3::core::engine::EngineReport;
    use ofl_w3::core::world::{ShardConfig, ShardSpec, DEFAULT_TX_WIRE_BYTES};
    use ofl_w3::netsim::link::NetworkProfile;
    use ofl_w3::rpc::{
        provision_socket_provider, provision_socket_provider_via, RemoteEndpoint, WireMode,
    };
    use ofl_w3::rpcd::{DaemonOptions, PipeTransport};

    /// Mounts one shard through the deterministic in-memory pipe: a real
    /// `rpcd` server connection, the full frame codec in both directions,
    /// zero threads.
    fn pipe_mounted(config: ShardConfig, profile: NetworkProfile) -> ShardSpec {
        ShardSpec::Mounted(
            provision_socket_provider(
                Box::new(PipeTransport::new()),
                config.chain.clone(),
                config.genesis.clone(),
                profile,
                DEFAULT_TX_WIRE_BYTES,
                config.knobs(),
            )
            .expect("pipe provisions"),
        )
    }

    /// Field-by-field equality of two engine runs — session reports,
    /// engine-level facts, and the RPC metering, i.e. "bit-identical" at
    /// the level the scenario layer can observe.
    fn assert_reports_identical(a: &EngineReport, b: &EngineReport) {
        assert_eq!(a.total_sim_seconds, b.total_sim_seconds);
        assert_eq!(a.cid_txs_per_block, b.cid_txs_per_block);
        assert_eq!(a.rpc, b.rpc);
        assert_eq!(a.rpc_per_endpoint, b.rpc_per_endpoint);
        assert_eq!(a.sessions.len(), b.sessions.len());
        for (ra, rb) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(ra.cids, rb.cids);
            assert_eq!(ra.local_accuracies, rb.local_accuracies);
            assert_eq!(ra.aggregated_accuracy, rb.aggregated_accuracy);
            assert_eq!(ra.loo_drop_accuracies, rb.loo_drop_accuracies);
            assert_eq!(ra.total_sim_seconds, rb.total_sim_seconds);
            assert_eq!(ra.rpc, rb.rpc);
            assert_eq!(ra.buyer_breakdown, rb.buyer_breakdown);
            assert_eq!(ra.owner_breakdowns, rb.owner_breakdowns);
            assert_eq!(ra.payments.len(), rb.payments.len());
            for (pa, pb) in ra.payments.iter().zip(&rb.payments) {
                assert_eq!(pa.address, pb.address);
                assert_eq!(pa.amount_wei, pb.amount_wei);
                assert_eq!(pa.receipt, pb.receipt);
            }
            assert_eq!(ra.gas.len(), rb.gas.len());
            for (ga, gb) in ra.gas.iter().zip(&rb.gas) {
                assert_eq!(
                    (&ga.label, ga.gas_used, ga.fee_wei),
                    (&gb.label, gb.gas_used, gb.fee_wei)
                );
            }
        }
        for (da, db) in a.details.iter().zip(&b.details) {
            assert_eq!(da.cids_onchain, db.cids_onchain);
            assert_eq!(da.cids_retrieved, db.cids_retrieved);
            assert_eq!(da.reverted_tx_count, db.reverted_tx_count);
        }
    }

    fn fleet_base(owners: usize, seed: u64) -> MarketConfig {
        MarketConfig {
            n_owners: owners,
            n_train: 100 * owners,
            n_test: 60,
            partition: PartitionScheme::Iid,
            seed,
            train: ofl_w3::fl::client::TrainConfig {
                dims: vec![784, 8, 10],
                epochs: 1,
                ..ofl_w3::fl::client::TrainConfig::default()
            },
            ..MarketConfig::small_test()
        }
    }

    /// CI smoke: a 2-market, 2-shard scenario with one shard served by an
    /// in-memory-piped rpcd connection runs the engine *unchanged* and
    /// reproduces the all-in-process run bit-identically.
    #[test]
    fn pipe_backed_shard_reproduces_in_process_run() {
        let configs = || MultiMarket::replica_configs(&fleet_base(3, 91), 2, 2);
        let profile = fleet_base(3, 91).profile;

        let (_, local) = MultiMarket::with_shards(configs(), 2)
            .run(&EngineConfig::default(), &[])
            .expect("in-process run");

        let mut shard_index = 0usize;
        let (_, piped) = MultiMarket::with_shards_via(configs(), 2, |config| {
            let spec = if shard_index == 1 {
                pipe_mounted(config, profile)
            } else {
                ShardSpec::Local(config)
            };
            shard_index += 1;
            spec
        })
        .run(&EngineConfig::default(), &[])
        .expect("pipe-backed run");

        assert_reports_identical(&local, &piped);
        // Both shards actually carried traffic.
        assert!(piped.rpc_per_endpoint[1].total_calls() > 0);
    }

    /// The headline acceptance criterion: a 32-owner multi-market scenario
    /// (4 markets × 8 owners round-robined over 2 shards) run against a
    /// `ProviderPool` whose shard 1 is a `ShardSpec::Remote` endpoint — a
    /// real TCP socket to an rpcd server — produces `SessionReport`s
    /// bit-identical to the all-in-process run under the same seed.
    #[test]
    fn remote_socket_shard_runs_32_owner_fleet_bit_identically() {
        let base = fleet_base(8, 47);
        let configs = || MultiMarket::replica_configs(&base, 4, 2);

        // All in-process first: the reference run.
        let (_, local) = MultiMarket::with_shards(configs(), 2)
            .run(&EngineConfig::default(), &[])
            .expect("in-process 32-owner fleet");
        let owners: usize = local.sessions.iter().map(|s| s.payments.len()).sum();
        assert_eq!(owners, 32);

        // A real rpcd server on an ephemeral TCP port, one connection.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || ofl_w3::rpcd::serve_listener(listener, Some(1)));

        let mut shard_index = 0usize;
        let (mm, remote) = MultiMarket::with_shards_via(configs(), 2, |config| {
            let spec = if shard_index == 1 {
                ShardSpec::Remote {
                    endpoint: RemoteEndpoint::Tcp(addr.clone()),
                    config,
                }
            } else {
                ShardSpec::Local(config)
            };
            shard_index += 1;
            spec
        })
        .run(&EngineConfig::default(), &[])
        .expect("remote-backed 32-owner fleet");

        assert_reports_identical(&local, &remote);
        // The remote shard really served its two markets' traffic: CID
        // transactions landed on both shards, and endpoint 1's metering —
        // client-side, over the socket — matches the in-process run's.
        assert_eq!(
            remote.shards_with_cid_txs(),
            vec![EndpointId(0), EndpointId(1)]
        );
        assert!(remote.rpc_per_endpoint[1].total_calls() > 0);
        assert_eq!(remote.rpc_per_endpoint[1], local.rpc_per_endpoint[1]);

        // Dropping the world closes the socket; the server thread drains.
        drop(mm);
        server.join().expect("rpcd server thread exits");
    }

    /// Mounts every shard of a fleet over its own TCP connection to one
    /// rpcd daemon, speaking the given wire mode, and runs the engine.
    fn tcp_fleet_run(
        configs: Vec<MarketConfig>,
        shards: usize,
        mode: WireMode,
        engine: &EngineConfig,
    ) -> EngineReport {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            ofl_w3::rpcd::serve_listener_with(listener, DaemonOptions::max(shards))
        });

        let profile = configs[0].profile;
        let (mm, report) = MultiMarket::with_shards_via(configs, shards, |config| {
            let transport = RemoteEndpoint::Tcp(addr.clone())
                .connect()
                .expect("connect to rpcd");
            ShardSpec::Mounted(
                provision_socket_provider_via(
                    transport,
                    config.chain.clone(),
                    config.genesis.clone(),
                    profile,
                    DEFAULT_TX_WIRE_BYTES,
                    config.knobs(),
                    mode,
                )
                .expect("provision over tcp"),
            )
        })
        .run(engine, &[])
        .expect("socket-backed fleet run");

        drop(mm);
        let stats = server.join().expect("rpcd server thread exits");
        assert_eq!(stats.connections as usize, shards);
        report
    }

    /// The pipelined request-id wire discipline is invisible to the
    /// simulation: the 32-owner fleet run over pipelined TCP sockets
    /// (window 8, both shards remote) reproduces the all-in-process run
    /// bit-identically — reports, metering, and timing breakdowns.
    #[test]
    fn pipelined_socket_shards_run_32_owner_fleet_bit_identically() {
        let base = fleet_base(8, 47);
        let configs = || MultiMarket::replica_configs(&base, 4, 2);

        let (_, local) = MultiMarket::with_shards(configs(), 2)
            .run(&EngineConfig::default(), &[])
            .expect("in-process 32-owner fleet");

        let piped = tcp_fleet_run(
            configs(),
            2,
            WireMode::Pipelined { window: 8 },
            &EngineConfig::default(),
        );
        assert_reports_identical(&local, &piped);
        assert!(piped.rpc_per_endpoint[1].total_calls() > 0);
    }

    /// The push-streaming acceptance pin: with event watching on, the
    /// 32-owner fleet's subscription streams — every NewHeads, Logs, and
    /// PendingTxs delivery across both shards, folded in delivery order
    /// into the engine's event digest — are bit-identical whether the
    /// shards run in-process, over the in-memory rpcd pipe, or over
    /// pipelined TCP sockets. The same hooks feed all three backends, so
    /// any divergence in push routing, codec, or ordering shows up here.
    #[test]
    fn push_event_streams_are_identical_across_backends() {
        let base = fleet_base(8, 47);
        let configs = || MultiMarket::replica_configs(&base, 4, 2);
        let engine = EngineConfig {
            watch_events: true,
            ..EngineConfig::default()
        };
        let profile = base.profile;

        let (_, local) = MultiMarket::with_shards(configs(), 2)
            .run(&engine, &[])
            .expect("in-process watched fleet");
        assert!(
            local.events_observed > 0,
            "a watched fleet run must deliver push events"
        );

        let (_, piped) =
            MultiMarket::with_shards_via(configs(), 2, |config| pipe_mounted(config, profile))
                .run(&engine, &[])
                .expect("pipe-backed watched fleet");

        let tcp = tcp_fleet_run(configs(), 2, WireMode::Pipelined { window: 8 }, &engine);

        assert_eq!(
            (local.events_observed, local.event_digest),
            (piped.events_observed, piped.event_digest),
            "pipe-backed push streams must match the in-process streams"
        );
        assert_eq!(
            (local.events_observed, local.event_digest),
            (tcp.events_observed, tcp.event_digest),
            "TCP pipelined push streams must match the in-process streams"
        );
        assert_reports_identical(&local, &piped);
        assert_reports_identical(&local, &tcp);
    }

    /// Fleet-scale pin: the full 1k-owner fleet (32 markets × 32 owners,
    /// 4 shards, `FinalizePolicy::FedAvgProportional`) produces the same
    /// digest in-process and over pipelined TCP sockets. Release-only —
    /// the engine run is minutes-slow without optimizations.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "1k-owner fleet needs a release build; run with `cargo test --release`"
    )]
    fn thousand_owner_fleet_is_bit_identical_over_pipelined_sockets() {
        let base = MarketConfig::fleet(32);
        let configs = || MultiMarket::replica_configs(&base, 32, 4);

        let (_, local) = MultiMarket::with_shards(configs(), 4)
            .run(&EngineConfig::default(), &[])
            .expect("in-process 1k-owner fleet");
        let owners: usize = local.sessions.iter().map(|s| s.payments.len()).sum();
        assert_eq!(owners, 1024);

        let piped = tcp_fleet_run(
            configs(),
            4,
            WireMode::Pipelined { window: 64 },
            &EngineConfig::default(),
        );
        assert_reports_identical(&local, &piped);
    }
}
