//! # ofl-w3 — umbrella crate
//!
//! Re-exports the full OFL-W3 stack so that examples and downstream users
//! can depend on a single crate. See the individual crates for details:
//!
//! - [`ofl_primitives`] — hashes, big integers, encodings
//! - [`ofl_eth`] — Ethereum-like blockchain simulator with a gas-metered EVM
//! - [`ofl_ipfs`] — content-addressed storage (CIDs, Merkle-DAG, swarm)
//! - [`ofl_tensor`] — dense tensors and MLP training
//! - [`ofl_data`] — synthetic MNIST and non-IID partitioners
//! - [`ofl_fl`] — one-shot FL algorithms (PFNM, ensemble, averaging) and FedAvg
//! - [`ofl_incentive`] — Leave-one-out / Shapley payment mechanisms
//! - [`ofl_netsim`] — simulated clock, links, and Flask-like services
//! - [`ofl_rpc`] — the node-API boundary: provider traits, typed RPC
//!   envelopes with batching, contract bindings, provider decorators, and
//!   the frame protocol + socket client for out-of-process backends
//! - [`ofl_rpcd`] — the node daemon serving that protocol over TCP/Unix
//!   sockets (plus the in-memory pipe transport tests mount)
//! - [`ofl_core`] — the OFL-W3 marketplace: buyers, owners, the 7-step workflow
//! - [`ofl_trace`] — deterministic virtual-time tracing, metrics, and trace-diff

#![forbid(unsafe_code)]

pub use ofl_core as core;
pub use ofl_data as data;
pub use ofl_eth as eth;
pub use ofl_fl as fl;
pub use ofl_incentive as incentive;
pub use ofl_ipfs as ipfs;
pub use ofl_netsim as netsim;
pub use ofl_primitives as primitives;
pub use ofl_rpc as rpc;
pub use ofl_rpcd as rpcd;
pub use ofl_tensor as tensor;
pub use ofl_trace as trace;
