//! `rpcd` — the OFL-W3 node daemon.
//!
//! Listens on a TCP address (or a Unix socket path) and serves the
//! `ofl-rpc` frame protocol: each connection provisions its own simulated
//! node (chain + IPFS swarm) with a `Provision` frame, then drives the
//! full `EthApi`/`IpfsApi`/backstage surface over the wire. Mount it into
//! a world as one `ShardSpec::Remote` endpoint of the provider pool.
//!
//! ```text
//! rpcd [--tcp 127.0.0.1:8945] [--unix /tmp/rpcd.sock] [--max-conns N]
//!      [--idle-timeout SECS] [--persist]
//! ```
//!
//! With `--max-conns N` the daemon exits after serving N connections
//! (handy in scripts and CI); without it, it serves forever.
//! `--idle-timeout SECS` sets a read deadline on accepted sockets so a
//! client stalled mid-frame frees its worker thread. `--persist` keeps
//! provisioned sessions alive across connections: provision once, hang
//! up, reconnect and `Attach` to the same live backend.

#![forbid(unsafe_code)]

use ofl_rpcd::DaemonOptions;
use std::net::TcpListener;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut tcp: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut options = DaemonOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => {
                tcp = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--tcp needs an address")),
                )
            }
            "--unix" => unix = Some(args.next().unwrap_or_else(|| usage("--unix needs a path"))),
            "--max-conns" => {
                let n = args
                    .next()
                    .unwrap_or_else(|| usage("--max-conns needs a count"));
                options.max_connections = Some(n.parse().unwrap_or_else(|_| {
                    usage("--max-conns needs an integer");
                }))
            }
            "--idle-timeout" => {
                let secs = args
                    .next()
                    .unwrap_or_else(|| usage("--idle-timeout needs seconds"));
                let secs: u64 = secs.parse().unwrap_or_else(|_| {
                    usage("--idle-timeout needs an integer second count");
                });
                if secs == 0 {
                    usage("--idle-timeout must be at least 1 second");
                }
                options.idle_timeout = Some(Duration::from_secs(secs));
            }
            "--persist" => options.sessions = Some(ofl_rpcd::new_session_store()),
            "--help" | "-h" => {
                usage("");
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }

    match (tcp, unix) {
        (Some(_), Some(_)) => usage("pick one of --tcp / --unix"),
        (None, Some(path)) => serve_unix(&path, options),
        (tcp, None) => {
            let addr = tcp.unwrap_or_else(|| "127.0.0.1:8945".into());
            let listener = TcpListener::bind(&addr)
                .unwrap_or_else(|e| usage(&format!("cannot bind {addr}: {e}")));
            println!(
                "rpcd: serving the OFL-W3 node API on tcp://{} (protocol v{}{})",
                listener.local_addr().map(|a| a.to_string()).unwrap_or(addr),
                ofl_rpc::PROTOCOL_VERSION,
                if options.sessions.is_some() {
                    ", persistent sessions"
                } else {
                    ""
                }
            );
            let stats = ofl_rpcd::serve_listener_with(listener, options);
            println!(
                "rpcd: served {} connections ({} accept errors, peak {} workers)",
                stats.connections, stats.accept_errors, stats.peak_workers
            );
        }
    }
}

#[cfg(unix)]
fn serve_unix(path: &str, options: DaemonOptions) {
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)
        .unwrap_or_else(|e| usage(&format!("cannot bind {path}: {e}")));
    println!(
        "rpcd: serving the OFL-W3 node API on unix://{path} (protocol v{}{})",
        ofl_rpc::PROTOCOL_VERSION,
        if options.sessions.is_some() {
            ", persistent sessions"
        } else {
            ""
        }
    );
    let stats = ofl_rpcd::serve_unix_listener_with(listener, options);
    println!(
        "rpcd: served {} connections ({} accept errors, peak {} workers)",
        stats.connections, stats.accept_errors, stats.peak_workers
    );
}

#[cfg(not(unix))]
fn serve_unix(_path: &str, _options: DaemonOptions) {
    usage("--unix is only available on unix platforms");
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("rpcd: {error}");
    }
    eprintln!(
        "usage: rpcd [--tcp ADDR] [--unix PATH] [--max-conns N] \
         [--idle-timeout SECS] [--persist]"
    );
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
