//! # ofl-rpcd
//!
//! The out-of-process node daemon: a dispatch loop that serves any
//! [`NodeProvider`] stack over the `ofl-rpc` frame protocol, one frame in →
//! one frame out, until the client says [`Frame::Shutdown`] or hangs up.
//! Sessions with live subscriptions additionally receive push frames:
//! after every dispatched frame the loop drains pending notifications and
//! writes them as [`Frame::Notify`] **before** the reply, so by the time a
//! client has read a reply every push that dispatch caused is already
//! buffered on its side of the wire.
//!
//! Three transports share the same dispatch code:
//!
//! - **TCP** ([`serve_listener`] / [`serve_listener_with`]) and **Unix
//!   sockets** ([`serve_unix_listener`]) — real sockets, one thread per
//!   connection: what the `rpcd` binary runs.
//! - **In-memory pipe** ([`PipeTransport`]) — client and server in one
//!   process with zero threads: each `send` encodes the frame to wire
//!   bytes, decodes it server-side, dispatches, and queues the encoded
//!   reply. Deterministic, and it still exercises the full codec in both
//!   directions.
//!
//! ## Provisioning and sessions
//!
//! A connection starts **unprovisioned**: the first frame is normally
//! [`Frame::Provision`], which builds a backend — a fresh simulated node
//! (chain + swarm) with the requested genesis. Bare frames address session
//! 0; a v2 [`Frame::Request`] envelope addresses any session id, so one
//! connection can provision and serve several independent shard backends
//! concurrently (each request's reply carries the correlation id back).
//!
//! By default sessions are **private** to their connection and die with
//! it. A daemon started with [`DaemonOptions::sessions`] (the `--persist`
//! flag) instead keeps sessions in a store shared across connections:
//! provision once, reconnect later, [`Frame::Attach`] to the same live
//! backend. A daemon can also be started around a pre-built provider stack
//! ([`Connection::with_backend`]) when the operator wants decorators to
//! run server-side.
//!
//! ## Error handling
//!
//! Malformed payloads and version mismatches are answered **in-band** with
//! a typed [`Frame::Error`] — the connection survives. Only unframeable
//! input (bad magic, an over-cap length prefix, raw I/O failure) ends the
//! connection, because the byte stream itself is no longer trustworthy.
//! The accept loop logs accept errors, backs off exponentially, and gives
//! up after [`DaemonOptions::max_accept_failures`] consecutive failures
//! instead of busy-spinning; finished workers are reaped on every accept
//! so a long-lived daemon holds a bounded set of [`JoinHandle`]s.
//!
//! [`JoinHandle`]: std::thread::JoinHandle

#![forbid(unsafe_code)]

use ofl_eth::chain::Chain;
use ofl_ipfs::swarm::Swarm;
use ofl_rpc::frame::{Frame, FrameError, ProtocolError};
use ofl_rpc::transport::FrameTransport;
use ofl_rpc::{BackstageOp, NodeProvider, SimProvider};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Live daemon counters shared between the accept loop and every
/// connection it spawns, so any client can probe daemon health in-band
/// with [`Frame::Stats`]. All counters are monotone except the session
/// census, which is computed from the live store at probe time.
#[derive(Debug, Default)]
struct GaugeInner {
    workers_reaped: AtomicU64,
    accept_backoffs: AtomicU64,
    frames_served: AtomicU64,
}

/// A clonable handle onto one daemon's shared counters.
#[derive(Debug, Clone, Default)]
pub struct DaemonGauges(Arc<GaugeInner>);

impl DaemonGauges {
    /// Finished worker threads reaped by the accept loop so far.
    pub fn workers_reaped(&self) -> u64 {
        self.0.workers_reaped.load(Ordering::Relaxed)
    }
    /// Accept failures that triggered a back-off sleep.
    pub fn accept_backoffs(&self) -> u64 {
        self.0.accept_backoffs.load(Ordering::Relaxed)
    }
    /// Frames dispatched across every connection of this daemon.
    pub fn frames_served(&self) -> u64 {
        self.0.frames_served.load(Ordering::Relaxed)
    }
    fn count_reaped(&self, n: u64) {
        self.0.workers_reaped.fetch_add(n, Ordering::Relaxed);
    }
    fn count_backoff(&self) {
        self.0.accept_backoffs.fetch_add(1, Ordering::Relaxed);
    }
    fn count_frame(&self) {
        self.0.frames_served.fetch_add(1, Ordering::Relaxed);
    }
}

/// Session backends shared across connections by a persistent daemon:
/// session id → live provider. Provision once, attach from any later
/// connection.
pub type SessionStore = Arc<Mutex<BTreeMap<u64, Box<dyn NodeProvider + Send>>>>;

/// A fresh, empty [`SessionStore`].
pub fn new_session_store() -> SessionStore {
    SessionStore::default()
}

/// Locks a shared session store, recovering from poisoning. Every
/// critical section over the store is a single map operation (entry
/// insert or `get_mut` + dispatch), so a worker thread that panicked
/// mid-hold cannot have left the map half-written — and one bad
/// connection must never take the whole daemon's store down with it.
fn lock_sessions(
    store: &Mutex<BTreeMap<u64, Box<dyn NodeProvider + Send>>>,
) -> std::sync::MutexGuard<'_, BTreeMap<u64, Box<dyn NodeProvider + Send>>> {
    store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Where a connection's session backends live.
enum Backends {
    /// Sessions owned by this connection alone; they die with it.
    Private(BTreeMap<u64, Box<dyn NodeProvider>>),
    /// Sessions in a daemon-wide store that outlives connections.
    Shared(SessionStore),
}

/// One client's server-side state: the session backends it can reach and
/// the dispatch logic.
pub struct Connection {
    backends: Backends,
    /// Frames dispatched so far (diagnostics).
    pub frames_served: u64,
    /// Live subscription count per session *this connection* opened. Push
    /// routing is per-connection: a client that reconnects and attaches to
    /// a persistent session re-subscribes to resume delivery.
    subs: BTreeMap<u64, u64>,
    /// Daemon-wide counters this connection reports through
    /// [`Frame::Stats`]. A standalone connection (pipe transports, unit
    /// tests) carries its own private instance.
    gauges: DaemonGauges,
}

impl Default for Connection {
    fn default() -> Connection {
        Connection::new()
    }
}

impl Connection {
    /// A connection that waits for [`Frame::Provision`]; its sessions are
    /// private and die with it.
    pub fn new() -> Connection {
        Connection {
            backends: Backends::Private(BTreeMap::new()),
            frames_served: 0,
            subs: BTreeMap::new(),
            gauges: DaemonGauges::default(),
        }
    }

    /// A connection serving a pre-built provider stack (sim + any
    /// decorators the operator mounted) as session 0.
    /// [`Frame::Provision`] for session 0 is refused.
    pub fn with_backend(provider: Box<dyn NodeProvider>) -> Connection {
        let mut sessions = BTreeMap::new();
        sessions.insert(0, provider);
        Connection {
            backends: Backends::Private(sessions),
            frames_served: 0,
            subs: BTreeMap::new(),
            gauges: DaemonGauges::default(),
        }
    }

    /// A connection onto a persistent daemon's shared [`SessionStore`]:
    /// sessions it provisions outlive it, and sessions earlier
    /// connections provisioned are reachable by [`Frame::Attach`].
    pub fn sharing(store: SessionStore) -> Connection {
        Connection {
            backends: Backends::Shared(store),
            frames_served: 0,
            subs: BTreeMap::new(),
            gauges: DaemonGauges::default(),
        }
    }

    /// Rebinds this connection's [`Frame::Stats`] reporting onto a shared
    /// set of daemon counters (the accept loop wires every spawned
    /// connection to its own gauges this way).
    pub fn with_gauges(mut self, gauges: DaemonGauges) -> Connection {
        self.gauges = gauges;
        self
    }

    /// Dispatches one frame, returning the reply and whether the client
    /// asked to close the connection. A [`Frame::Request`] envelope is
    /// unwrapped, dispatched against its session, and answered with a
    /// [`Frame::Reply`] carrying the same correlation id; bare frames
    /// address session 0.
    pub fn handle(&mut self, frame: Frame) -> (Frame, bool) {
        match frame {
            Frame::Request { id, session, frame } => {
                let (reply, done) = self.dispatch(session, *frame);
                (
                    Frame::Reply {
                        id,
                        frame: Box::new(reply),
                    },
                    done,
                )
            }
            frame => self.dispatch(0, frame),
        }
    }

    fn dispatch(&mut self, session: u64, frame: Frame) -> (Frame, bool) {
        self.frames_served += 1;
        self.gauges.count_frame();
        ofl_trace::trace_event!(
            ofl_trace::Category::Rpcd,
            "rpcd.dispatch",
            "session" => session,
            "served" => self.frames_served,
        );
        let reply = match frame {
            Frame::Provision { chain, genesis } => {
                // The provisioned backend is a *bare* simulated node:
                // costs come back zero and the client's own decorator
                // stack prices, faults, and meters — exactly like an
                // in-process SimProvider.
                let fresh = || {
                    Box::new(SimProvider::new(
                        Chain::new(chain.clone(), &genesis),
                        Swarm::new(),
                    ))
                };
                use std::collections::btree_map::Entry;
                match &mut self.backends {
                    Backends::Private(sessions) => match sessions.entry(session) {
                        Entry::Occupied(_) => Frame::Error(ProtocolError::AlreadyProvisioned),
                        Entry::Vacant(slot) => {
                            slot.insert(fresh());
                            Frame::Provisioned
                        }
                    },
                    Backends::Shared(store) => {
                        let mut sessions = lock_sessions(store);
                        match sessions.entry(session) {
                            Entry::Occupied(_) => Frame::Error(ProtocolError::AlreadyProvisioned),
                            Entry::Vacant(slot) => {
                                slot.insert(fresh());
                                Frame::Provisioned
                            }
                        }
                    }
                }
            }
            Frame::Attach { session: target } => self
                .with_provider(target, |p| p.backstage(&BackstageOp::Height).into_u64())
                .map_or(
                    Frame::Error(ProtocolError::NoSuchSession(target)),
                    |height| Frame::Attached { height },
                ),
            Frame::Execute(request) => match self.with_provider(session, |p| p.execute(&request)) {
                Ok(response) => Frame::Response(response),
                Err(error) => Frame::Error(error),
            },
            Frame::Batch(requests) => match self.with_provider(session, |p| p.batch(&requests)) {
                Ok(responses) => Frame::BatchResponse(responses),
                Err(error) => Frame::Error(error),
            },
            Frame::IpfsAdd { node, data } => {
                match self.with_ipfs(session, node, |p| p.add(node as usize, &data)) {
                    Ok(billed) => Frame::IpfsAdded {
                        cost: billed.cost,
                        result: billed.value,
                    },
                    Err(error) => Frame::Error(error),
                }
            }
            Frame::IpfsCat { node, cid } => {
                match self.with_ipfs(session, node, |p| p.cat(node as usize, &cid)) {
                    Ok(billed) => Frame::IpfsCatted {
                        cost: billed.cost,
                        result: billed.value,
                    },
                    Err(error) => Frame::Error(error),
                }
            }
            Frame::IpfsPin { node, cid } => {
                match self.with_ipfs(session, node, |p| p.pin(node as usize, &cid)) {
                    Ok(billed) => Frame::IpfsPinned {
                        cost: billed.cost,
                        result: billed.value,
                    },
                    Err(error) => Frame::Error(error),
                }
            }
            Frame::Backstage(op) => match self.with_provider(session, |p| p.backstage(&op)) {
                Ok(reply) => Frame::BackstageReply(reply),
                Err(error) => Frame::Error(error),
            },
            Frame::Subscribe { kind } => match self.with_provider(session, |p| p.subscribe(kind)) {
                Ok(sub_id) => {
                    *self.subs.entry(session).or_insert(0) += 1;
                    Frame::Subscribed { sub_id }
                }
                Err(error) => Frame::Error(error),
            },
            Frame::Unsubscribe { sub_id } => {
                match self.with_provider(session, |p| p.unsubscribe(sub_id)) {
                    // Echo the cancelled id; an unknown id echoes 0 (real
                    // ids start at 1) so the client can tell the cases
                    // apart without a dedicated boolean frame.
                    Ok(true) => {
                        if let Some(count) = self.subs.get_mut(&session) {
                            *count -= 1;
                            if *count == 0 {
                                self.subs.remove(&session);
                            }
                        }
                        Frame::Unsubscribed { sub_id }
                    }
                    Ok(false) => Frame::Unsubscribed { sub_id: 0 },
                    Err(error) => Frame::Error(error),
                }
            }
            // Read-only admin probe: a census of the daemon's shared
            // counters plus the process-wide metrics registry, so an
            // operator can watch queue depths and phase timings without
            // attaching a debugger to the daemon.
            Frame::Stats => Frame::StatsReply {
                sessions: self.session_count(),
                workers_reaped: self.gauges.workers_reaped(),
                accept_backoffs: self.gauges.accept_backoffs(),
                frames_served: self.gauges.frames_served(),
                metrics: ofl_trace::metrics::snapshot_flat(),
            },
            Frame::Shutdown => return (Frame::Goodbye, true),
            // The codec refuses nested envelopes; this arm only fires on a
            // hand-built frame.
            Frame::Request { .. } => {
                Frame::Error(ProtocolError::Unsupported("nested request envelope".into()))
            }
            // A server never receives server→client frames.
            other => Frame::Error(ProtocolError::Unsupported(format!(
                "client sent a server-side frame: {other:?}"
            ))),
        };
        (reply, false)
    }

    /// How many live session backends this connection can reach — the
    /// shared store's census for a persistent daemon, this connection's
    /// own sessions otherwise.
    fn session_count(&self) -> u64 {
        match &self.backends {
            Backends::Private(sessions) => sessions.len() as u64,
            Backends::Shared(store) => lock_sessions(store).len() as u64,
        }
    }

    /// True when this connection holds at least one live subscription —
    /// such connections are exempt from the idle-timeout reap (the serve
    /// loop probes them with [`Frame::Ping`] instead).
    pub fn has_live_subscriptions(&self) -> bool {
        !self.subs.is_empty()
    }

    /// Collects every notification pending on the sessions this connection
    /// subscribed to, as wire-ready [`Frame::Notify`] frames in session
    /// order. The serve loops write these **before** the reply that
    /// triggered them — that ordering is the client's guarantee that a
    /// received reply implies all of its pushes are already buffered.
    pub fn drain_pushes(&mut self) -> Vec<Frame> {
        let sessions: Vec<u64> = self.subs.keys().copied().collect();
        let mut pushes = Vec::new();
        for session in sessions {
            if let Ok(notes) = self.with_provider(session, |p| p.drain_notifications()) {
                pushes.extend(notes.into_iter().map(|n| Frame::Notify {
                    session,
                    sub_id: n.sub_id,
                    seq: n.seq,
                    event: n.event,
                }));
            }
        }
        pushes
    }

    /// Runs `f` against `session`'s provider, whichever store it lives in.
    fn with_provider<R>(
        &mut self,
        session: u64,
        f: impl FnOnce(&mut dyn NodeProvider) -> R,
    ) -> Result<R, ProtocolError> {
        let missing = || {
            if session == 0 {
                ProtocolError::Unprovisioned
            } else {
                ProtocolError::NoSuchSession(session)
            }
        };
        match &mut self.backends {
            Backends::Private(sessions) => sessions
                .get_mut(&session)
                .map(|p| f(p.as_mut()))
                .ok_or_else(missing),
            Backends::Shared(store) => lock_sessions(store)
                .get_mut(&session)
                .map(|p| f(p.as_mut()))
                .ok_or_else(missing),
        }
    }

    /// Like [`Connection::with_provider`], additionally bounds-checking
    /// the IPFS node index so a buggy client cannot crash the daemon
    /// thread.
    fn with_ipfs<R>(
        &mut self,
        session: u64,
        node: u64,
        f: impl FnOnce(&mut dyn NodeProvider) -> R,
    ) -> Result<R, ProtocolError> {
        self.with_provider(session, |p| {
            let nodes = p.swarm().len() as u64;
            if node >= nodes {
                return Err(ProtocolError::Unsupported(format!(
                    "ipfs node {node} out of range (swarm has {nodes})"
                )));
            }
            Ok(f(p))
        })?
    }
}

/// Serves one connection's dispatch loop over a blocking byte stream until
/// the client shuts down, hangs up, or the stream desyncs. Returns how many
/// frames were served.
pub fn serve_stream<S: Read + Write>(
    mut stream: S,
    mut conn: Connection,
) -> Result<u64, FrameError> {
    loop {
        let frame = match Frame::read_from(&mut stream) {
            Ok(frame) => frame,
            // The read deadline elapsed on a connection with live
            // subscriptions: that is a *subscriber sitting quiet between
            // frames*, not a stalled client. Probe liveness with a Ping
            // and ship any pending pushes; a dead peer fails the write
            // and frees the worker.
            Err(FrameError::Timeout) if conn.has_live_subscriptions() => {
                if Frame::Ping.write_to(&mut stream).is_err() {
                    return Ok(conn.frames_served);
                }
                for push in conn.drain_pushes() {
                    if push.write_to(&mut stream).is_err() {
                        return Ok(conn.frames_served);
                    }
                }
                continue;
            }
            // A clean hangup between frames is a normal end of session. A
            // read deadline expiring on a subscription-less connection
            // surfaces here too — either way the worker thread is freed.
            Err(FrameError::Io(_) | FrameError::Timeout) if conn.frames_served > 0 => {
                return Ok(conn.frames_served)
            }
            // Typed payload failures are answered in-band; the stream is
            // still frame-synced.
            Err(FrameError::Codec(e)) => {
                Frame::Error(ProtocolError::Malformed(e.to_string())).write_to(&mut stream)?;
                continue;
            }
            Err(FrameError::Version { got }) => {
                Frame::Error(ProtocolError::Unsupported(format!(
                    "protocol v{got} (this daemon speaks v{})",
                    ofl_rpc::PROTOCOL_VERSION
                )))
                .write_to(&mut stream)?;
                continue;
            }
            // Bad magic / oversized / hard I/O: the stream is lost.
            Err(e) => return Err(e),
        };
        let (reply, done) = conn.handle(frame);
        // Pushes caused by this dispatch go out before its reply — the
        // ordering contract clients rely on (see the module docs).
        for push in conn.drain_pushes() {
            push.write_to(&mut stream)?;
        }
        reply.write_to(&mut stream)?;
        if done {
            return Ok(conn.frames_served);
        }
    }
}

/// Knobs for the daemon accept loop.
#[derive(Clone)]
pub struct DaemonOptions {
    /// Stop accepting after this many connections (forever when `None`).
    pub max_connections: Option<usize>,
    /// Read deadline set on accepted sockets, so a client stalled
    /// mid-frame frees its worker thread instead of wedging it forever.
    /// `None` means block indefinitely.
    pub idle_timeout: Option<Duration>,
    /// Initial back-off after a failed accept; doubles per consecutive
    /// failure, capped at one second.
    pub accept_retry: Duration,
    /// Give up (return from the accept loop) after this many
    /// *consecutive* accept failures — a persistent fault like fd
    /// exhaustion must not become a hot spin.
    pub max_accept_failures: u32,
    /// When set, connections share this session store: sessions outlive
    /// the connection that provisioned them and later connections can
    /// [`Frame::Attach`] to them (the `--persist` daemon mode).
    pub sessions: Option<SessionStore>,
    /// Shared counters every connection reports through [`Frame::Stats`].
    /// Callers that want to watch the daemon from outside keep a clone.
    pub gauges: DaemonGauges,
}

impl Default for DaemonOptions {
    fn default() -> DaemonOptions {
        DaemonOptions {
            max_connections: None,
            idle_timeout: None,
            accept_retry: Duration::from_millis(10),
            max_accept_failures: 32,
            sessions: None,
            gauges: DaemonGauges::default(),
        }
    }
}

impl DaemonOptions {
    /// Defaults with an accept budget of `n` connections.
    pub fn max(n: usize) -> DaemonOptions {
        DaemonOptions {
            max_connections: Some(n),
            ..DaemonOptions::default()
        }
    }
}

/// What an accept loop did, for operators and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Accepts that failed (logged, backed off).
    pub accept_errors: u64,
    /// Most worker threads alive at once — bounded by reaping, where the
    /// pre-hardening loop grew its handle list without bound.
    pub peak_workers: usize,
}

/// The accept loop every listener flavor shares: each accepted stream is
/// served on its own thread with a fresh [`Connection`] (session-sharing
/// when [`DaemonOptions::sessions`] is set). Finished workers are reaped
/// on every accept; accept errors are logged and backed off, and the loop
/// exits after [`DaemonOptions::max_accept_failures`] consecutive
/// failures. Returns once the accept budget is spent **and** every served
/// connection has ended.
pub fn serve_incoming<S>(
    incoming: impl Iterator<Item = std::io::Result<S>>,
    options: DaemonOptions,
) -> DaemonStats
where
    S: Read + Write + Send + 'static,
{
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut stats = DaemonStats::default();
    let mut consecutive_failures = 0u32;
    let mut backoff = options.accept_retry;
    for stream in incoming {
        let stream = match stream {
            Ok(stream) => {
                consecutive_failures = 0;
                backoff = options.accept_retry;
                stream
            }
            Err(error) => {
                stats.accept_errors += 1;
                consecutive_failures += 1;
                options.gauges.count_backoff();
                eprintln!("rpcd: accept failed ({consecutive_failures} in a row): {error}");
                if consecutive_failures >= options.max_accept_failures {
                    eprintln!(
                        "rpcd: giving up after {consecutive_failures} consecutive accept failures"
                    );
                    break;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
                continue;
            }
        };
        let before = workers.len();
        workers.retain(|worker| !worker.is_finished());
        options.gauges.count_reaped((before - workers.len()) as u64);
        let sessions = options.sessions.clone();
        let gauges = options.gauges.clone();
        workers.push(std::thread::spawn(move || {
            let conn = match sessions {
                Some(store) => Connection::sharing(store),
                None => Connection::new(),
            }
            .with_gauges(gauges);
            let _ = serve_stream(stream, conn);
        }));
        stats.connections += 1;
        stats.peak_workers = stats.peak_workers.max(workers.len());
        if options
            .max_connections
            .is_some_and(|max| stats.connections as usize >= max)
        {
            break;
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
    stats
}

/// [`serve_incoming`] over a TCP listener: `TCP_NODELAY` plus the
/// configured read deadline on every accepted socket.
pub fn serve_listener_with(listener: TcpListener, options: DaemonOptions) -> DaemonStats {
    let idle = options.idle_timeout;
    serve_incoming(
        listener.incoming().map(move |stream| {
            stream.inspect(|s| {
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(idle);
            })
        }),
        options,
    )
}

/// Accepts up to `max_connections` TCP connections (forever when `None`),
/// serving each on its own thread with a fresh provisionable
/// [`Connection`].
pub fn serve_listener(listener: TcpListener, max_connections: Option<usize>) {
    serve_listener_with(
        listener,
        DaemonOptions {
            max_connections,
            ..DaemonOptions::default()
        },
    );
}

/// [`serve_listener_with`] over a Unix domain socket.
#[cfg(unix)]
pub fn serve_unix_listener_with(listener: UnixListener, options: DaemonOptions) -> DaemonStats {
    let idle = options.idle_timeout;
    serve_incoming(
        listener.incoming().map(move |stream| {
            stream.inspect(|s| {
                let _ = s.set_read_timeout(idle);
            })
        }),
        options,
    )
}

/// [`serve_listener`] over a Unix domain socket.
#[cfg(unix)]
pub fn serve_unix_listener(listener: UnixListener, max_connections: Option<usize>) {
    serve_unix_listener_with(
        listener,
        DaemonOptions {
            max_connections,
            ..DaemonOptions::default()
        },
    );
}

/// Client and daemon in one process, zero threads, full codec fidelity:
/// every `send` encodes the frame to wire bytes, re-decodes it
/// server-side, dispatches on the embedded [`Connection`], and queues the
/// **encoded** reply for `recv` to decode — so both directions of the wire
/// format are exercised on every call, deterministically.
pub struct PipeTransport {
    conn: Connection,
    replies: VecDeque<Vec<u8>>,
    /// Push frames diverted out of the reply stream by `recv`, waiting
    /// for `drain_pushes`.
    pushes: VecDeque<Frame>,
    /// Reused request-side encode buffer (replies need owned buffers, so
    /// only the outbound leg can recycle its allocation).
    wire: Vec<u8>,
}

impl PipeTransport {
    /// A pipe to a fresh provisionable server connection.
    pub fn new() -> PipeTransport {
        PipeTransport::over(Connection::new())
    }

    /// A pipe to a server connection with a pre-mounted backend.
    pub fn over(conn: Connection) -> PipeTransport {
        PipeTransport {
            conn,
            replies: VecDeque::new(),
            pushes: VecDeque::new(),
            wire: Vec::new(),
        }
    }
}

impl Default for PipeTransport {
    fn default() -> Self {
        PipeTransport::new()
    }
}

impl FrameTransport for PipeTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), FrameError> {
        frame.encode_into(&mut self.wire)?;
        let (decoded, _) = Frame::decode(&self.wire)?;
        let (reply, _done) = self.conn.handle(decoded);
        // Same wire ordering as the stream loops: pushes caused by this
        // dispatch are queued before the reply, and `recv` diverts them.
        for push in self.conn.drain_pushes() {
            self.replies.push_back(push.encode());
        }
        self.replies.push_back(reply.encode());
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, FrameError> {
        loop {
            let wire = self
                .replies
                .pop_front()
                .ok_or_else(|| FrameError::Io("pipe: recv with no pending reply".into()))?;
            match Frame::decode(&wire).map(|(frame, _)| frame)? {
                push @ Frame::Notify { .. } => self.pushes.push_back(push),
                Frame::Ping => {}
                frame => return Ok(frame),
            }
        }
    }

    fn drain_pushes(&mut self) -> Vec<Frame> {
        self.pushes.drain(..).collect()
    }

    fn peer(&self) -> String {
        "pipe://in-memory".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_eth::chain::ChainConfig;
    use ofl_eth::wallet::Wallet;
    use ofl_primitives::u256::U256;
    use ofl_primitives::wei_per_eth;
    use ofl_rpc::{
        BackstageOp, EthApi, IpfsApi, NodeProvider, RpcMethod, RpcRequest, RpcResult, SessionMux,
        SocketProvider, SubEvent, SubscriptionKind, WireMode,
    };

    fn provisioned_socket(n_accounts: usize) -> (SocketProvider, Wallet) {
        let wallet = Wallet::from_seed("rpcd-test", n_accounts);
        let genesis: Vec<_> = wallet
            .addresses()
            .iter()
            .map(|a| (*a, wei_per_eth()))
            .collect();
        let mut socket = SocketProvider::new(Box::new(PipeTransport::new()));
        socket
            .provision(ChainConfig::default(), genesis)
            .expect("pipe provisions");
        (socket, wallet)
    }

    #[test]
    fn provision_execute_and_backstage_over_the_pipe() {
        let (mut socket, wallet) = provisioned_socket(2);
        let [a, b] = [wallet.addresses()[0], wallet.addresses()[1]];
        assert_eq!(socket.get_balance(&a).value.unwrap(), wei_per_eth());

        // Submit a transfer through the wire, mine backstage, poll it back.
        let env_chain_id = socket.chain_id().value.unwrap();
        assert_eq!(env_chain_id, ChainConfig::default().chain_id);
        let nonce = socket.get_transaction_count(&a).value.unwrap();
        assert_eq!(nonce, 0);
        let config = socket.backstage(&BackstageOp::Config).into_config();
        let raw = {
            // Sign locally against the fetched environment (no local chain).
            use ofl_eth::tx::{sign_tx, TxRequest};
            let key = wallet.account(&a).unwrap().private_key;
            sign_tx(
                TxRequest {
                    chain_id: config.chain_id,
                    nonce,
                    max_priority_fee_per_gas: U256::from(1_500_000_000u64),
                    max_fee_per_gas: U256::from(40_000_000_000u64),
                    gas_limit: 21_000,
                    to: Some(b),
                    value: U256::from(5u64),
                    data: Vec::new(),
                },
                &key,
            )
            .unwrap()
            .encode()
        };
        let hash = socket.send_raw_transaction(&raw).value.unwrap();
        assert_eq!(
            socket.get_transaction_receipt(hash).value.unwrap(),
            None,
            "unmined"
        );
        let block = socket
            .backstage(&BackstageOp::MineSlot { slot_secs: 12 })
            .into_block();
        assert_eq!(block.tx_hashes, vec![hash]);
        let receipt = socket
            .get_transaction_receipt(hash)
            .value
            .unwrap()
            .expect("mined");
        assert!(receipt.is_success());
        assert_eq!(socket.backstage(&BackstageOp::Height).into_u64(), 1);
    }

    #[test]
    fn batches_travel_as_one_frame_and_scatter_in_order() {
        let (mut socket, wallet) = provisioned_socket(1);
        let a = wallet.addresses()[0];
        let responses = socket.batch(&[
            RpcRequest::new(7, RpcMethod::BlockNumber),
            RpcRequest::new(8, RpcMethod::GetBalance { address: a }),
            RpcRequest::new(9, RpcMethod::ChainId),
        ]);
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].id, 7);
        assert!(matches!(responses[0].result, Ok(RpcResult::BlockNumber(0))));
        assert!(matches!(&responses[1].result, Ok(RpcResult::Balance(b)) if *b == wei_per_eth()));
        assert!(matches!(responses[2].result, Ok(RpcResult::ChainId(_))));
    }

    #[test]
    fn pipelined_wire_mode_batches_through_request_envelopes() {
        let wallet = Wallet::from_seed("rpcd-pipelined", 1);
        let a = wallet.addresses()[0];
        let mut socket = SocketProvider::with_mode(
            Box::new(PipeTransport::new()),
            WireMode::Pipelined { window: 8 },
        );
        socket
            .provision(ChainConfig::default(), vec![(a, wei_per_eth())])
            .expect("pipe provisions");
        let responses = socket.batch(&[
            RpcRequest::new(7, RpcMethod::BlockNumber),
            RpcRequest::new(8, RpcMethod::GetBalance { address: a }),
            RpcRequest::new(9, RpcMethod::ChainId),
        ]);
        assert_eq!(responses.len(), 3);
        assert!(matches!(responses[0].result, Ok(RpcResult::BlockNumber(0))));
        assert!(matches!(&responses[1].result, Ok(RpcResult::Balance(b)) if *b == wei_per_eth()));
        assert!(matches!(responses[2].result, Ok(RpcResult::ChainId(_))));
    }

    #[test]
    fn ipfs_round_trips_with_spawned_nodes() {
        let (mut socket, _) = provisioned_socket(1);
        let n0 = socket
            .backstage(&BackstageOp::SpawnIpfsNode { label: "a".into() })
            .into_u64() as usize;
        let n1 = socket
            .backstage(&BackstageOp::SpawnIpfsNode { label: "b".into() })
            .into_u64() as usize;
        let added = socket.add(n0, b"model bytes").value;
        let (bytes, stats) = socket.cat(n1, &added.root).value.unwrap();
        assert_eq!(bytes, b"model bytes");
        assert!(stats.blocks_fetched >= 1);
        assert!(socket.pin(n1, &added.root).value.is_ok());
        assert!(socket
            .backstage(&BackstageOp::SwarmHas {
                cid: added.root.clone()
            })
            .into_flag());
        socket.backstage(&BackstageOp::DropIpfsBlock {
            node: n0 as u64,
            cid: added.root.clone(),
        });
        // Node 1 pinned it, so the swarm still serves the content.
        assert!(socket
            .backstage(&BackstageOp::SwarmHas { cid: added.root })
            .into_flag());
    }

    #[test]
    fn protocol_errors_keep_the_connection_alive() {
        let mut conn = Connection::new();
        // Request before provisioning → typed error, connection lives.
        let (reply, done) = conn.handle(Frame::Execute(RpcRequest::new(0, RpcMethod::BlockNumber)));
        assert_eq!(reply, Frame::Error(ProtocolError::Unprovisioned));
        assert!(!done);
        // Provision, then provision again → typed error again.
        let (reply, _) = conn.handle(Frame::Provision {
            chain: ChainConfig::default(),
            genesis: vec![],
        });
        assert_eq!(reply, Frame::Provisioned);
        let (reply, _) = conn.handle(Frame::Provision {
            chain: ChainConfig::default(),
            genesis: vec![],
        });
        assert_eq!(reply, Frame::Error(ProtocolError::AlreadyProvisioned));
        // Out-of-range IPFS node → typed error, not a panic.
        let (reply, _) = conn.handle(Frame::IpfsAdd {
            node: 3,
            data: vec![1],
        });
        assert!(matches!(reply, Frame::Error(ProtocolError::Unsupported(_))));
        // A session nobody provisioned → typed error naming the session.
        let (reply, _) = conn.handle(Frame::Request {
            id: 1,
            session: 9,
            frame: Box::new(Frame::Execute(RpcRequest::new(0, RpcMethod::BlockNumber))),
        });
        assert_eq!(
            reply,
            Frame::Reply {
                id: 1,
                frame: Box::new(Frame::Error(ProtocolError::NoSuchSession(9))),
            }
        );
        // Attaching to a missing session, likewise.
        let (reply, _) = conn.handle(Frame::Attach { session: 9 });
        assert_eq!(reply, Frame::Error(ProtocolError::NoSuchSession(9)));
        // Shutdown is graceful.
        let (reply, done) = conn.handle(Frame::Shutdown);
        assert_eq!(reply, Frame::Goodbye);
        assert!(done);
    }

    #[test]
    fn session_mux_serves_two_independent_chains_over_one_pipe() {
        let mux = SessionMux::new(Box::new(PipeTransport::new()));
        let mut s1 = mux.session(1);
        let mut s2 = mux.session(2);
        let genesis = |seed: &str| {
            let wallet = Wallet::from_seed(seed, 1);
            vec![(wallet.addresses()[0], wei_per_eth())]
        };
        // Interleave: both requests on the wire before either reply is
        // read, and the replies read in the *opposite* order — the mux
        // parks session 1's reply while session 2 asks first.
        s1.send(&Frame::Provision {
            chain: ChainConfig::default(),
            genesis: genesis("mux-1"),
        })
        .unwrap();
        s2.send(&Frame::Provision {
            chain: ChainConfig::default(),
            genesis: genesis("mux-2"),
        })
        .unwrap();
        assert_eq!(s2.recv().unwrap(), Frame::Provisioned);
        assert_eq!(s1.recv().unwrap(), Frame::Provisioned);
        // Mine only on session 1; heights must not bleed across sessions.
        s1.send(&Frame::Backstage(BackstageOp::MineSlot { slot_secs: 12 }))
            .unwrap();
        s1.recv().unwrap();
        s1.send(&Frame::Backstage(BackstageOp::Height)).unwrap();
        s2.send(&Frame::Backstage(BackstageOp::Height)).unwrap();
        let h2 = match s2.recv().unwrap() {
            Frame::BackstageReply(reply) => reply.into_u64(),
            other => panic!("unexpected reply: {other:?}"),
        };
        let h1 = match s1.recv().unwrap() {
            Frame::BackstageReply(reply) => reply.into_u64(),
            other => panic!("unexpected reply: {other:?}"),
        };
        assert_eq!((h1, h2), (1, 0));
        assert_eq!(s1.peer(), "pipe://in-memory#session1");
    }

    #[test]
    fn real_tcp_socket_serves_a_provisioned_chain() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_listener(listener, Some(1)));

        let endpoint = ofl_rpc::RemoteEndpoint::Tcp(addr.to_string());
        let wallet = Wallet::from_seed("rpcd-tcp", 1);
        let a = wallet.addresses()[0];
        let mut socket = SocketProvider::new(endpoint.connect().expect("connect"));
        socket
            .provision(ChainConfig::default(), vec![(a, wei_per_eth())])
            .expect("provisions over tcp");
        assert_eq!(socket.get_balance(&a).value.unwrap(), wei_per_eth());
        socket
            .backstage(&BackstageOp::MineSlot { slot_secs: 12 })
            .into_block();
        assert_eq!(socket.block_number().value.unwrap(), 1);
        socket.shutdown();
        server.join().expect("server thread exits cleanly");
    }

    #[test]
    fn malformed_payloads_get_error_frames_over_a_real_stream() {
        use std::io::Write as _;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_listener(listener, Some(1)));

        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        // A valid header framing a garbage payload.
        let mut wire = Vec::new();
        wire.extend_from_slice(&ofl_rpc::frame::FRAME_MAGIC.to_le_bytes());
        wire.extend_from_slice(&ofl_rpc::PROTOCOL_VERSION.to_le_bytes());
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&[0xEE, 0xFF]);
        stream.write_all(&wire).unwrap();
        let reply = Frame::read_from(&mut stream).expect("server answered in-band");
        assert!(matches!(reply, Frame::Error(ProtocolError::Malformed(_))));
        // The connection survived: a well-formed shutdown still works.
        Frame::Shutdown.write_to(&mut stream).unwrap();
        assert_eq!(Frame::read_from(&mut stream).unwrap(), Frame::Goodbye);
        server.join().expect("server thread exits");
    }

    /// A canned client: `Read` yields the scripted request bytes then EOF,
    /// `Write` discards the daemon's replies.
    struct ScriptedStream {
        input: std::io::Cursor<Vec<u8>>,
    }

    impl ScriptedStream {
        fn sending(frames: &[Frame]) -> ScriptedStream {
            let mut wire = Vec::new();
            for frame in frames {
                wire.extend_from_slice(&frame.encode());
            }
            ScriptedStream {
                input: std::io::Cursor::new(wire),
            }
        }
    }

    impl Read for ScriptedStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for ScriptedStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn persistent_accept_failures_back_off_and_exit_instead_of_spinning() {
        let incoming =
            std::iter::repeat_with(|| Err::<ScriptedStream, _>(std::io::Error::other("emfile")));
        let stats = serve_incoming(
            incoming,
            DaemonOptions {
                accept_retry: Duration::ZERO,
                max_accept_failures: 5,
                ..DaemonOptions::default()
            },
        );
        // Without the failure cap this loop would never return.
        assert_eq!(stats.accept_errors, 5);
        assert_eq!(stats.connections, 0);
    }

    #[test]
    fn accept_errors_reset_on_success_and_do_not_end_the_loop_early() {
        let mut step = 0u32;
        let incoming = std::iter::from_fn(move || {
            step += 1;
            Some(match step % 2 {
                // Alternate error/success: consecutive-failure count must
                // reset each time, so 8 errors never trip a cap of 3.
                1 => Err(std::io::Error::other("transient")),
                _ => Ok(ScriptedStream::sending(&[Frame::Shutdown])),
            })
        })
        .take(16);
        let stats = serve_incoming(
            incoming,
            DaemonOptions {
                accept_retry: Duration::ZERO,
                max_accept_failures: 3,
                ..DaemonOptions::default()
            },
        );
        assert_eq!(stats.accept_errors, 8);
        assert_eq!(stats.connections, 8);
    }

    #[test]
    fn finished_workers_are_reaped_not_accumulated() {
        // Each scripted client shuts down immediately; with a pause
        // between accepts every worker is long dead by the next one, so a
        // reaping loop holds ~1 handle where the old loop would hold 8.
        let incoming = std::iter::repeat_with(|| {
            std::thread::sleep(Duration::from_millis(50));
            Ok(ScriptedStream::sending(&[Frame::Shutdown]))
        })
        .take(8);
        let stats = serve_incoming(incoming, DaemonOptions::default());
        assert_eq!(stats.connections, 8);
        assert!(
            stats.peak_workers <= 2,
            "workers not reaped: peak {}",
            stats.peak_workers
        );
    }

    #[test]
    fn a_stalled_client_cannot_wedge_the_daemon() {
        use std::io::Write as _;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let stats = serve_listener_with(
                listener,
                DaemonOptions {
                    max_connections: Some(1),
                    idle_timeout: Some(Duration::from_millis(100)),
                    ..DaemonOptions::default()
                },
            );
            let _ = done_tx.send(stats);
        });
        // Write half a header, then stall without hanging up.
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .write_all(&ofl_rpc::frame::FRAME_MAGIC.to_le_bytes())
            .unwrap();
        // The read deadline frees the worker; without it the daemon would
        // block in read_from forever and this recv would time out.
        let stats = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("daemon freed the stalled worker");
        assert_eq!(stats.connections, 1);
        drop(stream);
    }

    #[test]
    fn pushes_arrive_before_the_reply_that_triggered_them_over_the_pipe() {
        let (mut socket, wallet) = provisioned_socket(2);
        let [a, b] = [wallet.addresses()[0], wallet.addresses()[1]];
        assert_eq!(socket.subscribe(SubscriptionKind::PendingTxs), 1);
        assert_eq!(socket.subscribe(SubscriptionKind::NewHeads), 2);
        // Submit through the wire: the daemon queues the PendingTx push
        // before the TxHash reply, so once send_raw_transaction returns
        // the notification is already client-side.
        let config = socket.backstage(&BackstageOp::Config).into_config();
        let raw = {
            use ofl_eth::tx::{sign_tx, TxRequest};
            let key = wallet.account(&a).unwrap().private_key;
            sign_tx(
                TxRequest {
                    chain_id: config.chain_id,
                    nonce: 0,
                    max_priority_fee_per_gas: U256::from(1_500_000_000u64),
                    max_fee_per_gas: U256::from(40_000_000_000u64),
                    gas_limit: 21_000,
                    to: Some(b),
                    value: U256::from(5u64),
                    data: Vec::new(),
                },
                &key,
            )
            .unwrap()
            .encode()
        };
        let hash = socket.send_raw_transaction(&raw).value.unwrap();
        let notes = socket.drain_notifications();
        assert_eq!(notes.len(), 1);
        assert_eq!((notes[0].sub_id, notes[0].seq), (1, 0));
        assert!(matches!(&notes[0].event, SubEvent::PendingTx(p) if p.hash == hash));
        // Mining backstage pushes the new head the same way.
        socket
            .backstage(&BackstageOp::MineSlot { slot_secs: 12 })
            .into_block();
        let notes = socket.drain_notifications();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].sub_id, 2);
        assert!(matches!(&notes[0].event, SubEvent::NewHead(h) if h.tx_hashes == vec![hash]));
        // Unsubscribing echoes the id; an unknown id echoes 0 → false.
        assert!(socket.unsubscribe(2));
        assert!(!socket.unsubscribe(99));
        socket
            .backstage(&BackstageOp::MineSlot { slot_secs: 12 })
            .into_block();
        assert!(socket.drain_notifications().is_empty());
    }

    #[test]
    fn a_subscriber_survives_the_read_deadline_while_a_stalled_client_is_reaped() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let stats = serve_listener_with(
                listener,
                DaemonOptions {
                    max_connections: Some(2),
                    idle_timeout: Some(Duration::from_millis(50)),
                    ..DaemonOptions::default()
                },
            );
            let _ = done_tx.send(stats);
        });
        let endpoint = ofl_rpc::RemoteEndpoint::Tcp(addr.to_string());
        let wallet = Wallet::from_seed("rpcd-keepalive", 1);
        let a = wallet.addresses()[0];
        let mut socket = SocketProvider::new(endpoint.connect().expect("connect"));
        socket
            .provision(ChainConfig::default(), vec![(a, wei_per_eth())])
            .expect("provisions");
        assert_eq!(socket.subscribe(SubscriptionKind::NewHeads), 1);
        // A second client that never sends a frame: the read deadline
        // must still reap it — the keepalive exemption is only for
        // connections with live subscriptions.
        let stalled = std::net::TcpStream::connect(addr).expect("connect");
        // Sit quiet across several deadline periods. Pre-fix, the daemon
        // reaped this connection too; now it answers each deadline with a
        // Ping (which the client transport swallows) and keeps serving.
        std::thread::sleep(Duration::from_millis(300));
        socket
            .backstage(&BackstageOp::MineSlot { slot_secs: 12 })
            .into_block();
        let notes = socket.drain_notifications();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].sub_id, 1);
        assert!(matches!(notes[0].event, SubEvent::NewHead(_)));
        socket.shutdown();
        drop(stalled);
        let stats = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("daemon exits once both connections end");
        assert_eq!(stats.connections, 2);
    }

    #[test]
    fn stats_probe_reports_daemon_counters_over_live_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let gauges = DaemonGauges::default();
        let store = new_session_store();
        let server = {
            let options = DaemonOptions {
                max_connections: Some(2),
                sessions: Some(store.clone()),
                gauges: gauges.clone(),
                ..DaemonOptions::default()
            };
            std::thread::spawn(move || serve_listener_with(listener, options))
        };
        let endpoint = ofl_rpc::RemoteEndpoint::Tcp(addr.to_string());
        let wallet = Wallet::from_seed("rpcd-stats", 1);
        let a = wallet.addresses()[0];
        // Connection 1 does real work against a persistent session, so the
        // probe has something to count.
        {
            let mut socket = SocketProvider::new(endpoint.connect().expect("connect"));
            socket
                .provision(ChainConfig::default(), vec![(a, wei_per_eth())])
                .expect("provisions");
            assert_eq!(socket.get_balance(&a).value.unwrap(), wei_per_eth());
            socket.shutdown();
        }
        // Connection 2 is a raw wire-level admin probe.
        use std::net::TcpStream;
        let mut stream = TcpStream::connect(addr).expect("connect");
        Frame::Stats.write_to(&mut stream).unwrap();
        match Frame::read_from(&mut stream).expect("stats reply") {
            Frame::StatsReply {
                sessions,
                workers_reaped,
                accept_backoffs,
                frames_served,
                metrics,
            } => {
                assert_eq!(sessions, 1, "the persistent session outlives connection 1");
                assert_eq!(accept_backoffs, 0);
                assert!(
                    frames_served >= 3,
                    "provision + balance + shutdown all counted, got {frames_served}"
                );
                // The registry snapshot rides along; its exact contents
                // depend on what else this process traced.
                let _ = (workers_reaped, metrics);
            }
            other => panic!("expected StatsReply, got {other:?}"),
        }
        Frame::Shutdown.write_to(&mut stream).unwrap();
        assert_eq!(Frame::read_from(&mut stream).unwrap(), Frame::Goodbye);
        let stats = server.join().expect("server exits");
        assert_eq!(stats.connections, 2);
        // The caller's clone of the gauges watched the same counters the
        // wire probe read: 3 frames on connection 1, Stats + Shutdown here.
        assert!(gauges.frames_served() >= 5);
    }

    #[test]
    fn persistent_sessions_survive_reconnects() {
        let store = new_session_store();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server_store = store.clone();
        let server = std::thread::spawn(move || {
            serve_listener_with(
                listener,
                DaemonOptions {
                    max_connections: Some(2),
                    sessions: Some(server_store),
                    ..DaemonOptions::default()
                },
            )
        });
        let endpoint = ofl_rpc::RemoteEndpoint::Tcp(addr.to_string());
        let wallet = Wallet::from_seed("rpcd-persist", 1);
        let a = wallet.addresses()[0];

        // Connection 1: provision session 7 through the mux and mine one
        // block, then hang up without shutting the daemon down.
        {
            let mux = SessionMux::new(endpoint.connect().expect("connect"));
            let mut socket = SocketProvider::new(Box::new(mux.session(7)));
            socket
                .provision(ChainConfig::default(), vec![(a, wei_per_eth())])
                .expect("provisions session 7");
            socket
                .backstage(&BackstageOp::MineSlot { slot_secs: 12 })
                .into_block();
        }

        // Connection 2: the session is still there, mined state intact.
        let mux = SessionMux::new(endpoint.connect().expect("connect"));
        let mut socket = SocketProvider::new(Box::new(mux.session(7)));
        assert_eq!(socket.attach(7).expect("session 7 lives"), 1);
        assert_eq!(socket.block_number().value.unwrap(), 1);
        assert!(matches!(
            socket.attach(8),
            Err(FrameError::Protocol(ProtocolError::NoSuchSession(8)))
        ));
        socket.shutdown();
        let stats = server.join().expect("server thread exits");
        assert_eq!(stats.connections, 2);
        assert_eq!(store.lock().unwrap().len(), 1);
    }
}
