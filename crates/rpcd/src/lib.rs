//! # ofl-rpcd
//!
//! The out-of-process node daemon: a dispatch loop that serves any
//! [`NodeProvider`] stack over the `ofl-rpc` frame protocol, one frame in →
//! one frame out, until the client says [`Frame::Shutdown`] or hangs up.
//!
//! Three transports share the same dispatch code:
//!
//! - **TCP** ([`serve_listener`]) and **Unix sockets**
//!   ([`serve_unix_listener`]) — real sockets, one thread per connection:
//!   what the `rpcd` binary runs.
//! - **In-memory pipe** ([`PipeTransport`]) — client and server in one
//!   process with zero threads: each `send` encodes the frame to wire
//!   bytes, decodes it server-side, dispatches, and queues the encoded
//!   reply. Deterministic, and it still exercises the full codec in both
//!   directions.
//!
//! ## Provisioning
//!
//! A connection starts **unprovisioned**: the first frame is normally
//! [`Frame::Provision`], which builds this connection's backend — a fresh
//! simulated node (chain + swarm) with the requested genesis. Each
//! connection owns its backend, so one daemon can serve many independent
//! worlds at once. A daemon can also be started around a pre-built
//! provider stack ([`Connection::with_backend`]) when the operator wants
//! decorators to run server-side.
//!
//! ## Error handling
//!
//! Malformed payloads and version mismatches are answered **in-band** with
//! a typed [`Frame::Error`] — the connection survives. Only unframeable
//! input (bad magic, an over-cap length prefix, raw I/O failure) ends the
//! connection, because the byte stream itself is no longer trustworthy.

use ofl_eth::chain::Chain;
use ofl_ipfs::swarm::Swarm;
use ofl_rpc::frame::{Frame, FrameError, ProtocolError};
use ofl_rpc::transport::FrameTransport;
use ofl_rpc::{EthApi, IpfsApi, NodeProvider, SimProvider};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;

/// One client's server-side state: the backend it provisioned (or was
/// handed) and the dispatch logic.
#[derive(Default)]
pub struct Connection {
    provider: Option<Box<dyn NodeProvider>>,
    /// Frames dispatched so far (diagnostics).
    pub frames_served: u64,
}

impl Connection {
    /// A connection that waits for [`Frame::Provision`].
    pub fn new() -> Connection {
        Connection::default()
    }

    /// A connection serving a pre-built provider stack (sim + any
    /// decorators the operator mounted). [`Frame::Provision`] is refused.
    pub fn with_backend(provider: Box<dyn NodeProvider>) -> Connection {
        Connection {
            provider: Some(provider),
            frames_served: 0,
        }
    }

    /// Dispatches one frame, returning the reply and whether the client
    /// asked to close the connection.
    pub fn handle(&mut self, frame: Frame) -> (Frame, bool) {
        self.frames_served += 1;
        let reply = match frame {
            Frame::Provision { chain, genesis } => {
                if self.provider.is_some() {
                    Frame::Error(ProtocolError::AlreadyProvisioned)
                } else {
                    // The provisioned backend is a *bare* simulated node:
                    // costs come back zero and the client's own decorator
                    // stack prices, faults, and meters — exactly like an
                    // in-process SimProvider.
                    self.provider = Some(Box::new(SimProvider::new(
                        Chain::new(chain, &genesis),
                        Swarm::new(),
                    )));
                    Frame::Provisioned
                }
            }
            Frame::Execute(request) => match self.provider_mut() {
                Ok(provider) => Frame::Response(provider.execute(&request)),
                Err(error) => Frame::Error(error),
            },
            Frame::Batch(requests) => match self.provider_mut() {
                Ok(provider) => Frame::BatchResponse(provider.batch(&requests)),
                Err(error) => Frame::Error(error),
            },
            Frame::IpfsAdd { node, data } => match self.ipfs_node(node) {
                Ok(provider) => {
                    let billed = provider.add(node as usize, &data);
                    Frame::IpfsAdded {
                        cost: billed.cost,
                        result: billed.value,
                    }
                }
                Err(error) => Frame::Error(error),
            },
            Frame::IpfsCat { node, cid } => match self.ipfs_node(node) {
                Ok(provider) => {
                    let billed = provider.cat(node as usize, &cid);
                    Frame::IpfsCatted {
                        cost: billed.cost,
                        result: billed.value,
                    }
                }
                Err(error) => Frame::Error(error),
            },
            Frame::IpfsPin { node, cid } => match self.ipfs_node(node) {
                Ok(provider) => {
                    let billed = provider.pin(node as usize, &cid);
                    Frame::IpfsPinned {
                        cost: billed.cost,
                        result: billed.value,
                    }
                }
                Err(error) => Frame::Error(error),
            },
            Frame::Backstage(op) => match self.provider_mut() {
                Ok(provider) => Frame::BackstageReply(provider.backstage(&op)),
                Err(error) => Frame::Error(error),
            },
            Frame::Shutdown => return (Frame::Goodbye, true),
            // A server never receives server→client frames.
            other => Frame::Error(ProtocolError::Unsupported(format!(
                "client sent a server-side frame: {other:?}"
            ))),
        };
        (reply, false)
    }

    fn provider_mut(&mut self) -> Result<&mut Box<dyn NodeProvider>, ProtocolError> {
        self.provider.as_mut().ok_or(ProtocolError::Unprovisioned)
    }

    /// Like [`Connection::provider_mut`], additionally bounds-checking the
    /// IPFS node index so a buggy client cannot crash the daemon thread.
    fn ipfs_node(&mut self, node: u64) -> Result<&mut Box<dyn NodeProvider>, ProtocolError> {
        let provider = self.provider_mut()?;
        let nodes = provider.swarm().len() as u64;
        if node >= nodes {
            return Err(ProtocolError::Unsupported(format!(
                "ipfs node {node} out of range (swarm has {nodes})"
            )));
        }
        Ok(provider)
    }
}

/// Serves one connection's dispatch loop over a blocking byte stream until
/// the client shuts down, hangs up, or the stream desyncs. Returns how many
/// frames were served.
pub fn serve_stream<S: Read + Write>(
    mut stream: S,
    mut conn: Connection,
) -> Result<u64, FrameError> {
    loop {
        let frame = match Frame::read_from(&mut stream) {
            Ok(frame) => frame,
            // A clean hangup between frames is a normal end of session.
            Err(FrameError::Io(_)) if conn.frames_served > 0 => return Ok(conn.frames_served),
            // Typed payload failures are answered in-band; the stream is
            // still frame-synced.
            Err(FrameError::Codec(e)) => {
                Frame::Error(ProtocolError::Malformed(e.to_string())).write_to(&mut stream)?;
                continue;
            }
            Err(FrameError::Version { got }) => {
                Frame::Error(ProtocolError::Unsupported(format!(
                    "protocol v{got} (this daemon speaks v{})",
                    ofl_rpc::PROTOCOL_VERSION
                )))
                .write_to(&mut stream)?;
                continue;
            }
            // Bad magic / oversized / hard I/O: the stream is lost.
            Err(e) => return Err(e),
        };
        let (reply, done) = conn.handle(frame);
        reply.write_to(&mut stream)?;
        if done {
            return Ok(conn.frames_served);
        }
    }
}

/// The accept loop both listener flavors share: up to `max_connections`
/// accepted streams (forever when `None`), each served on its own thread
/// with a fresh provisionable [`Connection`]. Returns once the accept
/// budget is spent **and** every served connection has ended.
fn serve_incoming<S>(
    incoming: impl Iterator<Item = std::io::Result<S>>,
    max_connections: Option<usize>,
) where
    S: Read + Write + Send + 'static,
{
    let mut workers = Vec::new();
    let mut accepted = 0usize;
    for stream in incoming {
        let Ok(stream) = stream else { continue };
        workers.push(std::thread::spawn(move || {
            let _ = serve_stream(stream, Connection::new());
        }));
        accepted += 1;
        if max_connections.is_some_and(|max| accepted >= max) {
            break;
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// Accepts up to `max_connections` TCP connections (forever when `None`),
/// serving each on its own thread with a fresh provisionable
/// [`Connection`].
pub fn serve_listener(listener: TcpListener, max_connections: Option<usize>) {
    serve_incoming(
        listener.incoming().map(|stream| {
            stream.inspect(|s| {
                let _ = s.set_nodelay(true);
            })
        }),
        max_connections,
    )
}

/// [`serve_listener`] over a Unix domain socket.
#[cfg(unix)]
pub fn serve_unix_listener(listener: UnixListener, max_connections: Option<usize>) {
    serve_incoming(listener.incoming(), max_connections)
}

/// Client and daemon in one process, zero threads, full codec fidelity:
/// every `send` encodes the frame to wire bytes, re-decodes it
/// server-side, dispatches on the embedded [`Connection`], and queues the
/// **encoded** reply for `recv` to decode — so both directions of the wire
/// format are exercised on every call, deterministically.
pub struct PipeTransport {
    conn: Connection,
    replies: VecDeque<Vec<u8>>,
}

impl PipeTransport {
    /// A pipe to a fresh provisionable server connection.
    pub fn new() -> PipeTransport {
        PipeTransport::over(Connection::new())
    }

    /// A pipe to a server connection with a pre-mounted backend.
    pub fn over(conn: Connection) -> PipeTransport {
        PipeTransport {
            conn,
            replies: VecDeque::new(),
        }
    }
}

impl Default for PipeTransport {
    fn default() -> Self {
        PipeTransport::new()
    }
}

impl FrameTransport for PipeTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), FrameError> {
        let (decoded, _) = Frame::decode(&frame.encode())?;
        let (reply, _done) = self.conn.handle(decoded);
        self.replies.push_back(reply.encode());
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, FrameError> {
        let wire = self
            .replies
            .pop_front()
            .ok_or_else(|| FrameError::Io("pipe: recv with no pending reply".into()))?;
        Frame::decode(&wire).map(|(frame, _)| frame)
    }

    fn peer(&self) -> String {
        "pipe://in-memory".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_eth::chain::ChainConfig;
    use ofl_eth::wallet::Wallet;
    use ofl_primitives::u256::U256;
    use ofl_primitives::wei_per_eth;
    use ofl_rpc::{BackstageOp, RpcMethod, RpcRequest, RpcResult, SocketProvider};

    fn provisioned_socket(n_accounts: usize) -> (SocketProvider, Wallet) {
        let wallet = Wallet::from_seed("rpcd-test", n_accounts);
        let genesis: Vec<_> = wallet
            .addresses()
            .iter()
            .map(|a| (*a, wei_per_eth()))
            .collect();
        let mut socket = SocketProvider::new(Box::new(PipeTransport::new()));
        socket
            .provision(ChainConfig::default(), genesis)
            .expect("pipe provisions");
        (socket, wallet)
    }

    #[test]
    fn provision_execute_and_backstage_over_the_pipe() {
        let (mut socket, wallet) = provisioned_socket(2);
        let [a, b] = [wallet.addresses()[0], wallet.addresses()[1]];
        assert_eq!(socket.get_balance(&a).value.unwrap(), wei_per_eth());

        // Submit a transfer through the wire, mine backstage, poll it back.
        let env_chain_id = socket.chain_id().value.unwrap();
        assert_eq!(env_chain_id, ChainConfig::default().chain_id);
        let nonce = socket.get_transaction_count(&a).value.unwrap();
        assert_eq!(nonce, 0);
        let config = socket.backstage(&BackstageOp::Config).into_config();
        let raw = {
            // Sign locally against the fetched environment (no local chain).
            use ofl_eth::tx::{sign_tx, TxRequest};
            let key = wallet.account(&a).unwrap().private_key;
            sign_tx(
                TxRequest {
                    chain_id: config.chain_id,
                    nonce,
                    max_priority_fee_per_gas: U256::from(1_500_000_000u64),
                    max_fee_per_gas: U256::from(40_000_000_000u64),
                    gas_limit: 21_000,
                    to: Some(b),
                    value: U256::from(5u64),
                    data: Vec::new(),
                },
                &key,
            )
            .unwrap()
            .encode()
        };
        let hash = socket.send_raw_transaction(&raw).value.unwrap();
        assert_eq!(
            socket.get_transaction_receipt(hash).value.unwrap(),
            None,
            "unmined"
        );
        let block = socket
            .backstage(&BackstageOp::MineSlot { slot_secs: 12 })
            .into_block();
        assert_eq!(block.tx_hashes, vec![hash]);
        let receipt = socket
            .get_transaction_receipt(hash)
            .value
            .unwrap()
            .expect("mined");
        assert!(receipt.is_success());
        assert_eq!(socket.backstage(&BackstageOp::Height).into_u64(), 1);
    }

    #[test]
    fn batches_travel_as_one_frame_and_scatter_in_order() {
        let (mut socket, wallet) = provisioned_socket(1);
        let a = wallet.addresses()[0];
        let responses = socket.batch(&[
            RpcRequest::new(7, RpcMethod::BlockNumber),
            RpcRequest::new(8, RpcMethod::GetBalance { address: a }),
            RpcRequest::new(9, RpcMethod::ChainId),
        ]);
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].id, 7);
        assert!(matches!(responses[0].result, Ok(RpcResult::BlockNumber(0))));
        assert!(matches!(&responses[1].result, Ok(RpcResult::Balance(b)) if *b == wei_per_eth()));
        assert!(matches!(responses[2].result, Ok(RpcResult::ChainId(_))));
    }

    #[test]
    fn ipfs_round_trips_with_spawned_nodes() {
        let (mut socket, _) = provisioned_socket(1);
        let n0 = socket
            .backstage(&BackstageOp::SpawnIpfsNode { label: "a".into() })
            .into_u64() as usize;
        let n1 = socket
            .backstage(&BackstageOp::SpawnIpfsNode { label: "b".into() })
            .into_u64() as usize;
        let added = socket.add(n0, b"model bytes").value;
        let (bytes, stats) = socket.cat(n1, &added.root).value.unwrap();
        assert_eq!(bytes, b"model bytes");
        assert!(stats.blocks_fetched >= 1);
        assert!(socket.pin(n1, &added.root).value.is_ok());
        assert!(socket
            .backstage(&BackstageOp::SwarmHas {
                cid: added.root.clone()
            })
            .into_flag());
        socket.backstage(&BackstageOp::DropIpfsBlock {
            node: n0 as u64,
            cid: added.root.clone(),
        });
        // Node 1 pinned it, so the swarm still serves the content.
        assert!(socket
            .backstage(&BackstageOp::SwarmHas { cid: added.root })
            .into_flag());
    }

    #[test]
    fn protocol_errors_keep_the_connection_alive() {
        let mut conn = Connection::new();
        // Request before provisioning → typed error, connection lives.
        let (reply, done) = conn.handle(Frame::Execute(RpcRequest::new(0, RpcMethod::BlockNumber)));
        assert_eq!(reply, Frame::Error(ProtocolError::Unprovisioned));
        assert!(!done);
        // Provision, then provision again → typed error again.
        let (reply, _) = conn.handle(Frame::Provision {
            chain: ChainConfig::default(),
            genesis: vec![],
        });
        assert_eq!(reply, Frame::Provisioned);
        let (reply, _) = conn.handle(Frame::Provision {
            chain: ChainConfig::default(),
            genesis: vec![],
        });
        assert_eq!(reply, Frame::Error(ProtocolError::AlreadyProvisioned));
        // Out-of-range IPFS node → typed error, not a panic.
        let (reply, _) = conn.handle(Frame::IpfsAdd {
            node: 3,
            data: vec![1],
        });
        assert!(matches!(reply, Frame::Error(ProtocolError::Unsupported(_))));
        // Shutdown is graceful.
        let (reply, done) = conn.handle(Frame::Shutdown);
        assert_eq!(reply, Frame::Goodbye);
        assert!(done);
    }

    #[test]
    fn real_tcp_socket_serves_a_provisioned_chain() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_listener(listener, Some(1)));

        let endpoint = ofl_rpc::RemoteEndpoint::Tcp(addr.to_string());
        let wallet = Wallet::from_seed("rpcd-tcp", 1);
        let a = wallet.addresses()[0];
        let mut socket = SocketProvider::new(endpoint.connect().expect("connect"));
        socket
            .provision(ChainConfig::default(), vec![(a, wei_per_eth())])
            .expect("provisions over tcp");
        assert_eq!(socket.get_balance(&a).value.unwrap(), wei_per_eth());
        socket
            .backstage(&BackstageOp::MineSlot { slot_secs: 12 })
            .into_block();
        assert_eq!(socket.block_number().value.unwrap(), 1);
        socket.shutdown();
        server.join().expect("server thread exits cleanly");
    }

    #[test]
    fn malformed_payloads_get_error_frames_over_a_real_stream() {
        use std::io::Write as _;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_listener(listener, Some(1)));

        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        // A valid header framing a garbage payload.
        let mut wire = Vec::new();
        wire.extend_from_slice(&ofl_rpc::frame::FRAME_MAGIC.to_le_bytes());
        wire.extend_from_slice(&ofl_rpc::PROTOCOL_VERSION.to_le_bytes());
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&[0xEE, 0xFF]);
        stream.write_all(&wire).unwrap();
        let reply = Frame::read_from(&mut stream).expect("server answered in-band");
        assert!(matches!(reply, Frame::Error(ProtocolError::Malformed(_))));
        // The connection survived: a well-formed shutdown still works.
        Frame::Shutdown.write_to(&mut stream).unwrap();
        assert_eq!(Frame::read_from(&mut stream).unwrap(), Frame::Goodbye);
        server.join().expect("server thread exits");
    }
}
