//! Marketplace configuration: the knobs of the paper's §4 demo scenario.

use ofl_eth::chain::ChainConfig;
use ofl_fl::client::TrainConfig;
use ofl_fl::pfnm::PfnmConfig;
use ofl_netsim::link::NetworkProfile;
use ofl_netsim::timing::ComputeModel;
use ofl_primitives::u256::U256;
use ofl_primitives::wei_per_eth;
use ofl_rpc::{
    EndpointId, FaultProfile, RateLimitProfile, ReorderProfile, SpikeProfile, StaleProfile,
    SubLagProfile,
};

/// How the training data is split across model owners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionScheme {
    /// Independent and identically distributed.
    Iid,
    /// PFNM-style Dirichlet label skew (the paper's setting).
    Dirichlet {
        /// Concentration; smaller = more skew.
        alpha: f64,
    },
    /// McMahan shards.
    Shards {
        /// Shards dealt to each client.
        per_client: usize,
    },
    /// Each client sees exactly `classes` labels.
    LabelSkew {
        /// Classes per client.
        classes: usize,
    },
}

/// How the buyer finalizes a session: which aggregator runs and how the
/// budget is split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FinalizePolicy {
    /// The paper's pipeline: PFNM matched averaging plus leave-one-out
    /// Shapley-style payments. LOO is O(n²) aggregations, so this is for
    /// paper-scale federations (tens of owners).
    #[default]
    PfnmLoo,
    /// Fleet-scale pipeline: FedAvg aggregation with payments proportional
    /// to contributed data. Linear in owners, so thousand-owner fleets
    /// finalize in bounded time; accuracy bookkeeping is unchanged.
    FedAvgProportional,
}

/// Full configuration of one marketplace session.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Number of model owners (the paper demos 10).
    pub n_owners: usize,
    /// Token budget the buyer commits for payments (the paper: 0.01 ETH).
    pub budget_wei: U256,
    /// Training-set size drawn for the whole federation.
    pub n_train: usize,
    /// Buyer-held test-set size.
    pub n_test: usize,
    /// Data split across owners.
    pub partition: PartitionScheme,
    /// Local training settings (paper: MLP 784-100-10, batch 64, lr 0.001,
    /// 10 epochs).
    pub train: TrainConfig,
    /// PFNM hyperparameters.
    pub pfnm: PfnmConfig,
    /// Master seed for data, partitioning, and matching.
    pub seed: u64,
    /// Chain parameters (Sepolia-like defaults).
    pub chain: ChainConfig,
    /// Network profile (paper: unified campus network).
    pub profile: NetworkProfile,
    /// Owners' training hardware.
    pub owner_compute: ComputeModel,
    /// Buyer's backend workstation (paper: 2×RTX A5000 server).
    pub buyer_compute: ComputeModel,
    /// Seeded RPC fault injection for the market's endpoint (`None` =
    /// reliable endpoint) — the infrastructure-fault scenario knob.
    pub rpc_faults: Option<FaultProfile>,
    /// Seeded per-slot request quota for the market's endpoint (`None` =
    /// no 429s) — the rate-limit scenario knob.
    pub rpc_rate_limit: Option<RateLimitProfile>,
    /// Seeded lagging-replica reads for the market's endpoint (`None` =
    /// always-fresh reads) — the stale-reads scenario knob.
    pub rpc_stale: Option<StaleProfile>,
    /// Seeded slot-long latency spikes for the market's endpoint (`None` =
    /// steady latency) — the congested-provider scenario knob.
    pub rpc_spike: Option<SpikeProfile>,
    /// Seeded shuffling of the endpoint's batch replies (`None` = in-order
    /// replies) — the out-of-order-server scenario knob.
    pub rpc_reorder: Option<ReorderProfile>,
    /// Seeded per-subscription push-delivery lag for the market's endpoint
    /// (`None` = pushes land at the slot that produced them) — the
    /// laggy-subscription scenario knob.
    pub rpc_sub_lag: Option<SubLagProfile>,
    /// Derive and fund one extra non-participant account (the
    /// mempool-watching adversary of the front-running scenario). Off by
    /// default so clean runs keep their exact genesis allocation.
    pub fund_adversary: bool,
    /// Which shard of the world this market's sessions are pinned to. A
    /// solo serial [`Marketplace`](crate::market::Marketplace) always runs
    /// on shard 0; `MultiMarket` worlds size their provider pool to cover
    /// the largest placement and route each market's traffic — contract
    /// calls, transactions, wallet signing reads, IPFS transfers — through
    /// its own endpoint.
    pub placement: EndpointId,
    /// Aggregation + payment pipeline run at finalize time.
    pub finalize: FinalizePolicy,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            n_owners: 10,
            budget_wei: wei_per_eth().div_rem(&U256::from(100u64)).0, // 0.01 ETH
            n_train: 3_000,
            n_test: 1_000,
            // α = 0.3 reproduces the strong skew of the paper's PFNM
            // partitioning: the weakest local models fall to ~40 % while the
            // aggregate stays high (Fig 4's 58.87-point margin).
            partition: PartitionScheme::Dirichlet { alpha: 0.3 },
            train: TrainConfig::default(),
            pfnm: PfnmConfig::default(),
            seed: 42,
            chain: ChainConfig::default(),
            profile: NetworkProfile::campus(),
            owner_compute: ComputeModel::rtx_a5000(),
            buyer_compute: ComputeModel::rtx_a5000(),
            rpc_faults: None,
            rpc_rate_limit: None,
            rpc_stale: None,
            rpc_spike: None,
            rpc_reorder: None,
            rpc_sub_lag: None,
            fund_adversary: false,
            placement: EndpointId(0),
            finalize: FinalizePolicy::default(),
        }
    }
}

impl MarketConfig {
    /// A scaled-down configuration for fast tests: 4 owners, small silos,
    /// a 32-neuron hidden layer.
    pub fn small_test() -> MarketConfig {
        MarketConfig {
            n_owners: 4,
            n_train: 800,
            n_test: 300,
            train: TrainConfig {
                dims: vec![784, 32, 10],
                epochs: 3,
                ..TrainConfig::default()
            },
            ..MarketConfig::default()
        }
    }

    /// One load-harness market cell: `n_owners` owners with tiny silos, a
    /// 2-neuron hidden layer, one epoch, and the linear-time
    /// [`FinalizePolicy::FedAvgProportional`] pipeline — sized so a
    /// `MultiMarket` fleet of thousands of owners pushes its wire and
    /// engine load, not the trainer.
    pub fn fleet(n_owners: usize) -> MarketConfig {
        MarketConfig {
            n_owners,
            n_train: (n_owners * 4).max(64),
            n_test: 32,
            partition: PartitionScheme::Iid,
            train: TrainConfig {
                dims: vec![784, 2, 10],
                epochs: 1,
                ..TrainConfig::default()
            },
            finalize: FinalizePolicy::FedAvgProportional,
            ..MarketConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_primitives::format_eth;

    #[test]
    fn default_budget_is_paper_budget() {
        let cfg = MarketConfig::default();
        assert_eq!(format_eth(&cfg.budget_wei, 2), "0.01");
        assert_eq!(cfg.n_owners, 10);
        assert_eq!(cfg.train.dims, vec![784, 100, 10]);
        assert_eq!(cfg.train.batch_size, 64);
        assert_eq!(cfg.train.epochs, 10);
    }

    #[test]
    fn small_test_is_smaller() {
        let cfg = MarketConfig::small_test();
        assert!(cfg.n_owners < 10);
        assert!(cfg.n_train < 4000);
    }
}
