//! Scenario harness: parameterized, failure-injecting marketplace sessions.
//!
//! The integration suites and the paper-figure binaries all need the same
//! thing — "run the 7-step workflow under regime X and compare outcomes" —
//! and before this module each caller hand-rolled the session loop. A
//! [`Scenario`] bundles a [`MarketConfig`] (owner count, partition scheme,
//! seed) with a [`FailurePlan`] (dropped IPFS blocks, reverted transactions,
//! freeloading owners, silent dropouts) and an [`ExecutionMode`] (serial
//! workflow, event-driven concurrent owners, or several markets sharing one
//! chain), and executes the workflow step by step, injecting the failures
//! at the layer where they would really occur:
//!
//! - **Freeloaders** train on a 3-example silo, so their "model" is noise —
//!   the incentive layer should price them near zero.
//! - **Dropouts** train and upload to IPFS but never send their CID, so the
//!   chain (and therefore the buyer) never learns about them.
//! - **Reverted transactions** replace the owner's `uploadCid` call with an
//!   unknown-selector call the contract rejects; the owner pays gas, the
//!   CID never lands on-chain.
//! - **Dropped IPFS blocks** garbage-collect the owner's model *after* its
//!   CID was registered on-chain — the buyer sees the CID but no peer can
//!   serve the content, the classic availability failure of
//!   content-addressed storage.
//!
//! Every session produces a [`ScenarioOutcome`] carrying the quantities the
//! paper's figures compare (accuracy, payments, gas, timing) plus
//! system-level invariants (ETH conservation, budget exhaustion), and
//! [`ScenarioSuite`] runs whole regime sweeps. Outcomes are `PartialEq` and
//! hashable via [`ScenarioOutcome::fingerprint`], which is what the
//! determinism regression tests compare — in every execution mode.

use crate::config::{MarketConfig, PartitionScheme};
use crate::engine::{Arrivals, EngineConfig, MultiMarket};
use crate::market::{MarketError, Marketplace};
use ofl_ipfs::cid::Cid;
use ofl_netsim::clock::SimDuration;
use ofl_primitives::u256::U256;
use ofl_primitives::{format_eth, H160};
use ofl_rpc::{
    EndpointId, FaultProfile, RateLimitProfile, ReorderProfile, SpikeProfile, StaleProfile,
    SubLagProfile,
};

/// Which owners misbehave (indices into the owner list) and how.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailurePlan {
    /// Owners whose model blocks vanish from the swarm after their CID is
    /// registered on-chain.
    pub drop_ipfs_blocks: Vec<usize>,
    /// Owners whose `uploadCid` transaction reverts on-chain.
    pub revert_cid_tx: Vec<usize>,
    /// Owners who train on an (effectively empty) 3-example silo.
    pub freeload: Vec<usize>,
    /// Owners who never send their CID to the contract.
    pub dropout: Vec<usize>,
    /// A funded non-participant watches the mempool over a `pendingTxs`
    /// subscription and front-runs every `uploadCid` broadcast with a junk
    /// registration at tip + 1 wei (event-driven modes only; requires
    /// [`MarketConfig::fund_adversary`], which
    /// [`Scenario::with_mempool_freeloader`] sets alongside this flag).
    pub mempool_front_run: bool,
}

impl FailurePlan {
    /// A plan with no injected failures.
    pub fn clean() -> FailurePlan {
        FailurePlan::default()
    }

    /// True when nothing is injected.
    pub fn is_clean(&self) -> bool {
        self == &FailurePlan::default()
    }

    /// Owners that never get a usable CID on-chain (reverted or dropout).
    fn is_offchain(&self, owner: usize) -> bool {
        self.revert_cid_tx.contains(&owner) || self.dropout.contains(&owner)
    }
}

/// How a scenario's session(s) are driven.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionMode {
    /// The original workflow: one participant at a time on one clock.
    Serial,
    /// The discrete-event engine: owners act concurrently, transactions
    /// share blocks.
    Concurrent {
        /// Owner arrival pattern.
        arrivals: Arrivals,
    },
    /// `markets` replicated sessions sharing one world, all driven by the
    /// event engine. With `shards == 1` every market contends for one
    /// chain's blocks; with more, markets are spread round-robin across
    /// the pool's endpoints and contend only with same-shard siblings.
    MultiMarket {
        /// How many concurrent marketplace sessions.
        markets: usize,
        /// Owner arrival pattern (per market).
        arrivals: Arrivals,
        /// How many chains the world's provider pool fronts.
        shards: usize,
    },
}

/// One parameterized marketplace session.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (used in reports and assertions).
    pub name: String,
    /// Full marketplace configuration (owners, partition, seed, chain…).
    pub config: MarketConfig,
    /// Injected failures.
    pub failures: FailurePlan,
    /// Serial workflow or event-driven concurrency.
    pub mode: ExecutionMode,
    /// Open the engine's event watchers in event-driven modes (ignored by
    /// the serial driver, which never subscribes).
    pub watch_events: bool,
}

impl Scenario {
    /// A scenario from an explicit config, with no failures, run serially.
    pub fn new(name: impl Into<String>, config: MarketConfig) -> Scenario {
        Scenario {
            name: name.into(),
            config,
            failures: FailurePlan::clean(),
            mode: ExecutionMode::Serial,
            watch_events: false,
        }
    }

    /// A fast test-sized scenario (4 owners, small silos) under the given
    /// partition scheme and seed.
    pub fn small(name: impl Into<String>, partition: PartitionScheme, seed: u64) -> Scenario {
        Scenario::new(
            name,
            MarketConfig {
                partition,
                seed,
                ..MarketConfig::small_test()
            },
        )
    }

    /// Attaches a failure plan.
    pub fn with_failures(mut self, failures: FailurePlan) -> Scenario {
        self.failures = failures;
        self
    }

    /// Runs the session against a seeded flaky RPC provider — the
    /// infrastructure-fault regime (timeouts and retries instead of
    /// misbehaving participants).
    pub fn with_rpc_faults(mut self, faults: FaultProfile) -> Scenario {
        self.config.rpc_faults = Some(faults);
        self
    }

    /// Runs the session against a seeded request-quota endpoint — the
    /// rate-limit regime (429s and back-off retries instead of misbehaving
    /// participants).
    pub fn with_rate_limit(mut self, quota: RateLimitProfile) -> Scenario {
        self.config.rpc_rate_limit = Some(quota);
        self
    }

    /// Runs the session against a seeded lagging-replica endpoint — the
    /// stale-reads regime (head and receipt reads served late; clients
    /// re-poll through the inconsistency instead of failing).
    pub fn with_stale_reads(mut self, stale: StaleProfile) -> Scenario {
        self.config.rpc_stale = Some(stale);
        self
    }

    /// Runs the session against a seeded spiking endpoint — the
    /// latency-spike regime (whole slots where every exchange stalls;
    /// sessions finish late but intact).
    pub fn with_latency_spikes(mut self, spike: SpikeProfile) -> Scenario {
        self.config.rpc_spike = Some(spike);
        self
    }

    /// Runs the session against an endpoint that shuffles its batch reply
    /// arrays — the reordered-batch regime (clients must pair answers by
    /// correlation tag, never by position).
    pub fn with_reordered_batches(mut self, reorder: ReorderProfile) -> Scenario {
        self.config.rpc_reorder = Some(reorder);
        self
    }

    /// Runs the session against an endpoint whose push subscriptions lag —
    /// the laggy-subscription regime (each subscription's deliveries slip a
    /// seeded number of slots; pollers are unaffected).
    pub fn with_sub_lag(mut self, lag: SubLagProfile) -> Scenario {
        self.config.rpc_sub_lag = Some(lag);
        self
    }

    /// Opens the engine's own event watchers during event-driven runs (see
    /// [`EngineConfig::watch_events`]) — what the laggy-subscription regime
    /// flips so the lag decorator actually has traffic to delay.
    pub fn with_event_watch(mut self) -> Scenario {
        self.watch_events = true;
        self
    }

    /// Funds a mempool-watching adversary and lets it front-run every
    /// `uploadCid` broadcast — the push-streaming attack regime. Only the
    /// event engine races the slot boundary, so this implies a concurrent
    /// execution mode.
    pub fn with_mempool_freeloader(mut self) -> Scenario {
        self.config.fund_adversary = true;
        self.failures.mempool_front_run = true;
        if self.mode == ExecutionMode::Serial {
            self = self.concurrent();
        }
        self
    }

    /// Sets the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Scenario {
        self.mode = mode;
        self
    }

    /// Shorthand: event-driven, all owners arriving at once.
    pub fn concurrent(self) -> Scenario {
        self.with_mode(ExecutionMode::Concurrent {
            arrivals: Arrivals::Simultaneous,
        })
    }

    /// Executes the workflow under this scenario's mode and injections and
    /// distills the session into a comparable outcome.
    pub fn run(&self) -> Result<ScenarioOutcome, MarketError> {
        match self.mode {
            ExecutionMode::Serial => self.run_serial(),
            ExecutionMode::Concurrent { arrivals } => self.run_event_driven(1, arrivals, 1),
            ExecutionMode::MultiMarket {
                markets,
                arrivals,
                shards,
            } => self.run_event_driven(markets.max(1), arrivals, shards.max(1)),
        }
    }

    /// The original serial driver: one owner at a time, one tx per block.
    fn run_serial(&self) -> Result<ScenarioOutcome, MarketError> {
        let ep = EndpointId(0);
        let mut market = Marketplace::new(self.config.clone());
        let n = market.owners.len();
        // Nothing is burned yet, so this *is* the genesis allocation —
        // captured here so the conservation check below tracks whatever
        // funding policy `Marketplace::new` uses.
        let genesis_supply = market.world.total_supply(ep);
        market.deploy_contract()?;

        let mut reverted_tx_count = 0usize;
        for i in 0..n {
            if self.failures.freeload.contains(&i) {
                // Shrink the silo to (at most) 3 examples before training;
                // the owner still goes through the whole honest protocol.
                let len = market.owners[i].data.len();
                let keep: Vec<usize> = (0..len.min(3)).collect();
                market.owners[i].data = market.owners[i].data.subset(&keep);
            }
            market.owner_train(i);
            market.owner_upload_model(i)?;
            if self.failures.dropout.contains(&i) {
                continue;
            }
            if self.failures.revert_cid_tx.contains(&i) {
                // An unknown selector: the contract's dispatcher reverts,
                // the owner pays intrinsic+execution gas, no CID lands.
                let contract = market.contract.expect("deployed above");
                let from = market.owners[i].address;
                let Marketplace { world, session } = &mut market;
                let receipt = world.send_and_confirm(
                    session.placement,
                    &session.wallet,
                    &from,
                    Some(contract.address),
                    U256::ZERO,
                    vec![0xde, 0xad, 0xbe, 0xef],
                )?;
                if receipt.is_success() {
                    return Err(MarketError::TxFailed(format!(
                        "injected revert for owner {i} unexpectedly succeeded"
                    )));
                }
                reverted_tx_count += 1;
                continue;
            }
            market.owner_send_cid(i)?;
        }

        // Availability failure: after the CIDs are public, the blocks vanish.
        for &i in &self.failures.drop_ipfs_blocks {
            if let Some(cid) = market.owners[i].cid.clone() {
                let node_index = market.owners[i].ipfs_node;
                market.world.drop_ipfs_block(ep, node_index, &cid);
            }
        }

        let cids_onchain = market.buyer_download_cids()?;
        let expected_onchain = (0..n).filter(|&i| !self.failures.is_offchain(i)).count();
        assert_eq!(
            cids_onchain.len(),
            expected_onchain,
            "{}: injected off-chain failures must match the contract state",
            self.name
        );
        // A production client gives up on unfetchable CIDs; model that by
        // retrieving only content some peer can still serve.
        let cids_retrieved: Vec<String> = cids_onchain
            .iter()
            .filter(|s| {
                Cid::parse(s)
                    .map(|c| market.world.swarm_has(ep, &c))
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        market.buyer_retrieve_models(&cids_retrieved)?;
        let report = market.buyer_aggregate_and_pay()?;

        // ETH conservation: genesis supply == live balances + EIP-1559 burn.
        let live = market.world.total_supply(ep);
        let burned = market.world.burned(ep);
        let eth_conserved = live.wrapping_add(&burned) == genesis_supply;

        let rpc = market.world.rpc_metrics(ep);
        Ok(ScenarioOutcome {
            name: self.name.clone(),
            seed: self.config.seed,
            n_owners: n,
            n_models_aggregated: cids_retrieved.len(),
            aggregated_accuracy: report.aggregated_accuracy,
            total_paid_wei: report.total_paid(),
            local_accuracies: report.local_accuracies,
            payments: report
                .payments
                .iter()
                .map(|p| (p.address, p.amount_wei))
                .collect(),
            budget_wei: self.config.budget_wei,
            gas_rows: report
                .gas
                .iter()
                .map(|g| (g.label.clone(), g.gas_used))
                .collect(),
            total_gas: report.gas.iter().map(|g| g.gas_used).sum(),
            reverted_tx_count,
            eth_conserved,
            cids_onchain,
            cids_retrieved,
            total_sim_seconds: report.total_sim_seconds,
            rpc_round_trips: rpc.round_trips,
            rpc_timeouts: rpc.total_errors(),
            rpc_cost_micros: rpc.total_cost().as_micros(),
        })
    }

    /// The event-driven driver: one world (of `shards` chains), `markets`
    /// sessions, concurrent owners. Per-market outcomes are merged into
    /// one comparable record (accuracies averaged, payments/gas/CIDs
    /// concatenated in market order).
    fn run_event_driven(
        &self,
        markets: usize,
        arrivals: Arrivals,
        shards: usize,
    ) -> Result<ScenarioOutcome, MarketError> {
        let mut mm = if markets <= 1 {
            MultiMarket::new(vec![self.config.clone()])
        } else {
            MultiMarket::replicated_sharded(&self.config, markets, shards)
        };
        let supply_and_burn = |mm: &mut MultiMarket| {
            (0..mm.world.endpoints()).fold((U256::ZERO, U256::ZERO), |(s, b), i| {
                let supply = mm.world.total_supply(EndpointId(i));
                let burned = mm.world.burned(EndpointId(i));
                (s.wrapping_add(&supply), b.wrapping_add(&burned))
            })
        };
        let (genesis_supply, _) = supply_and_burn(&mut mm);
        let failures: Vec<FailurePlan> = (0..markets).map(|_| self.failures.clone()).collect();
        let (mut mm, engine_report) = mm.run(
            &EngineConfig {
                arrivals,
                watch_events: self.watch_events,
                ..EngineConfig::default()
            },
            &failures,
        )?;

        let honest = (0..self.config.n_owners)
            .filter(|&i| !self.failures.is_offchain(i))
            .count();
        for detail in &engine_report.details {
            // The front-runner shadows every honest registration with a
            // junk one, doubling the contract's CID list.
            let per_market_expected = honest + detail.front_run_count;
            if self.failures.mempool_front_run {
                assert_eq!(
                    detail.front_run_count, honest,
                    "{}: every honest uploadCid must be front-run exactly once",
                    self.name
                );
            }
            assert_eq!(
                detail.cids_onchain.len(),
                per_market_expected,
                "{}: injected off-chain failures must match the contract state",
                self.name
            );
        }

        // ETH conservation holds shard by shard, so it holds for the sums.
        let (live, burned) = supply_and_burn(&mut mm);
        let eth_conserved = live.wrapping_add(&burned) == genesis_supply;

        let mut local_accuracies = Vec::new();
        let mut payments = Vec::new();
        let mut gas_rows = Vec::new();
        let mut cids_onchain = Vec::new();
        let mut cids_retrieved = Vec::new();
        let mut total_paid = U256::ZERO;
        let mut budget = U256::ZERO;
        let mut accuracy_sum = 0.0;
        let mut reverted_tx_count = 0;
        for (m, (report, detail)) in engine_report
            .sessions
            .iter()
            .zip(&engine_report.details)
            .enumerate()
        {
            local_accuracies.extend_from_slice(&report.local_accuracies);
            payments.extend(report.payments.iter().map(|p| (p.address, p.amount_wei)));
            // Market 0 stays unprefixed, matching the blueprint labels.
            let prefix = if m == 0 {
                String::new()
            } else {
                format!("m{m}/")
            };
            gas_rows.extend(
                report
                    .gas
                    .iter()
                    .map(|g| (format!("{prefix}{}", g.label), g.gas_used)),
            );
            cids_onchain.extend_from_slice(&detail.cids_onchain);
            cids_retrieved.extend_from_slice(&detail.cids_retrieved);
            total_paid = total_paid.wrapping_add(&report.total_paid());
            budget = budget.wrapping_add(&self.config.budget_wei);
            accuracy_sum += report.aggregated_accuracy;
            reverted_tx_count += detail.reverted_tx_count;
        }
        let n_sessions = engine_report.sessions.len().max(1);
        let rpc = &engine_report.rpc;
        Ok(ScenarioOutcome {
            name: self.name.clone(),
            seed: self.config.seed,
            n_owners: self.config.n_owners * n_sessions,
            n_models_aggregated: cids_retrieved.len(),
            aggregated_accuracy: accuracy_sum / n_sessions as f64,
            total_paid_wei: total_paid,
            local_accuracies,
            payments,
            budget_wei: budget,
            total_gas: gas_rows.iter().map(|(_, g)| g).sum(),
            gas_rows,
            reverted_tx_count,
            eth_conserved,
            cids_onchain,
            cids_retrieved,
            total_sim_seconds: engine_report.total_sim_seconds,
            rpc_round_trips: rpc.round_trips,
            rpc_timeouts: rpc.total_errors(),
            rpc_cost_micros: rpc.total_cost().as_micros(),
        })
    }
}

/// The comparable distillation of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name (copied from [`Scenario::name`]).
    pub name: String,
    /// Master seed the session ran under.
    pub seed: u64,
    /// Configured owner count (summed across markets).
    pub n_owners: usize,
    /// Models the buyer(s) actually retrieved and aggregated.
    pub n_models_aggregated: usize,
    /// Test accuracy of the aggregated model (mean across markets).
    pub aggregated_accuracy: f64,
    /// Per-owner local accuracies (all owners, including failed ones).
    pub local_accuracies: Vec<f64>,
    /// `(recipient, wei)` rows, in retrieval order.
    pub payments: Vec<(H160, U256)>,
    /// Sum of all payments.
    pub total_paid_wei: U256,
    /// Configured buyer budget (summed across markets).
    pub budget_wei: U256,
    /// `(label, gas_used)` per transaction.
    pub gas_rows: Vec<(String, u64)>,
    /// Total gas across deploy/upload/payment transactions.
    pub total_gas: u64,
    /// Injected transactions that (as intended) reverted on-chain.
    pub reverted_tx_count: usize,
    /// Genesis supply == balances + burn held at session end.
    pub eth_conserved: bool,
    /// Every CID the contract(s) returned.
    pub cids_onchain: Vec<String>,
    /// The subset of CIDs the buyer(s) could still fetch.
    pub cids_retrieved: Vec<String>,
    /// Virtual seconds the whole session took.
    pub total_sim_seconds: f64,
    /// Provider round trips the session's traffic cost (metered).
    pub rpc_round_trips: u64,
    /// Provider requests that timed out (non-zero under a flaky provider).
    pub rpc_timeouts: u64,
    /// Total virtual microseconds priced onto provider traffic.
    pub rpc_cost_micros: u64,
}

impl ScenarioOutcome {
    /// Payments exhausted the budget exactly (the Table 1 invariant).
    pub fn budget_exhausted(&self) -> bool {
        self.total_paid_wei == self.budget_wei
    }

    /// An order-sensitive digest of everything comparable in the outcome.
    /// Two runs of the same scenario must produce identical fingerprints;
    /// this is what the determinism regression tests assert.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.seed.to_le_bytes());
        eat(&(self.n_owners as u64).to_le_bytes());
        eat(&(self.n_models_aggregated as u64).to_le_bytes());
        eat(&self.aggregated_accuracy.to_le_bytes());
        for acc in &self.local_accuracies {
            eat(&acc.to_le_bytes());
        }
        for (addr, amount) in &self.payments {
            eat(addr.as_bytes());
            eat(&amount.to_be_bytes());
        }
        eat(&self.total_paid_wei.to_be_bytes());
        eat(&self.budget_wei.to_be_bytes());
        for (label, gas) in &self.gas_rows {
            eat(label.as_bytes());
            eat(&gas.to_le_bytes());
        }
        eat(&self.total_gas.to_le_bytes());
        eat(&(self.reverted_tx_count as u64).to_le_bytes());
        eat(&[self.eth_conserved as u8]);
        for cid in &self.cids_onchain {
            eat(cid.as_bytes());
        }
        for cid in &self.cids_retrieved {
            eat(cid.as_bytes());
        }
        eat(&self.total_sim_seconds.to_le_bytes());
        eat(&self.rpc_round_trips.to_le_bytes());
        eat(&self.rpc_timeouts.to_le_bytes());
        eat(&self.rpc_cost_micros.to_le_bytes());
        h
    }

    /// One table row: name, models, accuracy, payments, gas, conservation.
    pub fn render_row(&self) -> String {
        format!(
            "{:<28} {:>2}/{:<2} {:>7.2}%  paid {:>10} ETH  gas {:>9}  {}",
            self.name,
            self.n_models_aggregated,
            self.n_owners,
            self.aggregated_accuracy * 100.0,
            format_eth(&self.total_paid_wei, 6),
            self.total_gas,
            if self.eth_conserved {
                "eth-ok"
            } else {
                "ETH-LEAK"
            },
        )
    }
}

/// A named batch of scenarios run back to back.
#[derive(Debug, Clone, Default)]
pub struct ScenarioSuite {
    /// The scenarios, in execution order.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioSuite {
    /// An empty suite.
    pub fn new() -> ScenarioSuite {
        ScenarioSuite::default()
    }

    /// Adds a scenario (builder style).
    pub fn push(mut self, scenario: Scenario) -> ScenarioSuite {
        self.scenarios.push(scenario);
        self
    }

    /// The four partition regimes of the integration suite, failure-free,
    /// at test scale.
    pub fn partition_sweep(seed: u64) -> ScenarioSuite {
        ScenarioSuite::new()
            .push(Scenario::small("iid", PartitionScheme::Iid, seed))
            .push(Scenario::small(
                "dirichlet-0.5",
                PartitionScheme::Dirichlet { alpha: 0.5 },
                seed.wrapping_add(1),
            ))
            .push(Scenario::small(
                "shards-2",
                PartitionScheme::Shards { per_client: 2 },
                seed.wrapping_add(2),
            ))
            .push(Scenario::small(
                "label-skew-3",
                PartitionScheme::LabelSkew { classes: 3 },
                seed.wrapping_add(3),
            ))
    }

    /// Failure-injection regimes at test scale: availability loss, on-chain
    /// revert, freeloading, dropout, a combined storm, and the five
    /// infrastructure regimes (flaky provider, rate limiting, stale reads,
    /// latency spikes, reordered batches).
    pub fn failure_sweep(seed: u64) -> ScenarioSuite {
        ScenarioSuite::new()
            .push(
                Scenario::small("dropped-ipfs-block", PartitionScheme::Iid, seed).with_failures(
                    FailurePlan {
                        drop_ipfs_blocks: vec![1],
                        ..FailurePlan::clean()
                    },
                ),
            )
            .push(
                Scenario::small(
                    "reverted-cid-tx",
                    PartitionScheme::Iid,
                    seed.wrapping_add(1),
                )
                .with_failures(FailurePlan {
                    revert_cid_tx: vec![2],
                    ..FailurePlan::clean()
                }),
            )
            .push(
                Scenario::small(
                    "freeloading-owner",
                    PartitionScheme::Dirichlet { alpha: 0.5 },
                    seed.wrapping_add(2),
                )
                .with_failures(FailurePlan {
                    freeload: vec![0],
                    ..FailurePlan::clean()
                }),
            )
            .push(
                Scenario::small("silent-dropout", PartitionScheme::Iid, seed.wrapping_add(3))
                    .with_failures(FailurePlan {
                        dropout: vec![3],
                        ..FailurePlan::clean()
                    }),
            )
            .push(
                Scenario::small(
                    "failure-storm",
                    PartitionScheme::Dirichlet { alpha: 0.5 },
                    seed.wrapping_add(4),
                )
                .with_failures(FailurePlan {
                    drop_ipfs_blocks: vec![0],
                    revert_cid_tx: vec![1],
                    freeload: vec![2],
                    ..FailurePlan::clean()
                }),
            )
            .push(
                // The infrastructure is what misbehaves here: a seeded
                // flaky RPC endpoint drops ~15% of requests, the world
                // retries, and the session completes late but intact.
                Scenario::small("flaky-provider", PartitionScheme::Iid, seed.wrapping_add(5))
                    .with_rpc_faults(FaultProfile::new(seed ^ 0xF1A5, 0.15)),
            )
            .push(
                // A quota-enforcing endpoint: bursts past ~6 requests per
                // slot draw 429s, clients back off and retry, and the
                // session completes late but intact.
                Scenario::small("rate-limited", PartitionScheme::Iid, seed.wrapping_add(6))
                    .with_rate_limit(RateLimitProfile::new(seed ^ 0x0429, 6)),
            )
            .push(
                // A lagging replica: head and receipt reads run up to two
                // slots behind the canonical chain, so confirmations arrive
                // late and clients re-poll — but every model still lands.
                Scenario::small("stale-reads", PartitionScheme::Iid, seed.wrapping_add(7))
                    .with_stale_reads(StaleProfile::new(seed ^ 0x57A1, 2)),
            )
            .push(
                // A congested provider: seeded coin flips open 2-slot
                // windows where every exchange stalls an extra 2 seconds,
                // then the endpoint recovers — sessions run late but land.
                Scenario::small("latency-spike", PartitionScheme::Iid, seed.wrapping_add(8))
                    .with_latency_spikes(SpikeProfile::new(seed ^ 0x591C, 0.3)),
            )
            .push(
                // An out-of-order server: every batch reply array comes
                // back seeded-shuffled with its tags intact, and clients
                // pair answers by tag — the outcome matches a clean run.
                Scenario::small(
                    "reordered-batch",
                    PartitionScheme::Iid,
                    seed.wrapping_add(9),
                )
                .with_reordered_batches(ReorderProfile::new(seed ^ 0x0BAD)),
            )
            .push(
                // A mempool-watching adversary: a funded non-participant
                // subscribes to pendingTxs and shadows every uploadCid
                // broadcast with an outbidding junk registration — the junk
                // lands first on-chain but is never retrieved or paid.
                Scenario::small(
                    "mempool-freeloader",
                    PartitionScheme::Iid,
                    seed.wrapping_add(10),
                )
                .with_mempool_freeloader(),
            )
            .push(
                // A laggy push endpoint: every subscription's deliveries
                // slip a seeded number of slots while polled reads stay
                // fresh — watchers run late but the outcome is unchanged.
                Scenario::small("sub-lag", PartitionScheme::Iid, seed.wrapping_add(11))
                    .with_sub_lag(SubLagProfile::new(seed ^ 0x1A66, 2))
                    .with_event_watch()
                    .concurrent(),
            )
    }

    /// Concurrency regimes: the same sessions driven by the discrete-event
    /// engine — simultaneous owners, staggered arrivals, several markets on
    /// one chain, and failure injection under contention.
    pub fn concurrency_sweep(seed: u64) -> ScenarioSuite {
        let eight_owners = MarketConfig {
            n_owners: 8,
            partition: PartitionScheme::Iid,
            seed,
            ..MarketConfig::small_test()
        };
        ScenarioSuite::new()
            .push(Scenario::new("concurrent-8", eight_owners).concurrent())
            .push(
                Scenario::small("staggered-4", PartitionScheme::Iid, seed.wrapping_add(1))
                    .with_mode(ExecutionMode::Concurrent {
                        arrivals: Arrivals::Staggered(SimDuration::from_secs(10)),
                    }),
            )
            .push(
                Scenario::small(
                    "multi-2x4",
                    PartitionScheme::Dirichlet { alpha: 0.5 },
                    seed.wrapping_add(2),
                )
                .with_mode(ExecutionMode::MultiMarket {
                    markets: 2,
                    arrivals: Arrivals::Simultaneous,
                    shards: 1,
                }),
            )
            .push(
                // The same two markets, but placed on different chains of a
                // 2-shard pool: their CID transactions land in different
                // chains' blocks instead of contending for one mempool.
                Scenario::small(
                    "sharded-2x4",
                    PartitionScheme::Dirichlet { alpha: 0.5 },
                    seed.wrapping_add(4),
                )
                .with_mode(ExecutionMode::MultiMarket {
                    markets: 2,
                    arrivals: Arrivals::Simultaneous,
                    shards: 2,
                }),
            )
            .push(
                Scenario::small(
                    "concurrent-dropout",
                    PartitionScheme::Iid,
                    seed.wrapping_add(3),
                )
                .with_failures(FailurePlan {
                    dropout: vec![2],
                    ..FailurePlan::clean()
                })
                .concurrent(),
            )
    }

    /// Partition sweep plus failure sweep plus concurrency sweep — the full
    /// regression surface.
    pub fn full(seed: u64) -> ScenarioSuite {
        let mut suite = ScenarioSuite::partition_sweep(seed);
        suite
            .scenarios
            .extend(ScenarioSuite::failure_sweep(seed.wrapping_add(100)).scenarios);
        suite
            .scenarios
            .extend(ScenarioSuite::concurrency_sweep(seed.wrapping_add(200)).scenarios);
        suite
    }

    /// Runs every scenario, failing fast on the first error.
    pub fn run(&self) -> Result<Vec<ScenarioOutcome>, MarketError> {
        self.scenarios.iter().map(Scenario::run).collect()
    }

    /// Renders outcomes as an ASCII table.
    pub fn render_table(outcomes: &[ScenarioOutcome]) -> String {
        let mut out = String::from("scenario                     models    acc     payments          gas        invariants\n");
        for outcome in outcomes {
            out.push_str(&outcome.render_row());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(partition: PartitionScheme, seed: u64) -> Scenario {
        let mut scenario = Scenario::small("quick", partition, seed);
        // Even smaller than small_test: unit tests here only check the
        // orchestration, not model quality.
        scenario.config.n_train = 400;
        scenario.config.n_test = 100;
        scenario.config.train.epochs = 1;
        scenario
    }

    #[test]
    fn clean_scenario_aggregates_everyone_and_conserves_eth() {
        let outcome = quick(PartitionScheme::Iid, 5).run().expect("runs");
        assert_eq!(outcome.n_models_aggregated, outcome.n_owners);
        assert_eq!(outcome.cids_onchain, outcome.cids_retrieved);
        assert!(outcome.eth_conserved);
        assert!(outcome.budget_exhausted());
        assert_eq!(outcome.reverted_tx_count, 0);
        assert_eq!(outcome.payments.len(), outcome.n_owners);
    }

    #[test]
    fn dropout_and_revert_shrink_the_onchain_set() {
        let outcome = quick(PartitionScheme::Iid, 6)
            .with_failures(FailurePlan {
                revert_cid_tx: vec![0],
                dropout: vec![1],
                ..FailurePlan::clean()
            })
            .run()
            .expect("runs");
        assert_eq!(outcome.n_owners, 4);
        assert_eq!(outcome.cids_onchain.len(), 2);
        assert_eq!(outcome.n_models_aggregated, 2);
        assert_eq!(outcome.reverted_tx_count, 1);
        // The reverted transaction still burned gas but landed no CID.
        assert!(outcome.eth_conserved);
        assert!(outcome.budget_exhausted());
    }

    #[test]
    fn dropped_block_is_on_chain_but_not_retrieved() {
        let outcome = quick(PartitionScheme::Iid, 7)
            .with_failures(FailurePlan {
                drop_ipfs_blocks: vec![2],
                ..FailurePlan::clean()
            })
            .run()
            .expect("runs");
        // The CID made it on-chain — the *content* is what vanished.
        assert_eq!(outcome.cids_onchain.len(), 4);
        assert_eq!(outcome.cids_retrieved.len(), 3);
        assert_eq!(outcome.n_models_aggregated, 3);
        assert!(outcome.budget_exhausted());
    }

    #[test]
    fn fingerprint_separates_scenarios_but_not_reruns() {
        let a = quick(PartitionScheme::Iid, 8).run().expect("runs");
        let b = quick(PartitionScheme::Iid, 8).run().expect("runs");
        let c = quick(PartitionScheme::Iid, 9).run().expect("runs");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn concurrent_mode_is_deterministic_and_faster() {
        let serial = quick(PartitionScheme::Iid, 11).run().expect("serial runs");
        let concurrent = || quick(PartitionScheme::Iid, 11).concurrent().run();
        let a = concurrent().expect("concurrent runs");
        let b = concurrent().expect("concurrent reruns");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        // Same participants and models, less virtual time.
        assert_eq!(a.cids_onchain, serial.cids_onchain);
        assert!(a.total_sim_seconds < serial.total_sim_seconds);
        assert!(a.eth_conserved && a.budget_exhausted());
    }

    #[test]
    fn multi_market_outcome_merges_sessions() {
        let mut scenario = quick(PartitionScheme::Iid, 12).with_mode(ExecutionMode::MultiMarket {
            markets: 2,
            arrivals: Arrivals::Simultaneous,
            shards: 1,
        });
        scenario.name = "multi".into();
        let outcome = scenario.run().expect("runs");
        assert_eq!(outcome.n_owners, 8);
        assert_eq!(outcome.n_models_aggregated, 8);
        assert_eq!(outcome.payments.len(), 8);
        // Two budgets, both exhausted.
        assert!(outcome.budget_exhausted());
        assert!(outcome.eth_conserved);
        // Gas rows are namespaced per market.
        assert!(outcome.gas_rows.iter().any(|(l, _)| l == "deploy"));
        assert!(outcome.gas_rows.iter().any(|(l, _)| l == "m1/deploy"));
    }

    #[test]
    fn suite_builders_cover_the_advertised_regimes() {
        let partitions = ScenarioSuite::partition_sweep(1);
        assert_eq!(partitions.scenarios.len(), 4);
        assert!(partitions.scenarios.iter().all(|s| s.failures.is_clean()));
        let failures = ScenarioSuite::failure_sweep(1);
        assert!(failures.scenarios.len() >= 2);
        // Every regime injects *something*: misbehaving participants or a
        // faulty (flaky or throttling) provider.
        assert!(failures.scenarios.iter().all(|s| !s.failures.is_clean()
            || s.config.rpc_faults.is_some()
            || s.config.rpc_rate_limit.is_some()
            || s.config.rpc_stale.is_some()
            || s.config.rpc_spike.is_some()
            || s.config.rpc_reorder.is_some()
            || s.config.rpc_sub_lag.is_some()));
        assert!(failures
            .scenarios
            .iter()
            .any(|s| s.config.rpc_faults.is_some()));
        assert!(failures
            .scenarios
            .iter()
            .any(|s| s.config.rpc_rate_limit.is_some()));
        assert!(failures
            .scenarios
            .iter()
            .any(|s| s.config.rpc_stale.is_some()));
        assert!(failures
            .scenarios
            .iter()
            .any(|s| s.config.rpc_spike.is_some()));
        assert!(failures
            .scenarios
            .iter()
            .any(|s| s.config.rpc_reorder.is_some()));
        assert!(failures
            .scenarios
            .iter()
            .any(|s| s.config.rpc_sub_lag.is_some()));
        assert!(failures
            .scenarios
            .iter()
            .any(|s| s.failures.mempool_front_run));
        let concurrency = ScenarioSuite::concurrency_sweep(1);
        assert!(concurrency.scenarios.len() >= 3);
        // The sweep exercises both same-shard and cross-shard placement.
        assert!(concurrency
            .scenarios
            .iter()
            .any(|s| matches!(s.mode, ExecutionMode::MultiMarket { shards, .. } if shards > 1)));
        assert!(concurrency
            .scenarios
            .iter()
            .all(|s| s.mode != ExecutionMode::Serial));
        let full = ScenarioSuite::full(1);
        assert_eq!(
            full.scenarios.len(),
            partitions.scenarios.len() + failures.scenarios.len() + concurrency.scenarios.len()
        );
    }

    #[test]
    fn flaky_provider_is_deterministic_and_costs_time() {
        let clean = quick(PartitionScheme::Iid, 14).run().expect("clean runs");
        let flaky = || {
            quick(PartitionScheme::Iid, 14)
                .with_rpc_faults(FaultProfile::new(0xF1A5, 0.2))
                .run()
                .expect("flaky session completes via retries")
        };
        let a = flaky();
        let b = flaky();
        // Bit-identical under equal fault seeds, including the rpc counters.
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Faults were actually injected, retried, and survived.
        assert!(a.rpc_timeouts > 0, "20% drops must surface");
        assert_eq!(a.n_models_aggregated, a.n_owners);
        assert!(a.eth_conserved && a.budget_exhausted());
        // Timeouts and retries cost extra round trips and virtual time.
        assert!(a.rpc_round_trips > clean.rpc_round_trips);
        assert!(a.total_sim_seconds > clean.total_sim_seconds);
        // Same marketplace outcome, worse infrastructure: identical CIDs.
        assert_eq!(a.cids_onchain, clean.cids_onchain);
    }

    #[test]
    fn stale_reads_delay_but_never_break_the_session() {
        let clean = quick(PartitionScheme::Iid, 15).run().expect("clean runs");
        let stale = |seed: u64| {
            quick(PartitionScheme::Iid, 15)
                .with_stale_reads(StaleProfile::new(seed, 2))
                .run()
                .expect("stale session completes via re-polls")
        };
        let a = stale(0x57A1);
        let b = stale(0x57A1);
        // Bit-identical under equal staleness seeds.
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Same marketplace outcome, slower confirmations: identical CIDs,
        // at least as much virtual time and polling traffic.
        assert_eq!(a.cids_onchain, clean.cids_onchain);
        assert_eq!(a.n_models_aggregated, a.n_owners);
        assert!(a.eth_conserved && a.budget_exhausted());
        assert!(a.total_sim_seconds >= clean.total_sim_seconds);
        assert!(a.rpc_round_trips >= clean.rpc_round_trips);
    }

    #[test]
    fn latency_spikes_stall_slots_but_never_break_the_session() {
        let clean = quick(PartitionScheme::Iid, 16).run().expect("clean runs");
        let spiked = |seed: u64| {
            quick(PartitionScheme::Iid, 16)
                .with_latency_spikes(SpikeProfile::new(seed, 0.5))
                .run()
                .expect("spiked session completes, just later")
        };
        let a = spiked(0x591C);
        let b = spiked(0x591C);
        // Bit-identical under equal spike seeds.
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Same marketplace outcome, congested infrastructure: identical
        // CIDs, strictly more virtual time (a 50% spike rate must land at
        // least one stall window across the whole workflow).
        assert_eq!(a.cids_onchain, clean.cids_onchain);
        assert_eq!(a.n_models_aggregated, a.n_owners);
        assert!(a.eth_conserved && a.budget_exhausted());
        assert!(a.total_sim_seconds > clean.total_sim_seconds);
    }

    #[test]
    fn reordered_batches_change_nothing_for_tag_matching_clients() {
        let clean = quick(PartitionScheme::Iid, 17).run().expect("clean runs");
        let shuffled = |seed: u64| {
            quick(PartitionScheme::Iid, 17)
                .with_reordered_batches(ReorderProfile::new(seed))
                .run()
                .expect("reordered session completes")
        };
        let a = shuffled(0x0BAD);
        let b = shuffled(0x0BAD);
        // Bit-identical under equal shuffle seeds.
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Reordering only permutes reply arrays — it drops nothing and
        // prices nothing — so a tag-matching client sees the exact same
        // session a clean run does, shuffled seed or not.
        assert_eq!(a, shuffled(0x0F00D));
        assert_eq!(a.cids_onchain, clean.cids_onchain);
        assert_eq!(a.n_models_aggregated, a.n_owners);
        assert!(a.eth_conserved && a.budget_exhausted());
        assert_eq!(a.total_sim_seconds, clean.total_sim_seconds);
        assert_eq!(a.rpc_round_trips, clean.rpc_round_trips);
    }

    #[test]
    fn mempool_freeloader_front_runs_but_goes_unpaid() {
        let run = || {
            quick(PartitionScheme::Iid, 21)
                .with_mempool_freeloader()
                .run()
                .expect("front-run session completes")
        };
        let a = run();
        let b = run();
        // Deterministic by seed, junk registrations included.
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Every honest registration was shadowed by one junk registration…
        assert_eq!(a.n_owners, 4);
        assert_eq!(a.cids_onchain.len(), 8);
        let junk: Vec<&String> = a
            .cids_onchain
            .iter()
            .filter(|c| c.starts_with("junk-"))
            .collect();
        assert_eq!(junk.len(), 4);
        // …and the outbidding junk registered *before* any honest CID.
        assert!(a.cids_onchain[0].starts_with("junk-"));
        // The junk resolves to no content: never retrieved, never paid.
        assert_eq!(a.cids_retrieved.len(), 4);
        assert!(a.cids_retrieved.iter().all(|c| !c.starts_with("junk-")));
        assert_eq!(a.n_models_aggregated, 4);
        assert_eq!(a.payments.len(), 4);
        assert!(a.budget_exhausted());
        // The adversary's gas still burns inside the ledger.
        assert!(a.eth_conserved);
    }

    #[test]
    fn sub_lag_delays_watchers_but_not_outcomes() {
        let clean = quick(PartitionScheme::Iid, 22)
            .with_event_watch()
            .concurrent()
            .run()
            .expect("clean watched run");
        let lagged = |seed: u64| {
            quick(PartitionScheme::Iid, 22)
                .with_sub_lag(SubLagProfile::new(seed, 2))
                .with_event_watch()
                .concurrent()
                .run()
                .expect("lagged watched run")
        };
        let a = lagged(0x1A66);
        let b = lagged(0x1A66);
        // Bit-identical under equal lag seeds.
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Lag only reschedules push deliveries; the marketplace outcome —
        // polled receipts included — is exactly the clean run's.
        assert_eq!(a.cids_onchain, clean.cids_onchain);
        assert_eq!(a.total_sim_seconds, clean.total_sim_seconds);
        assert!(a.eth_conserved && a.budget_exhausted());
    }

    #[test]
    fn offchain_helper_matches_plan() {
        let plan = FailurePlan {
            revert_cid_tx: vec![1],
            dropout: vec![2],
            ..FailurePlan::clean()
        };
        assert!(plan.is_offchain(1));
        assert!(plan.is_offchain(2));
        assert!(!plan.is_offchain(0));
        assert!(!plan.is_clean());
        assert!(FailurePlan::clean().is_clean());
    }
}
