//! The simulated Web 3.0 world: one blockchain, one IPFS swarm, one virtual
//! clock, and the network profile connecting participants to both.
//!
//! Block production is clock-driven: transactions wait in the mempool until
//! the next 12-second slot boundary, which is where the paper's Fig 7
//! "blockchain interactions dominate" observation comes from.

use ofl_eth::block::Receipt;
use ofl_eth::chain::{Chain, ChainConfig};
use ofl_eth::wallet::{Wallet, WalletError};
use ofl_ipfs::swarm::Swarm;
use ofl_netsim::clock::{SimClock, SimDuration};
use ofl_netsim::link::NetworkProfile;
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};

/// Errors surfaced by world operations.
#[derive(Debug)]
pub enum WorldError {
    /// Wallet/chain rejection.
    Wallet(WalletError),
    /// A transaction was dropped from the mempool without a receipt.
    TxDropped(H256),
    /// IPFS failure.
    Ipfs(ofl_ipfs::swarm::IpfsError),
}

impl From<WalletError> for WorldError {
    fn from(e: WalletError) -> Self {
        WorldError::Wallet(e)
    }
}

impl From<ofl_ipfs::swarm::IpfsError> for WorldError {
    fn from(e: ofl_ipfs::swarm::IpfsError) -> Self {
        WorldError::Ipfs(e)
    }
}

impl core::fmt::Display for WorldError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorldError::Wallet(e) => write!(f, "wallet: {e}"),
            WorldError::TxDropped(h) => write!(f, "transaction {h} dropped without receipt"),
            WorldError::Ipfs(e) => write!(f, "ipfs: {e}"),
        }
    }
}

impl std::error::Error for WorldError {}

/// The shared substrate every participant interacts with.
pub struct World {
    /// Virtual time.
    pub clock: SimClock,
    /// The Sepolia-like chain.
    pub chain: Chain,
    /// The IPFS swarm.
    pub swarm: Swarm,
    /// Link models.
    pub profile: NetworkProfile,
    /// Approximate wire size of a signed transaction (for RPC timing).
    pub tx_wire_bytes: u64,
}

impl World {
    /// Builds a world with genesis balances.
    pub fn new(
        chain_config: ChainConfig,
        genesis: &[(H160, U256)],
        profile: NetworkProfile,
    ) -> World {
        World {
            clock: SimClock::new(),
            chain: Chain::new(chain_config, genesis),
            swarm: Swarm::new(),
            profile,
            tx_wire_bytes: 250,
        }
    }

    /// Submits a transaction via a wallet and blocks (in virtual time) until
    /// it is mined, driving 12-second slot production. Returns the receipt.
    pub fn send_and_confirm(
        &mut self,
        wallet: &Wallet,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<Receipt, WorldError> {
        // RPC submission (calldata rides along).
        let wire = self.tx_wire_bytes + data.len() as u64;
        self.clock.advance(self.profile.rpc.transfer_time(wire));
        let hash = wallet.send(&mut self.chain, from, to, value, data)?;
        self.mine_until(&[hash])?;
        // Receipt poll.
        self.clock
            .advance(self.profile.rpc.transfer_time(self.tx_wire_bytes));
        Ok(self
            .chain
            .receipt(&hash)
            .expect("mine_until guarantees receipt")
            .clone())
    }

    /// Advances slot by slot until every hash has a receipt.
    pub fn mine_until(&mut self, hashes: &[H256]) -> Result<(), WorldError> {
        let block_time = self.chain.config().block_time;
        for _ in 0..64 {
            if hashes.iter().all(|h| self.chain.receipt(h).is_some()) {
                return Ok(());
            }
            let now = self.clock.elapsed_secs() as u64;
            let next_slot = (now / block_time + 1) * block_time;
            self.clock
                .advance_to(ofl_netsim::clock::SimInstant(next_slot * 1_000_000));
            self.chain.mine_block(next_slot);
        }
        for h in hashes {
            if self.chain.receipt(h).is_none() {
                return Err(WorldError::TxDropped(*h));
            }
        }
        Ok(())
    }

    /// A free read (`eth_call`-style) with RPC latency charged.
    pub fn read_call(
        &mut self,
        from: &H160,
        to: &H160,
        data: Vec<u8>,
    ) -> ofl_eth::chain::CallResult {
        self.clock.advance(
            self.profile
                .rpc
                .transfer_time(self.tx_wire_bytes + data.len() as u64),
        );
        let result = self.chain.call(from, to, data);
        self.clock.advance(
            self.profile
                .rpc
                .transfer_time(result.output.len() as u64 + 64),
        );
        result
    }

    /// Charges IPFS transfer time for `bytes` moved in `rounds` exchanges
    /// over the LAN.
    pub fn charge_ipfs_transfer(&mut self, bytes: u64, rounds: usize) {
        let t: SimDuration = self.profile.lan.exchange_time(bytes, rounds.max(1));
        self.clock.advance(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_primitives::wei_per_eth;

    #[test]
    fn send_and_confirm_waits_for_slot() {
        let wallet = Wallet::from_seed("world-test", 2);
        let addrs = wallet.addresses();
        let world_genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(
            ChainConfig::default(),
            &world_genesis,
            NetworkProfile::campus(),
        );
        let receipt = world
            .send_and_confirm(&wallet, &addrs[0], Some(addrs[1]), U256::from(5u64), vec![])
            .unwrap();
        assert!(receipt.is_success());
        // Must have waited at least until the first 12 s slot.
        assert!(world.clock.elapsed_secs() >= 12.0);
        assert!(world.clock.elapsed_secs() < 25.0);
        assert_eq!(world.chain.height(), 1);
    }

    #[test]
    fn sequential_txs_land_in_sequential_slots() {
        let wallet = Wallet::from_seed("world-test-2", 2);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(ChainConfig::default(), &genesis, NetworkProfile::campus());
        let r1 = world
            .send_and_confirm(&wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        let r2 = world
            .send_and_confirm(&wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        assert!(r2.block_number > r1.block_number);
        assert!(world.clock.elapsed_secs() >= 24.0);
    }

    #[test]
    fn read_call_costs_time_but_no_gas() {
        let wallet = Wallet::from_seed("world-test-3", 1);
        let a = wallet.addresses()[0];
        let mut world = World::new(
            ChainConfig::default(),
            &[(a, wei_per_eth())],
            NetworkProfile::campus(),
        );
        let before_balance = world.chain.balance(&a);
        let before_time = world.clock.elapsed_secs();
        world.read_call(&a, &H160::from_slice(&[7; 20]), vec![]);
        assert_eq!(world.chain.balance(&a), before_balance);
        assert!(world.clock.elapsed_secs() > before_time);
    }
}
