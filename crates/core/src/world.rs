//! The simulated Web 3.0 world: one blockchain, one IPFS swarm, one virtual
//! clock, and the network profile connecting participants to both.
//!
//! Block production is clock-driven: transactions wait in the mempool until
//! the next 12-second slot boundary, which is where the paper's Fig 7
//! "blockchain interactions dominate" observation comes from.
//!
//! Two ways to drive it:
//!
//! - **Serial** ([`World::send_and_confirm`]): submit, then block (in
//!   virtual time) until mined — one participant at a time.
//! - **Event-driven** ([`World::submit_tx`] / [`World::await_receipt`] plus
//!   the slot helpers): submission and confirmation are separate steps, so
//!   the session engine in `ofl_core::engine` can let many owners' (and
//!   many markets') transactions land in the mempool together and get mined
//!   into *shared* blocks at slot boundaries.

use ofl_eth::block::{Block, Receipt};
use ofl_eth::chain::{Chain, ChainConfig};
use ofl_eth::wallet::{Wallet, WalletError};
use ofl_ipfs::swarm::Swarm;
use ofl_netsim::clock::{SimClock, SimDuration, SimInstant};
use ofl_netsim::link::NetworkProfile;
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};

/// Errors surfaced by world operations.
#[derive(Debug)]
pub enum WorldError {
    /// Wallet/chain rejection.
    Wallet(WalletError),
    /// A transaction was dropped from the mempool without a receipt.
    TxDropped(H256),
    /// A confirmation wait exhausted [`ChainConfig::max_wait_slots`].
    ConfirmationTimeout {
        /// Slots mined while waiting.
        slots_mined: u64,
        /// Hashes still without a receipt when the wait gave up.
        pending: Vec<H256>,
    },
    /// IPFS failure.
    Ipfs(ofl_ipfs::swarm::IpfsError),
}

impl From<WalletError> for WorldError {
    fn from(e: WalletError) -> Self {
        WorldError::Wallet(e)
    }
}

impl From<ofl_ipfs::swarm::IpfsError> for WorldError {
    fn from(e: ofl_ipfs::swarm::IpfsError) -> Self {
        WorldError::Ipfs(e)
    }
}

impl core::fmt::Display for WorldError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorldError::Wallet(e) => write!(f, "wallet: {e}"),
            WorldError::TxDropped(h) => write!(f, "transaction {h} dropped without receipt"),
            WorldError::ConfirmationTimeout {
                slots_mined,
                pending,
            } => {
                write!(
                    f,
                    "confirmation wait gave up after mining {slots_mined} slots; still pending:"
                )?;
                for h in pending {
                    write!(f, " {h}")?;
                }
                Ok(())
            }
            WorldError::Ipfs(e) => write!(f, "ipfs: {e}"),
        }
    }
}

impl std::error::Error for WorldError {}

/// The shared substrate every participant interacts with.
pub struct World {
    /// Virtual time.
    pub clock: SimClock,
    /// The Sepolia-like chain.
    pub chain: Chain,
    /// The IPFS swarm.
    pub swarm: Swarm,
    /// Link models.
    pub profile: NetworkProfile,
    /// Approximate wire size of a signed transaction (for RPC timing).
    pub tx_wire_bytes: u64,
}

impl World {
    /// Builds a world with genesis balances.
    pub fn new(
        chain_config: ChainConfig,
        genesis: &[(H160, U256)],
        profile: NetworkProfile,
    ) -> World {
        World {
            clock: SimClock::new(),
            chain: Chain::new(chain_config, genesis),
            swarm: Swarm::new(),
            profile,
            tx_wire_bytes: 250,
        }
    }

    // ------------------------------------------------------------------
    // Pure timing queries (no clock movement) — what the event engine
    // schedules with.
    // ------------------------------------------------------------------

    /// RPC time to broadcast a signed transaction carrying `data_len` bytes
    /// of calldata.
    pub fn tx_submit_time(&self, data_len: usize) -> SimDuration {
        self.profile
            .rpc
            .transfer_time(self.tx_wire_bytes + data_len as u64)
    }

    /// RPC time for one receipt poll.
    pub fn receipt_poll_time(&self) -> SimDuration {
        self.profile.rpc.transfer_time(self.tx_wire_bytes)
    }

    /// RPC time for an `eth_call` round trip: request with `data_len` bytes
    /// of calldata, response of `output_len` bytes.
    pub fn read_call_time(&self, data_len: usize, output_len: usize) -> SimDuration {
        self.profile
            .rpc
            .transfer_time(self.tx_wire_bytes + data_len as u64)
            .saturating_add(self.profile.rpc.transfer_time(output_len as u64 + 64))
    }

    /// LAN time for an IPFS exchange of `bytes` over `rounds` round trips.
    pub fn ipfs_transfer_time(&self, bytes: u64, rounds: usize) -> SimDuration {
        self.profile.lan.exchange_time(bytes, rounds.max(1))
    }

    /// The first slot boundary (in whole seconds) strictly after instant
    /// `at` — when a transaction in the mempool at `at` can first be mined.
    pub fn next_slot_secs(&self, at: SimInstant) -> u64 {
        let block_time = self.chain.config().block_time;
        (at.0 / 1_000_000 / block_time + 1) * block_time
    }

    // ------------------------------------------------------------------
    // Non-blocking substrate steps (event-driven path).
    // ------------------------------------------------------------------

    /// Signs and broadcasts a transaction into the mempool — the
    /// non-blocking half of [`World::send_and_confirm`]. No virtual time is
    /// charged and no block is mined; the caller decides when slots happen.
    pub fn submit_tx(
        &mut self,
        wallet: &Wallet,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<H256, WorldError> {
        Ok(wallet.send(&mut self.chain, from, to, value, data)?)
    }

    /// Advances the clock to the slot boundary at `slot_secs` and mines the
    /// block for that slot.
    pub fn mine_slot(&mut self, slot_secs: u64) -> Block {
        self.clock.advance_to(SimInstant(slot_secs * 1_000_000));
        self.chain.mine_block(slot_secs)
    }

    // ------------------------------------------------------------------
    // Serial path.
    // ------------------------------------------------------------------

    /// Blocks (in virtual time) until `hash` is mined, then charges one
    /// receipt poll and returns the receipt — the blocking half of
    /// [`World::send_and_confirm`].
    pub fn await_receipt(&mut self, hash: H256) -> Result<Receipt, WorldError> {
        self.mine_until(&[hash])?;
        self.clock.advance(self.receipt_poll_time());
        Ok(self
            .chain
            .receipt(&hash)
            .expect("mine_until guarantees receipt")
            .clone())
    }

    /// Submits a transaction via a wallet and blocks (in virtual time) until
    /// it is mined, driving 12-second slot production. Returns the receipt.
    pub fn send_and_confirm(
        &mut self,
        wallet: &Wallet,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<Receipt, WorldError> {
        // RPC submission (calldata rides along).
        self.clock.advance(self.tx_submit_time(data.len()));
        let hash = self.submit_tx(wallet, from, to, value, data)?;
        self.await_receipt(hash)
    }

    /// Advances slot by slot until every hash has a receipt, giving up with
    /// a typed [`WorldError::ConfirmationTimeout`] after
    /// [`ChainConfig::max_wait_slots`] slots.
    pub fn mine_until(&mut self, hashes: &[H256]) -> Result<(), WorldError> {
        let max_wait_slots = self.chain.config().max_wait_slots;
        let mut slots_mined = 0u64;
        for _ in 0..max_wait_slots {
            if hashes.iter().all(|h| self.chain.receipt(h).is_some()) {
                return Ok(());
            }
            let slot = self.next_slot_secs(self.clock.now());
            self.mine_slot(slot);
            slots_mined += 1;
        }
        if hashes.iter().all(|h| self.chain.receipt(h).is_some()) {
            return Ok(());
        }
        let pending: Vec<H256> = hashes
            .iter()
            .filter(|h| self.chain.receipt(h).is_none())
            .cloned()
            .collect();
        // Distinguish "still queued" from "silently evicted": a vanished
        // transaction will never confirm no matter how long we wait.
        if let Some(dropped) = pending.iter().find(|h| !self.chain.is_pending(h)) {
            return Err(WorldError::TxDropped(*dropped));
        }
        Err(WorldError::ConfirmationTimeout {
            slots_mined,
            pending,
        })
    }

    /// A free read (`eth_call`-style) with RPC latency charged.
    pub fn read_call(
        &mut self,
        from: &H160,
        to: &H160,
        data: Vec<u8>,
    ) -> ofl_eth::chain::CallResult {
        let data_len = data.len();
        let result = self.chain.call(from, to, data);
        self.clock
            .advance(self.read_call_time(data_len, result.output.len()));
        result
    }

    /// Charges IPFS transfer time for `bytes` moved in `rounds` exchanges
    /// over the LAN.
    pub fn charge_ipfs_transfer(&mut self, bytes: u64, rounds: usize) {
        let t = self.ipfs_transfer_time(bytes, rounds);
        self.clock.advance(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_eth::tx::{sign_tx, TxRequest};
    use ofl_primitives::wei_per_eth;

    #[test]
    fn send_and_confirm_waits_for_slot() {
        let wallet = Wallet::from_seed("world-test", 2);
        let addrs = wallet.addresses();
        let world_genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(
            ChainConfig::default(),
            &world_genesis,
            NetworkProfile::campus(),
        );
        let receipt = world
            .send_and_confirm(&wallet, &addrs[0], Some(addrs[1]), U256::from(5u64), vec![])
            .unwrap();
        assert!(receipt.is_success());
        // Must have waited at least until the first 12 s slot.
        assert!(world.clock.elapsed_secs() >= 12.0);
        assert!(world.clock.elapsed_secs() < 25.0);
        assert_eq!(world.chain.height(), 1);
    }

    #[test]
    fn sequential_txs_land_in_sequential_slots() {
        let wallet = Wallet::from_seed("world-test-2", 2);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(ChainConfig::default(), &genesis, NetworkProfile::campus());
        let r1 = world
            .send_and_confirm(&wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        let r2 = world
            .send_and_confirm(&wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        assert!(r2.block_number > r1.block_number);
        assert!(world.clock.elapsed_secs() >= 24.0);
    }

    #[test]
    fn submit_tx_is_non_blocking_and_shares_blocks() {
        // Two senders submit before any slot boundary: one mined block
        // carries both — the contention the serial path could never create.
        let wallet = Wallet::from_seed("world-test-4", 2);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(ChainConfig::default(), &genesis, NetworkProfile::campus());
        let h1 = world
            .submit_tx(&wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        let h2 = world
            .submit_tx(&wallet, &addrs[1], Some(addrs[0]), U256::ONE, vec![])
            .unwrap();
        assert_eq!(world.clock.elapsed_secs(), 0.0, "submission never blocks");
        assert_eq!(world.chain.mempool_len(), 2);
        let slot = world.next_slot_secs(world.clock.now());
        let block = world.mine_slot(slot);
        assert_eq!(block.tx_hashes.len(), 2);
        assert!(world.chain.receipt(&h1).is_some());
        assert!(world.chain.receipt(&h2).is_some());
    }

    #[test]
    fn mine_until_timeout_is_typed_and_configurable() {
        let wallet = Wallet::from_seed("world-test-5", 1);
        let a = wallet.addresses()[0];
        let config = ChainConfig {
            max_wait_slots: 3,
            ..ChainConfig::default()
        };
        let mut world = World::new(config, &[(a, wei_per_eth())], NetworkProfile::campus());
        // A future-nonce transaction can never be mined on its own.
        let key = wallet.account(&a).unwrap().private_key;
        let req = TxRequest {
            chain_id: world.chain.config().chain_id,
            nonce: 5,
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(40_000_000_000u64),
            gas_limit: 21_000,
            to: Some(H160::from_slice(&[9; 20])),
            value: U256::ONE,
            data: Vec::new(),
        };
        let hash = world.chain.submit(sign_tx(req, &key).unwrap()).unwrap();
        match world.mine_until(&[hash]) {
            Err(WorldError::ConfirmationTimeout {
                slots_mined,
                pending,
            }) => {
                assert_eq!(slots_mined, 3);
                assert_eq!(pending, vec![hash]);
            }
            other => panic!("expected ConfirmationTimeout, got {other:?}"),
        }
        assert_eq!(world.chain.height(), 3);
    }

    #[test]
    fn next_slot_is_strictly_after() {
        let wallet = Wallet::from_seed("world-test-6", 1);
        let a = wallet.addresses()[0];
        let world = World::new(
            ChainConfig::default(),
            &[(a, wei_per_eth())],
            NetworkProfile::campus(),
        );
        assert_eq!(world.next_slot_secs(SimInstant(0)), 12);
        assert_eq!(world.next_slot_secs(SimInstant(11_999_999)), 12);
        assert_eq!(world.next_slot_secs(SimInstant(12_000_000)), 24);
    }

    #[test]
    fn read_call_costs_time_but_no_gas() {
        let wallet = Wallet::from_seed("world-test-3", 1);
        let a = wallet.addresses()[0];
        let mut world = World::new(
            ChainConfig::default(),
            &[(a, wei_per_eth())],
            NetworkProfile::campus(),
        );
        let before_balance = world.chain.balance(&a);
        let before_time = world.clock.elapsed_secs();
        world.read_call(&a, &H160::from_slice(&[7; 20]), vec![]);
        assert_eq!(world.chain.balance(&a), before_balance);
        assert!(world.clock.elapsed_secs() > before_time);
    }
}
