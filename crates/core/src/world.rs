//! The simulated Web 3.0 world: one virtual clock, one network profile,
//! and a **provider stack** fronting the blockchain and the IPFS swarm.
//!
//! Since the node-API redesign, core never touches `Chain`/`Swarm` structs
//! for client traffic: every contract call, transaction broadcast, receipt
//! poll, log query, and IPFS transfer goes through the
//! [`EthApi`](ofl_rpc::EthApi)/[`IpfsApi`](ofl_rpc::IpfsApi) traits of an
//! [`ofl_rpc::NodeProvider`] — by default `Metered(Latency(Sim))`, with a
//! seeded [`FlakyProvider`](ofl_rpc::FlakyProvider) spliced in when
//! [`FaultProfile`] faults are configured. Decorators *price* virtual time
//! into each response; the world (or the event engine, onto per-owner
//! timelines) charges the bill.
//!
//! Backstage simulation work — mining slots, conservation checks, failure
//! injection — reaches the backend through [`World::chain`] /
//! [`World::swarm_mut`]: those are the simulator's hands, not the client's.
//!
//! Block production is clock-driven: transactions wait in the mempool until
//! the next 12-second slot boundary, which is where the paper's Fig 7
//! "blockchain interactions dominate" observation comes from.
//!
//! Two ways to drive it:
//!
//! - **Serial** ([`World::send_and_confirm`]): submit, then block (in
//!   virtual time) until mined — one participant at a time.
//! - **Event-driven** ([`World::submit_tx`] / [`World::await_receipt`] plus
//!   the slot helpers): submission and confirmation are separate steps, so
//!   the session engine in `ofl_core::engine` can let many owners' (and
//!   many markets') transactions land in the mempool together and get mined
//!   into *shared* blocks at slot boundaries.

use ofl_eth::block::{Block, Receipt};
use ofl_eth::chain::{CallResult, Chain, ChainConfig};
use ofl_eth::wallet::{Wallet, WalletError};
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::{AddResult, FetchStats, Swarm};
use ofl_netsim::clock::{SimClock, SimDuration, SimInstant};
use ofl_netsim::link::NetworkProfile;
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};
use ofl_rpc::{
    build_provider, Billed, FaultProfile, NodeProvider, ProviderMetrics, Retryable, RpcError,
    RpcMethod, RpcRequest, RpcResult,
};

/// Errors surfaced by world operations.
#[derive(Debug)]
pub enum WorldError {
    /// Wallet/signing rejection.
    Wallet(WalletError),
    /// The provider gave up on a request (rejection, or retries exhausted
    /// against a flaky endpoint).
    Rpc(RpcError),
    /// A transaction was dropped from the mempool without a receipt.
    TxDropped(H256),
    /// A confirmation wait exhausted [`ChainConfig::max_wait_slots`].
    ConfirmationTimeout {
        /// Slots mined while waiting.
        slots_mined: u64,
        /// Hashes still without a receipt when the wait gave up.
        pending: Vec<H256>,
    },
    /// IPFS failure.
    Ipfs(ofl_ipfs::swarm::IpfsError),
}

impl From<WalletError> for WorldError {
    fn from(e: WalletError) -> Self {
        WorldError::Wallet(e)
    }
}

impl From<ofl_ipfs::swarm::IpfsError> for WorldError {
    fn from(e: ofl_ipfs::swarm::IpfsError) -> Self {
        WorldError::Ipfs(e)
    }
}

impl core::fmt::Display for WorldError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorldError::Wallet(e) => write!(f, "wallet: {e}"),
            WorldError::Rpc(e) => write!(f, "rpc: {e}"),
            WorldError::TxDropped(h) => write!(f, "transaction {h} dropped without receipt"),
            WorldError::ConfirmationTimeout {
                slots_mined,
                pending,
            } => {
                write!(
                    f,
                    "confirmation wait gave up after mining {slots_mined} slots; still pending:"
                )?;
                for h in pending {
                    write!(f, " {h}")?;
                }
                Ok(())
            }
            WorldError::Ipfs(e) => write!(f, "ipfs: {e}"),
        }
    }
}

impl std::error::Error for WorldError {}

/// The shared substrate every participant interacts with.
pub struct World {
    /// Virtual time.
    pub clock: SimClock,
    /// The provider stack fronting chain + swarm.
    provider: Box<dyn NodeProvider>,
    /// Link models.
    pub profile: NetworkProfile,
    /// Approximate wire size of a request envelope (for RPC timing).
    pub tx_wire_bytes: u64,
    /// How many times a transient (timed-out) request is retried before the
    /// world gives up with [`WorldError::Rpc`].
    pub max_rpc_retries: u32,
    /// Whether receipt polls for many hashes ride one batched round trip
    /// (the default) or one request each — the knob the engine bench sweeps.
    pub batch_receipt_polls: bool,
}

impl World {
    /// Builds a world with genesis balances and a clean provider.
    pub fn new(
        chain_config: ChainConfig,
        genesis: &[(H160, U256)],
        profile: NetworkProfile,
    ) -> World {
        World::with_faults(chain_config, genesis, profile, None)
    }

    /// Builds a world whose provider stack injects the given RPC faults
    /// (`None` = reliable endpoint).
    pub fn with_faults(
        chain_config: ChainConfig,
        genesis: &[(H160, U256)],
        profile: NetworkProfile,
        faults: Option<FaultProfile>,
    ) -> World {
        let tx_wire_bytes = 250;
        let provider = build_provider(
            Chain::new(chain_config, genesis),
            Swarm::new(),
            profile,
            tx_wire_bytes,
            faults,
        );
        World {
            clock: SimClock::new(),
            provider,
            profile,
            tx_wire_bytes,
            max_rpc_retries: 6,
            batch_receipt_polls: true,
        }
    }

    // ------------------------------------------------------------------
    // Provider access.
    // ------------------------------------------------------------------

    /// The provider stack — what typed contract bindings dispatch through.
    pub fn eth(&mut self) -> &mut dyn NodeProvider {
        &mut *self.provider
    }

    /// Backstage chain access (mining, invariants) — not client traffic.
    pub fn chain(&self) -> &Chain {
        self.provider.chain()
    }

    /// Mutable backstage chain access (slot production, faucets).
    pub fn chain_mut(&mut self) -> &mut Chain {
        self.provider.chain_mut()
    }

    /// Backstage swarm access (availability checks).
    pub fn swarm(&self) -> &Swarm {
        self.provider.swarm()
    }

    /// Mutable backstage swarm access (node spawning, failure injection).
    pub fn swarm_mut(&mut self) -> &mut Swarm {
        self.provider.swarm_mut()
    }

    /// Per-method call counts and virtual-time totals the metering
    /// decorator has observed so far.
    pub fn rpc_metrics(&self) -> ProviderMetrics {
        self.provider.metrics().unwrap_or_default()
    }

    /// Runs one provider operation with transient-failure retries, summing
    /// every attempt's cost. The caller charges the returned duration to
    /// its clock or timeline.
    pub fn eth_retry<T, E: Retryable>(
        &mut self,
        mut op: impl FnMut(&mut dyn NodeProvider) -> Billed<Result<T, E>>,
    ) -> (Result<T, E>, SimDuration) {
        let mut total = SimDuration::ZERO;
        let mut attempt = 0u32;
        loop {
            let Billed { value, cost } = op(&mut *self.provider);
            total = total.saturating_add(cost);
            match value {
                Err(e) if e.is_transient() && attempt < self.max_rpc_retries => {
                    attempt += 1;
                }
                other => return (other, total),
            }
        }
    }

    // ------------------------------------------------------------------
    // Pure timing queries (no clock movement) — what the event engine
    // schedules with.
    // ------------------------------------------------------------------

    /// RPC time to broadcast a signed transaction carrying `data_len` bytes
    /// of calldata.
    pub fn tx_submit_time(&self, data_len: usize) -> SimDuration {
        self.profile
            .rpc
            .transfer_time(self.tx_wire_bytes + data_len as u64)
    }

    /// The first slot boundary (in whole seconds) strictly after instant
    /// `at` — when a transaction in the mempool at `at` can first be mined.
    pub fn next_slot_secs(&self, at: SimInstant) -> u64 {
        let block_time = self.chain().config().block_time;
        (at.0 / 1_000_000 / block_time + 1) * block_time
    }

    // ------------------------------------------------------------------
    // Non-blocking substrate steps (event-driven path).
    // ------------------------------------------------------------------

    /// Signs a transaction and broadcasts it through the provider
    /// (`eth_sendRawTransaction`) — the non-blocking half of
    /// [`World::send_and_confirm`]. A first-attempt success charges no
    /// virtual time (the caller schedules the broadcast cost); transient
    /// provider timeouts are retried, and *those* wasted round trips are
    /// charged to the global clock before the resend.
    pub fn submit_tx(
        &mut self,
        wallet: &Wallet,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<H256, WorldError> {
        let raw = wallet.sign_raw(self.provider.chain(), from, to, value, data)?;
        let mut attempt = 0u32;
        loop {
            let Billed { value, cost } = self.provider.send_raw_transaction(&raw);
            match value {
                // The successful broadcast itself is never charged here —
                // the caller prices it (serial: `tx_submit_time`; engine:
                // the owner's timeline); only wasted attempts cost extra.
                Ok(hash) => return Ok(hash),
                Err(e) if e.is_transient() && attempt < self.max_rpc_retries => {
                    self.clock.advance(cost);
                    attempt += 1;
                }
                Err(e) => return Err(WorldError::Rpc(e)),
            }
        }
    }

    /// Broadcasts an already-signed raw transaction through the provider
    /// (`eth_sendRawTransaction`), retrying transient failures. Returns the
    /// outcome and the summed cost of every attempt — the caller charges it.
    pub fn broadcast_raw(&mut self, raw: &[u8]) -> (Result<H256, RpcError>, SimDuration) {
        let owned = raw.to_vec();
        self.eth_retry(|eth| eth.send_raw_transaction(&owned))
    }

    /// Polls receipts for `hashes` — one batched round trip when
    /// [`World::batch_receipt_polls`] is set (N polls, one wire exchange),
    /// else one request per hash. Timed-out entries come back `None`, to be
    /// re-polled after the next slot. The caller charges the cost.
    pub fn poll_receipts(&mut self, hashes: &[H256]) -> Billed<Vec<Option<Receipt>>> {
        if hashes.is_empty() {
            return Billed::free(Vec::new());
        }
        if self.batch_receipt_polls {
            let requests: Vec<RpcRequest> = hashes
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    RpcRequest::new(i as u64, RpcMethod::GetTransactionReceipt { hash: *h })
                })
                .collect();
            let responses = self.provider.batch(&requests);
            let cost = responses
                .iter()
                .fold(SimDuration::ZERO, |acc, r| acc.saturating_add(r.cost));
            let value = responses
                .into_iter()
                .map(|r| match r.result {
                    Ok(RpcResult::Receipt(receipt)) => receipt,
                    _ => None,
                })
                .collect();
            Billed { value, cost }
        } else {
            let mut cost = SimDuration::ZERO;
            let mut value = Vec::with_capacity(hashes.len());
            for hash in hashes {
                let billed = self.provider.get_transaction_receipt(*hash);
                cost = cost.saturating_add(billed.cost);
                value.push(billed.value.ok().flatten());
            }
            Billed { value, cost }
        }
    }

    /// Advances the clock to the slot boundary at `slot_secs` and mines the
    /// block for that slot (backstage: the network produces blocks whether
    /// or not any client is watching).
    pub fn mine_slot(&mut self, slot_secs: u64) -> Block {
        self.clock.advance_to(SimInstant(slot_secs * 1_000_000));
        self.provider.chain_mut().mine_block(slot_secs)
    }

    // ------------------------------------------------------------------
    // Serial path.
    // ------------------------------------------------------------------

    /// Blocks (in virtual time) until `hash` is mined, then charges one
    /// receipt poll and returns the receipt — the blocking half of
    /// [`World::send_and_confirm`].
    pub fn await_receipt(&mut self, hash: H256) -> Result<Receipt, WorldError> {
        self.mine_until(&[hash])?;
        let (result, cost) = self.eth_retry(|eth| eth.get_transaction_receipt(hash));
        self.clock.advance(cost);
        match result {
            Ok(Some(receipt)) => Ok(receipt),
            Ok(None) => Err(WorldError::TxDropped(hash)),
            Err(e) => Err(WorldError::Rpc(e)),
        }
    }

    /// Submits a transaction via a wallet and blocks (in virtual time) until
    /// it is mined, driving 12-second slot production. Returns the receipt.
    pub fn send_and_confirm(
        &mut self,
        wallet: &Wallet,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<Receipt, WorldError> {
        // RPC submission (calldata rides along).
        self.clock.advance(self.tx_submit_time(data.len()));
        let hash = self.submit_tx(wallet, from, to, value, data)?;
        self.await_receipt(hash)
    }

    /// Advances slot by slot until every hash has a receipt, giving up with
    /// a typed [`WorldError::ConfirmationTimeout`] after
    /// [`ChainConfig::max_wait_slots`] slots. Each wait polls the provider
    /// once per slot (batched when several hashes are pending).
    pub fn mine_until(&mut self, hashes: &[H256]) -> Result<(), WorldError> {
        let max_wait_slots = self.chain().config().max_wait_slots;
        let mut slots_mined = 0u64;
        loop {
            let Billed {
                value: receipts,
                cost,
            } = self.poll_receipts(hashes);
            self.clock.advance(cost);
            if receipts.iter().all(Option::is_some) {
                return Ok(());
            }
            if slots_mined >= max_wait_slots {
                break;
            }
            let slot = self.next_slot_secs(self.clock.now());
            self.mine_slot(slot);
            slots_mined += 1;
        }
        // A final backstage check: flaky polls can miss receipts that are
        // actually there.
        let pending: Vec<H256> = hashes
            .iter()
            .filter(|h| self.chain().receipt(h).is_none())
            .cloned()
            .collect();
        if pending.is_empty() {
            return Ok(());
        }
        // Distinguish "still queued" from "silently evicted": a vanished
        // transaction will never confirm no matter how long we wait.
        if let Some(dropped) = pending.iter().find(|h| !self.chain().is_pending(h)) {
            return Err(WorldError::TxDropped(*dropped));
        }
        Err(WorldError::ConfirmationTimeout {
            slots_mined,
            pending,
        })
    }

    /// A free read (`eth_call`-style) through the provider, with the priced
    /// RPC cost charged to the global clock and transient failures retried.
    pub fn read_call(
        &mut self,
        from: &H160,
        to: &H160,
        data: Vec<u8>,
    ) -> Result<CallResult, WorldError> {
        let (result, cost) = self.eth_retry(|eth| eth.call(from, to, data.clone()));
        self.clock.advance(cost);
        result.map_err(WorldError::Rpc)
    }

    // ------------------------------------------------------------------
    // IPFS traffic (also provider-priced; the caller charges the bill).
    // ------------------------------------------------------------------

    /// `ipfs add` on `node`: stores + pins, returns the root CID and the
    /// priced LAN transfer time.
    pub fn ipfs_add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        self.provider.add(node, data)
    }

    /// `ipfs cat` on `node`: bitswaps the DAG under `cid` and returns the
    /// bytes, transfer stats, and priced LAN time.
    pub fn ipfs_cat(
        &mut self,
        node: usize,
        cid: &Cid,
    ) -> Billed<Result<(Vec<u8>, FetchStats), ofl_ipfs::swarm::IpfsError>> {
        self.provider.cat(node, cid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_eth::tx::{sign_tx, TxRequest};
    use ofl_primitives::wei_per_eth;

    #[test]
    fn send_and_confirm_waits_for_slot() {
        let wallet = Wallet::from_seed("world-test", 2);
        let addrs = wallet.addresses();
        let world_genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(
            ChainConfig::default(),
            &world_genesis,
            NetworkProfile::campus(),
        );
        let receipt = world
            .send_and_confirm(&wallet, &addrs[0], Some(addrs[1]), U256::from(5u64), vec![])
            .unwrap();
        assert!(receipt.is_success());
        // Must have waited at least until the first 12 s slot.
        assert!(world.clock.elapsed_secs() >= 12.0);
        assert!(world.clock.elapsed_secs() < 25.0);
        assert_eq!(world.chain().height(), 1);
    }

    #[test]
    fn sequential_txs_land_in_sequential_slots() {
        let wallet = Wallet::from_seed("world-test-2", 2);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(ChainConfig::default(), &genesis, NetworkProfile::campus());
        let r1 = world
            .send_and_confirm(&wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        let r2 = world
            .send_and_confirm(&wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        assert!(r2.block_number > r1.block_number);
        assert!(world.clock.elapsed_secs() >= 24.0);
    }

    #[test]
    fn submit_tx_is_non_blocking_and_shares_blocks() {
        // Two senders submit before any slot boundary: one mined block
        // carries both — the contention the serial path could never create.
        let wallet = Wallet::from_seed("world-test-4", 2);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(ChainConfig::default(), &genesis, NetworkProfile::campus());
        let h1 = world
            .submit_tx(&wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        let h2 = world
            .submit_tx(&wallet, &addrs[1], Some(addrs[0]), U256::ONE, vec![])
            .unwrap();
        assert_eq!(world.clock.elapsed_secs(), 0.0, "submission never blocks");
        assert_eq!(world.chain().mempool_len(), 2);
        let slot = world.next_slot_secs(world.clock.now());
        let block = world.mine_slot(slot);
        assert_eq!(block.tx_hashes.len(), 2);
        assert!(world.chain().receipt(&h1).is_some());
        assert!(world.chain().receipt(&h2).is_some());
    }

    #[test]
    fn mine_until_timeout_is_typed_and_configurable() {
        let wallet = Wallet::from_seed("world-test-5", 1);
        let a = wallet.addresses()[0];
        let config = ChainConfig {
            max_wait_slots: 3,
            ..ChainConfig::default()
        };
        let mut world = World::new(config, &[(a, wei_per_eth())], NetworkProfile::campus());
        // A future-nonce transaction can never be mined on its own.
        let key = wallet.account(&a).unwrap().private_key;
        let req = TxRequest {
            chain_id: world.chain().config().chain_id,
            nonce: 5,
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(40_000_000_000u64),
            gas_limit: 21_000,
            to: Some(H160::from_slice(&[9; 20])),
            value: U256::ONE,
            data: Vec::new(),
        };
        let hash = world
            .chain_mut()
            .submit(sign_tx(req, &key).unwrap())
            .unwrap();
        match world.mine_until(&[hash]) {
            Err(WorldError::ConfirmationTimeout {
                slots_mined,
                pending,
            }) => {
                assert_eq!(slots_mined, 3);
                assert_eq!(pending, vec![hash]);
            }
            other => panic!("expected ConfirmationTimeout, got {other:?}"),
        }
        assert_eq!(world.chain().height(), 3);
    }

    #[test]
    fn next_slot_is_strictly_after() {
        let wallet = Wallet::from_seed("world-test-6", 1);
        let a = wallet.addresses()[0];
        let world = World::new(
            ChainConfig::default(),
            &[(a, wei_per_eth())],
            NetworkProfile::campus(),
        );
        assert_eq!(world.next_slot_secs(SimInstant(0)), 12);
        assert_eq!(world.next_slot_secs(SimInstant(11_999_999)), 12);
        assert_eq!(world.next_slot_secs(SimInstant(12_000_000)), 24);
    }

    #[test]
    fn read_call_costs_time_but_no_gas() {
        let wallet = Wallet::from_seed("world-test-3", 1);
        let a = wallet.addresses()[0];
        let mut world = World::new(
            ChainConfig::default(),
            &[(a, wei_per_eth())],
            NetworkProfile::campus(),
        );
        let before_balance = world.chain().balance(&a);
        let before_time = world.clock.elapsed_secs();
        world
            .read_call(&a, &H160::from_slice(&[7; 20]), vec![])
            .unwrap();
        assert_eq!(world.chain().balance(&a), before_balance);
        assert!(world.clock.elapsed_secs() > before_time);
    }

    #[test]
    fn flaky_world_retries_and_charges_the_wasted_round_trips() {
        // A 60% drop rate forces visible retries; the session must still
        // complete, just later in virtual time than the clean run.
        let run = |faults: Option<FaultProfile>| {
            let wallet = Wallet::from_seed("world-flaky", 2);
            let addrs = wallet.addresses();
            let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
            let mut world = World::with_faults(
                ChainConfig::default(),
                &genesis,
                NetworkProfile::campus(),
                faults,
            );
            world
                .send_and_confirm(&wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
                .unwrap();
            (world.clock.elapsed_secs(), world.rpc_metrics())
        };
        let (clean_secs, clean_metrics) = run(None);
        let (flaky_secs, flaky_metrics) = run(Some(FaultProfile::new(9, 0.6)));
        assert_eq!(clean_metrics.total_errors(), 0);
        assert!(flaky_metrics.total_errors() > 0, "60% drops must be seen");
        // Timeouts waste retried round trips and priced virtual time. (The
        // *elapsed* clock may tie with the clean run when the retries fit
        // inside the slot wait the sender was paying anyway.)
        assert!(flaky_metrics.round_trips > clean_metrics.round_trips);
        assert!(flaky_metrics.total_cost() > clean_metrics.total_cost());
        assert!(flaky_secs >= clean_secs);
        // Determinism: the same fault seed reproduces the exact timing.
        let (again_secs, again_metrics) = run(Some(FaultProfile::new(9, 0.6)));
        assert_eq!(flaky_secs, again_secs);
        assert_eq!(flaky_metrics, again_metrics);
    }

    #[test]
    fn receipt_polls_batch_into_one_round_trip() {
        let wallet = Wallet::from_seed("world-batch", 4);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(ChainConfig::default(), &genesis, NetworkProfile::campus());
        let hashes: Vec<H256> = (0..4)
            .map(|i| {
                world
                    .submit_tx(
                        &wallet,
                        &addrs[i],
                        Some(addrs[(i + 1) % 4]),
                        U256::ONE,
                        vec![],
                    )
                    .unwrap()
            })
            .collect();
        world.mine_slot(12);
        let before = world.rpc_metrics().round_trips;
        let batched = world.poll_receipts(&hashes);
        assert!(batched.value.iter().all(Option::is_some));
        assert_eq!(world.rpc_metrics().round_trips, before + 1);

        world.batch_receipt_polls = false;
        let per_call = world.poll_receipts(&hashes);
        assert_eq!(world.rpc_metrics().round_trips, before + 1 + 4);
        // The batched bill is far cheaper than four separate round trips.
        assert!(batched.cost.as_secs_f64() * 2.0 < per_call.cost.as_secs_f64());
    }
}
