//! The simulated Web 3.0 world: one virtual clock, one network profile,
//! and a **provider pool** fronting N blockchain shards and their IPFS
//! swarms.
//!
//! Since the pool redesign, a world no longer owns "the" chain: it owns an
//! [`ofl_rpc::ProviderPool`] of [`EndpointId`]-addressed endpoints, each a
//! full decorator stack (`Metered(Latency(…(Sim)))`, with seeded
//! [`FlakyProvider`](ofl_rpc::FlakyProvider) /
//! [`RateLimitProvider`](ofl_rpc::RateLimitProvider) layers spliced in when
//! a [`ShardSpec`] configures them). Markets are *placed* on an endpoint,
//! and every piece of client traffic — contract calls, transaction
//! broadcasts, receipt polls, log queries, IPFS transfers, and since this
//! redesign the **wallet's signing reads** (`eth_chainId`,
//! `eth_getTransactionCount`, `eth_estimateGas`, `eth_gasPrice`, fetched as
//! one batch) — flows through the market's endpoint, priced and
//! fault-injectable like everything else. Decorators *price* virtual time
//! into each response; the world (or the event engine, onto per-owner
//! timelines) charges the bill.
//!
//! Backstage simulation work — mining slots, conservation checks, failure
//! injection — reaches a shard's backend through [`World::chain`] /
//! [`World::swarm_mut`]: those are the simulator's hands, not the client's.
//!
//! Block production is clock-driven and happens on **every** shard:
//! transactions wait in their shard's mempool until the next 12-second
//! slot boundary, which is where the paper's Fig 7 "blockchain
//! interactions dominate" observation comes from.
//!
//! Two ways to drive it:
//!
//! - **Serial** ([`World::send_and_confirm`]): submit, then block (in
//!   virtual time) until mined — one participant at a time.
//! - **Event-driven** ([`World::submit_tx`] / [`World::await_receipt`] plus
//!   the slot helpers): submission and confirmation are separate steps, so
//!   the session engine in `ofl_core::engine` can let many owners' (and
//!   many markets') transactions land in their shard's mempool together
//!   and get mined into *shared* blocks at slot boundaries — or, with
//!   markets placed on different shards, into different chains' blocks.

use ofl_eth::block::{Block, Receipt};
use ofl_eth::chain::{CallResult, Chain, ChainConfig};
use ofl_eth::wallet::{TxEnv, Wallet, WalletError};
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::{AddResult, FetchStats, Swarm};
use ofl_netsim::clock::{SimClock, SimDuration, SimInstant};
use ofl_netsim::link::NetworkProfile;
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};
use ofl_rpc::{
    build_provider, match_to_requests, provision_socket_provider, BackstageOp, Billed,
    EndpointFaults, EndpointId, FaultProfile, NodeProvider, ProviderMetrics, ProviderPool,
    RateLimitProfile, RemoteEndpoint, ReorderProfile, Retryable, RpcError, RpcMethod, RpcRequest,
    RpcResponse, RpcResult, SpikeProfile, StaleProfile, SubLagProfile,
};
use ofl_rpc::{Notification, SubscriptionKind};
use std::collections::BTreeMap;

/// Errors surfaced by world operations.
#[derive(Debug)]
pub enum WorldError {
    /// Wallet/signing rejection.
    Wallet(WalletError),
    /// The provider gave up on a request (rejection, or retries exhausted
    /// against a flaky or throttling endpoint).
    Rpc(RpcError),
    /// A transaction was dropped from the mempool without a receipt.
    TxDropped(H256),
    /// A confirmation wait exhausted [`ChainConfig::max_wait_slots`].
    ConfirmationTimeout {
        /// Slots mined while waiting.
        slots_mined: u64,
        /// Hashes still without a receipt when the wait gave up.
        pending: Vec<H256>,
    },
    /// IPFS failure.
    Ipfs(ofl_ipfs::swarm::IpfsError),
}

impl From<WalletError> for WorldError {
    fn from(e: WalletError) -> Self {
        WorldError::Wallet(e)
    }
}

impl From<ofl_ipfs::swarm::IpfsError> for WorldError {
    fn from(e: ofl_ipfs::swarm::IpfsError) -> Self {
        WorldError::Ipfs(e)
    }
}

impl core::fmt::Display for WorldError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorldError::Wallet(e) => write!(f, "wallet: {e}"),
            WorldError::Rpc(e) => write!(f, "rpc: {e}"),
            WorldError::TxDropped(h) => write!(f, "transaction {h} dropped without receipt"),
            WorldError::ConfirmationTimeout {
                slots_mined,
                pending,
            } => {
                write!(
                    f,
                    "confirmation wait gave up after mining {slots_mined} slots; still pending:"
                )?;
                for h in pending {
                    write!(f, " {h}")?;
                }
                Ok(())
            }
            WorldError::Ipfs(e) => write!(f, "ipfs: {e}"),
        }
    }
}

impl std::error::Error for WorldError {}

/// Everything one shard needs to come up: chain parameters, genesis
/// balances, and the endpoint's fault/quota/staleness decorators.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Chain parameters (all shards of one world must share `block_time`,
    /// so slot boundaries line up).
    pub chain: ChainConfig,
    /// Genesis balances funded on this shard.
    pub genesis: Vec<(H160, U256)>,
    /// Seeded RPC fault injection for this endpoint (`None` = reliable).
    pub faults: Option<FaultProfile>,
    /// Seeded per-slot request quota for this endpoint (`None` = no 429s).
    pub rate_limit: Option<RateLimitProfile>,
    /// Seeded lagging-replica reads for this endpoint (`None` = always
    /// fresh).
    pub stale: Option<StaleProfile>,
    /// Seeded slot-long latency spikes for this endpoint (`None` = steady).
    pub spike: Option<SpikeProfile>,
    /// Seeded shuffling of this endpoint's batch replies (`None` = in
    /// order).
    pub reorder: Option<ReorderProfile>,
    /// Seeded per-subscription push-delivery lag (`None` = pushes land at
    /// the slot boundary that produced them).
    pub sub_lag: Option<SubLagProfile>,
}

impl ShardConfig {
    /// A reliable shard with the given parameters and funding.
    pub fn new(chain: ChainConfig, genesis: Vec<(H160, U256)>) -> ShardConfig {
        ShardConfig {
            chain,
            genesis,
            faults: None,
            rate_limit: None,
            stale: None,
            spike: None,
            reorder: None,
            sub_lag: None,
        }
    }

    /// The decorator knobs, in the shape the stack builders take.
    pub fn knobs(&self) -> EndpointFaults {
        EndpointFaults {
            faults: self.faults,
            rate_limit: self.rate_limit,
            stale: self.stale,
            spike: self.spike,
            reorder: self.reorder,
            sub_lag: self.sub_lag,
        }
    }
}

/// Where one shard of the pool runs: in this process, behind a socket to
/// an `rpcd` daemon, or as a pre-built provider stack handed in by the
/// caller (how tests mount the deterministic in-memory pipe).
pub enum ShardSpec {
    /// An in-process backend built from the config.
    Local(ShardConfig),
    /// An out-of-process backend: the world connects to the daemon at
    /// `endpoint`, provisions it with the config's chain + genesis, and
    /// wraps the socket in the same client-side decorator stack a local
    /// shard gets — so a remote shard prices, faults, and meters
    /// identically.
    Remote {
        /// Where the `rpcd` daemon listens.
        endpoint: RemoteEndpoint,
        /// Chain parameters, genesis, and decorator knobs.
        config: ShardConfig,
    },
    /// An already-built (and, if remote, already-provisioned) provider
    /// stack, mounted as-is.
    Mounted(Box<dyn NodeProvider>),
}

impl core::fmt::Debug for ShardSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShardSpec::Local(config) => f.debug_tuple("Local").field(config).finish(),
            ShardSpec::Remote { endpoint, config } => f
                .debug_struct("Remote")
                .field("endpoint", endpoint)
                .field("config", config)
                .finish(),
            ShardSpec::Mounted(_) => f.write_str("Mounted(<provider stack>)"),
        }
    }
}

impl ShardSpec {
    /// A reliable in-process shard with the given parameters and funding.
    pub fn new(chain: ChainConfig, genesis: Vec<(H160, U256)>) -> ShardSpec {
        ShardSpec::Local(ShardConfig::new(chain, genesis))
    }

    /// Converts an in-process spec into a remote mount of the same shard
    /// (same chain, genesis, and decorator knobs, served by the daemon at
    /// `endpoint`). A `Mounted` spec is returned unchanged.
    pub fn into_remote(self, endpoint: RemoteEndpoint) -> ShardSpec {
        match self {
            ShardSpec::Local(config) | ShardSpec::Remote { config, .. } => {
                ShardSpec::Remote { endpoint, config }
            }
            mounted @ ShardSpec::Mounted(_) => mounted,
        }
    }

    /// Builds this shard's endpoint stack.
    fn into_endpoint(self, profile: NetworkProfile, envelope_bytes: u64) -> Box<dyn NodeProvider> {
        match self {
            ShardSpec::Local(config) => build_provider(
                Chain::new(config.chain.clone(), &config.genesis),
                Swarm::new(),
                profile,
                envelope_bytes,
                config.knobs(),
            ),
            ShardSpec::Remote { endpoint, config } => {
                let transport = endpoint
                    .connect()
                    .unwrap_or_else(|e| panic!("cannot mount remote shard at {endpoint}: {e}"));
                let knobs = config.knobs();
                provision_socket_provider(
                    transport,
                    config.chain,
                    config.genesis,
                    profile,
                    envelope_bytes,
                    knobs,
                )
                .unwrap_or_else(|e| panic!("cannot provision remote shard at {endpoint}: {e}"))
            }
            ShardSpec::Mounted(provider) => provider,
        }
    }
}

/// The request-envelope wire size every world prices RPC traffic with —
/// exported so out-of-world endpoint builders (tests mounting pipe-backed
/// shards, benches) decorate their stacks identically.
pub const DEFAULT_TX_WIRE_BYTES: u64 = 250;

/// The shared substrate every participant interacts with.
pub struct World {
    /// Virtual time.
    pub clock: SimClock,
    /// The endpoint pool fronting every shard's chain + swarm.
    pool: ProviderPool,
    /// Each endpoint's chain parameters, fetched once at mount time via a
    /// backstage op (so a remote shard's config is its daemon's truth, not
    /// a local assumption).
    chain_configs: Vec<ChainConfig>,
    /// Link models.
    pub profile: NetworkProfile,
    /// Approximate wire size of a request envelope (for RPC timing).
    pub tx_wire_bytes: u64,
    /// How many times a transient (timed-out or rate-limited) request is
    /// retried before the world gives up with [`WorldError::Rpc`].
    pub max_rpc_retries: u32,
    /// Whether receipt polls for many hashes ride one batched round trip
    /// (the default) or one request each — the knob the engine bench sweeps.
    pub batch_receipt_polls: bool,
    /// Whether the buyer's step-5 CID download rides `cidCount` + one
    /// batched `getCid` round trip (the default) or one `eth_call` per
    /// index — the other knob the engine bench sweeps (Fig 7b path).
    pub batch_cid_reads: bool,
    /// Push notifications pumped out of every endpoint at slot boundaries,
    /// parked per `(endpoint, sub_id)` until a watcher takes them.
    inbox: BTreeMap<(EndpointId, u64), Vec<Notification>>,
}

impl World {
    /// Builds a single-shard world with genesis balances and a clean
    /// provider.
    pub fn new(
        chain_config: ChainConfig,
        genesis: &[(H160, U256)],
        profile: NetworkProfile,
    ) -> World {
        World::with_faults(chain_config, genesis, profile, None)
    }

    /// Builds a single-shard world whose endpoint injects the given RPC
    /// faults (`None` = reliable endpoint).
    pub fn with_faults(
        chain_config: ChainConfig,
        genesis: &[(H160, U256)],
        profile: NetworkProfile,
        faults: Option<FaultProfile>,
    ) -> World {
        World::from_shards(
            vec![ShardSpec::Local(ShardConfig {
                chain: chain_config,
                genesis: genesis.to_vec(),
                faults,
                rate_limit: None,
                stale: None,
                spike: None,
                reorder: None,
                sub_lag: None,
            })],
            profile,
        )
    }

    /// Builds a world from explicit shard specifications: one endpoint
    /// stack per spec, addressed by `EndpointId(i)` in spec order. Local
    /// shards come up in-process; [`ShardSpec::Remote`] shards are
    /// connected, provisioned, and wrapped in the identical client-side
    /// decorator stack, so the rest of the system cannot tell them apart.
    pub fn from_shards(shards: Vec<ShardSpec>, profile: NetworkProfile) -> World {
        assert!(!shards.is_empty(), "a world needs at least one shard");
        let tx_wire_bytes = DEFAULT_TX_WIRE_BYTES;
        let endpoints = shards
            .into_iter()
            .map(|spec| spec.into_endpoint(profile, tx_wire_bytes))
            .collect();
        World::from_endpoints(endpoints, profile)
    }

    /// Builds a world directly over pre-built endpoint stacks (however
    /// they are backed — in-process, socket, or pipe). Each endpoint's
    /// chain parameters are fetched through the backstage channel, and all
    /// endpoints must share the slot cadence.
    pub fn from_endpoints(endpoints: Vec<Box<dyn NodeProvider>>, profile: NetworkProfile) -> World {
        assert!(!endpoints.is_empty(), "a world needs at least one shard");
        let mut pool = ProviderPool::new(endpoints);
        let chain_configs: Vec<ChainConfig> = (0..pool.len())
            .map(|i| {
                pool.endpoint(EndpointId(i))
                    .backstage(&BackstageOp::Config)
                    .into_config()
            })
            .collect();
        let block_time = chain_configs[0].block_time;
        assert!(
            chain_configs.iter().all(|c| c.block_time == block_time),
            "all shards must share the slot cadence"
        );
        World {
            clock: SimClock::new(),
            pool,
            chain_configs,
            profile,
            tx_wire_bytes: DEFAULT_TX_WIRE_BYTES,
            max_rpc_retries: 6,
            batch_receipt_polls: true,
            batch_cid_reads: true,
            inbox: BTreeMap::new(),
        }
    }

    // ------------------------------------------------------------------
    // Provider access.
    // ------------------------------------------------------------------

    /// How many endpoints (shards) the world fronts.
    pub fn endpoints(&self) -> usize {
        self.pool.len()
    }

    /// One endpoint's provider stack — what typed contract bindings
    /// dispatch through.
    pub fn eth(&mut self, endpoint: EndpointId) -> &mut dyn NodeProvider {
        self.pool.endpoint(endpoint)
    }

    /// Direct backstage chain access for one shard — **in-process shards
    /// only** (a remote shard has no chain reference to give; this panics
    /// there). Simulation drivers use the wire-able backstage helpers
    /// below; this accessor remains for tests and local-only tooling.
    pub fn chain(&self, endpoint: EndpointId) -> &Chain {
        self.pool.get(endpoint).chain()
    }

    /// Mutable direct backstage chain access (in-process shards only).
    pub fn chain_mut(&mut self, endpoint: EndpointId) -> &mut Chain {
        self.pool.endpoint(endpoint).chain_mut()
    }

    /// Direct backstage swarm access (in-process shards only).
    pub fn swarm(&self, endpoint: EndpointId) -> &Swarm {
        self.pool.get(endpoint).swarm()
    }

    /// Mutable direct backstage swarm access (in-process shards only).
    pub fn swarm_mut(&mut self, endpoint: EndpointId) -> &mut Swarm {
        self.pool.endpoint(endpoint).swarm_mut()
    }

    // ------------------------------------------------------------------
    // Wire-able backstage operations — the simulator's hands on a shard's
    // infrastructure, which work identically for in-process and remote
    // endpoints (one frame round trip there, never client traffic).
    // ------------------------------------------------------------------

    /// One shard's chain parameters (cached from mount time — they are
    /// static for a chain's lifetime).
    pub fn chain_config(&self, endpoint: EndpointId) -> &ChainConfig {
        &self.chain_configs[endpoint.0]
    }

    /// Backstage chain height (the driver's truth, unaffected by stale or
    /// flaky client reads).
    pub fn height(&mut self, endpoint: EndpointId) -> u64 {
        self.pool
            .endpoint(endpoint)
            .backstage(&BackstageOp::Height)
            .into_u64()
    }

    /// Backstage mempool occupancy.
    pub fn mempool_len(&mut self, endpoint: EndpointId) -> usize {
        self.pool
            .endpoint(endpoint)
            .backstage(&BackstageOp::MempoolLen)
            .into_u64() as usize
    }

    /// Backstage receipt lookup — ground truth for "was it actually
    /// mined", where a client poll may be faulted or stale.
    pub fn receipt_of(&mut self, endpoint: EndpointId, hash: &H256) -> Option<Receipt> {
        self.pool
            .endpoint(endpoint)
            .backstage(&BackstageOp::ReceiptOf { hash: *hash })
            .into_receipt()
    }

    /// Backstage mempool membership — distinguishes "still queued" from
    /// "silently evicted".
    pub fn is_pending(&mut self, endpoint: EndpointId, hash: &H256) -> bool {
        self.pool
            .endpoint(endpoint)
            .backstage(&BackstageOp::IsPending { hash: *hash })
            .into_flag()
    }

    /// Backstage sum of all live balances (conservation checks).
    pub fn total_supply(&mut self, endpoint: EndpointId) -> U256 {
        self.pool
            .endpoint(endpoint)
            .backstage(&BackstageOp::TotalSupply)
            .into_wei()
    }

    /// Backstage EIP-1559 burn total (conservation checks).
    pub fn burned(&mut self, endpoint: EndpointId) -> U256 {
        self.pool
            .endpoint(endpoint)
            .backstage(&BackstageOp::Burned)
            .into_wei()
    }

    /// Backstage balance read (invariant checks, not client traffic).
    pub fn balance_of(&mut self, endpoint: EndpointId, address: &H160) -> U256 {
        self.pool
            .endpoint(endpoint)
            .backstage(&BackstageOp::BalanceOf { address: *address })
            .into_wei()
    }

    /// Spawns an IPFS node into one shard's swarm, returning its index —
    /// how sessions come up on a shard wherever it runs.
    pub fn spawn_ipfs_node(&mut self, endpoint: EndpointId, label: &str) -> usize {
        self.pool
            .endpoint(endpoint)
            .backstage(&BackstageOp::SpawnIpfsNode {
                label: label.to_string(),
            })
            .into_u64() as usize
    }

    /// Failure injection: unpin + garbage-collect `cid` on one node of the
    /// shard's swarm, so the content vanishes from that peer.
    pub fn drop_ipfs_block(&mut self, endpoint: EndpointId, node: usize, cid: &Cid) {
        self.pool
            .endpoint(endpoint)
            .backstage(&BackstageOp::DropIpfsBlock {
                node: node as u64,
                cid: cid.clone(),
            });
    }

    /// Whether *any* node of the shard's swarm can still serve `cid`.
    pub fn swarm_has(&mut self, endpoint: EndpointId, cid: &Cid) -> bool {
        self.pool
            .endpoint(endpoint)
            .backstage(&BackstageOp::SwarmHas { cid: cid.clone() })
            .into_flag()
    }

    /// One endpoint's metering snapshot: per-method call counts and
    /// virtual-time totals that endpoint's decorator stack observed.
    pub fn rpc_metrics(&self, endpoint: EndpointId) -> ProviderMetrics {
        self.pool.metrics(endpoint).unwrap_or_default()
    }

    /// Every endpoint's metering snapshot, in endpoint order.
    pub fn rpc_metrics_per_endpoint(&self) -> Vec<ProviderMetrics> {
        self.pool.metrics_per_endpoint()
    }

    /// All endpoints' metering rolled up into one run-level snapshot.
    pub fn rpc_metrics_merged(&self) -> ProviderMetrics {
        self.pool.metrics_merged()
    }

    /// Runs one provider operation against `endpoint` with
    /// transient-failure retries, summing every attempt's cost. The caller
    /// charges the returned duration to its clock or timeline.
    pub fn eth_retry<T, E: Retryable>(
        &mut self,
        endpoint: EndpointId,
        mut op: impl FnMut(&mut dyn NodeProvider) -> Billed<Result<T, E>>,
    ) -> (Result<T, E>, SimDuration) {
        let mut total = SimDuration::ZERO;
        let mut attempt = 0u32;
        loop {
            let Billed { value, cost } = op(self.pool.endpoint(endpoint));
            total = total.saturating_add(cost);
            match value {
                Err(e) if e.is_transient() && attempt < self.max_rpc_retries => {
                    attempt += 1;
                }
                other => return (other, total),
            }
        }
    }

    // ------------------------------------------------------------------
    // Pure timing queries (no clock movement) — what the event engine
    // schedules with.
    // ------------------------------------------------------------------

    /// RPC time to broadcast a signed transaction carrying `data_len` bytes
    /// of calldata.
    pub fn tx_submit_time(&self, data_len: usize) -> SimDuration {
        self.profile
            .rpc
            .transfer_time(self.tx_wire_bytes + data_len as u64)
    }

    /// The first slot boundary (in whole seconds) strictly after instant
    /// `at` — when a transaction in a mempool at `at` can first be mined.
    /// All shards share the cadence (asserted at construction).
    pub fn next_slot_secs(&self, at: SimInstant) -> u64 {
        let block_time = self.chain_config(EndpointId(0)).block_time;
        (at.0 / 1_000_000 / block_time + 1) * block_time
    }

    // ------------------------------------------------------------------
    // The wallet's signing environment (client traffic, like any other).
    // ------------------------------------------------------------------

    /// Fetches everything a wallet needs before signing — chain id, nonce,
    /// gas estimate, gas price — as **one** batched round trip against the
    /// market's endpoint, retrying transient failures. Returns the
    /// environment and the total cost of every attempt (the caller charges
    /// it). Because these are ordinary envelopes, a flaky or throttling
    /// endpoint now faults the signing path too.
    pub fn tx_env(
        &mut self,
        endpoint: EndpointId,
        from: &H160,
        to: Option<&H160>,
        data: &[u8],
    ) -> Result<(TxEnv, SimDuration), WorldError> {
        let requests = vec![
            RpcRequest::new(0, RpcMethod::ChainId),
            RpcRequest::new(1, RpcMethod::GetTransactionCount { address: *from }),
            RpcRequest::new(
                2,
                RpcMethod::EstimateGas {
                    from: *from,
                    to: to.copied(),
                    data: data.to_vec(),
                },
            ),
            RpcRequest::new(3, RpcMethod::GasPrice),
        ];
        let mut total = SimDuration::ZERO;
        let mut attempt = 0u32;
        loop {
            // Tag-match the reply array: a reordering endpoint shuffles it,
            // and the four sub-results here are decoded by position.
            let responses =
                match_to_requests(&requests, self.pool.endpoint(endpoint).batch(&requests));
            total = responses
                .iter()
                .fold(total, |acc, r| acc.saturating_add(r.cost));
            match decode_tx_env(&responses) {
                Ok(env) => return Ok((env, total)),
                Err(e) if e.is_transient() && attempt < self.max_rpc_retries => {
                    attempt += 1;
                }
                Err(e) => return Err(WorldError::Rpc(e)),
            }
        }
    }

    // ------------------------------------------------------------------
    // Non-blocking substrate steps (event-driven path).
    // ------------------------------------------------------------------

    /// Signs a transaction (environment fetched over the provider traits —
    /// see [`World::tx_env`]) and broadcasts it through the endpoint
    /// (`eth_sendRawTransaction`) — the non-blocking half of
    /// [`World::send_and_confirm`]. The successful broadcast itself is
    /// never charged here (the caller prices it; serial:
    /// [`World::tx_submit_time`], engine: the owner's timeline); the
    /// returned duration is the signing preflight plus any wasted retried
    /// round trips, for the caller to charge.
    pub fn submit_tx(
        &mut self,
        endpoint: EndpointId,
        wallet: &Wallet,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<(H256, SimDuration), WorldError> {
        let (env, mut cost) = self.tx_env(endpoint, from, to.as_ref(), &data)?;
        let raw = wallet.sign_with_env(&env, from, to, value, data)?;
        let mut attempt = 0u32;
        loop {
            let Billed { value, cost: c } = self.pool.endpoint(endpoint).send_raw_transaction(&raw);
            match value {
                Ok(hash) => return Ok((hash, cost)),
                Err(e) if e.is_transient() && attempt < self.max_rpc_retries => {
                    cost = cost.saturating_add(c);
                    attempt += 1;
                }
                Err(e) => return Err(WorldError::Rpc(e)),
            }
        }
    }

    /// Broadcasts an already-signed raw transaction through the endpoint
    /// (`eth_sendRawTransaction`), retrying transient failures. Returns the
    /// outcome and the summed cost of every attempt — the caller charges it.
    pub fn broadcast_raw(
        &mut self,
        endpoint: EndpointId,
        raw: &[u8],
    ) -> (Result<H256, RpcError>, SimDuration) {
        let owned = raw.to_vec();
        self.eth_retry(endpoint, |eth| eth.send_raw_transaction(&owned))
    }

    /// Polls receipts for `hashes` on one endpoint — one batched round trip
    /// when [`World::batch_receipt_polls`] is set (N polls, one wire
    /// exchange), else one request per hash. Timed-out entries come back
    /// `None`, to be re-polled after the next slot. The caller charges the
    /// cost.
    pub fn poll_receipts(
        &mut self,
        endpoint: EndpointId,
        hashes: &[H256],
    ) -> Billed<Vec<Option<Receipt>>> {
        if hashes.is_empty() {
            return Billed::free(Vec::new());
        }
        if self.batch_receipt_polls {
            let requests: Vec<RpcRequest> = hashes
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    RpcRequest::new(i as u64, RpcMethod::GetTransactionReceipt { hash: *h })
                })
                .collect();
            // Tag-match the reply array so each hash gets *its* receipt
            // even from a reordering endpoint.
            let responses =
                match_to_requests(&requests, self.pool.endpoint(endpoint).batch(&requests));
            let cost = responses
                .iter()
                .fold(SimDuration::ZERO, |acc, r| acc.saturating_add(r.cost));
            let value = responses.into_iter().map(receipt_of).collect();
            Billed { value, cost }
        } else {
            let mut cost = SimDuration::ZERO;
            let mut value = Vec::with_capacity(hashes.len());
            for hash in hashes {
                let billed = self.pool.endpoint(endpoint).get_transaction_receipt(*hash);
                cost = cost.saturating_add(billed.cost);
                value.push(billed.value.ok().flatten());
            }
            Billed { value, cost }
        }
    }

    /// Polls receipts for hashes spread across **several** shards in one
    /// pass: the pool fans the tagged batch out, one wire round trip per
    /// endpoint involved (per-request when [`World::batch_receipt_polls`]
    /// is off). Returns per-item receipts in input order plus each
    /// endpoint's summed poll cost, indexed by `EndpointId.0` — the engine
    /// charges each shard's waiters their own bill.
    pub fn poll_receipts_sharded(
        &mut self,
        items: &[(EndpointId, H256)],
    ) -> (Vec<Option<Receipt>>, Vec<SimDuration>) {
        let mut costs = vec![SimDuration::ZERO; self.pool.len()];
        if items.is_empty() {
            return (Vec::new(), costs);
        }
        if self.batch_receipt_polls {
            let requests: Vec<(EndpointId, RpcRequest)> = items
                .iter()
                .enumerate()
                .map(|(i, (ep, h))| {
                    (
                        *ep,
                        RpcRequest::new(i as u64, RpcMethod::GetTransactionReceipt { hash: *h }),
                    )
                })
                .collect();
            let responses = self.pool.batch(&requests);
            for ((ep, _), response) in items.iter().zip(&responses) {
                costs[ep.0] = costs[ep.0].saturating_add(response.cost);
            }
            (responses.into_iter().map(receipt_of).collect(), costs)
        } else {
            let mut receipts = Vec::with_capacity(items.len());
            for (ep, hash) in items {
                let billed = self.pool.endpoint(*ep).get_transaction_receipt(*hash);
                costs[ep.0] = costs[ep.0].saturating_add(billed.cost);
                receipts.push(billed.value.ok().flatten());
            }
            (receipts, costs)
        }
    }

    /// Advances the clock to the slot boundary at `slot_secs` and mines
    /// that slot's block on **every** shard (backstage: the networks
    /// produce blocks whether or not any client is watching), notifying
    /// window-based decorators of the boundary. Returns the blocks in
    /// endpoint order.
    pub fn mine_slot(&mut self, slot_secs: u64) -> Vec<Block> {
        self.clock.advance_to(SimInstant(slot_secs * 1_000_000));
        let _span = ofl_trace::trace_span!(
            ofl_trace::Category::World,
            "world.mine_slot",
            "slot_secs" => slot_secs,
            "shards" => self.pool.len(),
        );
        // Shards mine independently: the pool fans the op out to parallel
        // workers and hands the blocks back in endpoint order.
        let blocks = self
            .pool
            .backstage_all(&BackstageOp::MineSlot { slot_secs })
            .into_iter()
            .map(|reply| reply.into_block())
            .collect();
        self.pool.on_slot();
        // The slot pump: the mine round trips above arrive *after* the
        // pushes they caused (the daemon's ordering contract), and on_slot
        // just advanced any sub-lag decorators — so draining here sees
        // every notification due this slot, on every backend kind.
        self.pump_notifications();
        blocks
    }

    // ------------------------------------------------------------------
    // Push subscriptions (client traffic; delivery pumped at slot
    // boundaries by `mine_slot`).
    // ------------------------------------------------------------------

    /// Opens a push subscription on one endpoint's backend, returning the
    /// backend-assigned id. Notifications accumulate in the world's inbox
    /// each slot until [`World::take_notifications`] collects them.
    pub fn subscribe(&mut self, endpoint: EndpointId, kind: SubscriptionKind) -> u64 {
        self.pool.endpoint(endpoint).subscribe(kind)
    }

    /// Cancels a subscription; `false` when the id was unknown. Already
    /// parked notifications stay takeable.
    pub fn unsubscribe(&mut self, endpoint: EndpointId, sub_id: u64) -> bool {
        self.pool.endpoint(endpoint).unsubscribe(sub_id)
    }

    /// Takes everything parked for `(endpoint, sub_id)` since the last
    /// take, in delivery order. Empty when nothing arrived.
    pub fn take_notifications(&mut self, endpoint: EndpointId, sub_id: u64) -> Vec<Notification> {
        self.inbox.remove(&(endpoint, sub_id)).unwrap_or_default()
    }

    /// Drains every endpoint's pending pushes into the inbox. `mine_slot`
    /// calls this at each slot boundary; it is public so drivers that mine
    /// backstage through other paths can pump explicitly.
    pub fn pump_notifications(&mut self) {
        for (endpoint, notes) in self.pool.drain_notifications_all() {
            for note in notes {
                self.inbox
                    .entry((endpoint, note.sub_id))
                    .or_default()
                    .push(note);
            }
        }
        // Parked-but-untaken notifications across every subscription: the
        // world-side half of the slow-subscriber picture.
        let depth: usize = self.inbox.values().map(Vec::len).sum();
        ofl_trace::metrics::gauge_set("world.inbox_depth", depth.min(i64::MAX as usize) as i64);
    }

    // ------------------------------------------------------------------
    // Serial path.
    // ------------------------------------------------------------------

    /// Blocks (in virtual time) until `hash` is mined on `endpoint`, then
    /// charges one receipt poll and returns the receipt — the blocking half
    /// of [`World::send_and_confirm`].
    pub fn await_receipt(
        &mut self,
        endpoint: EndpointId,
        hash: H256,
    ) -> Result<Receipt, WorldError> {
        self.mine_until(endpoint, &[hash])?;
        let max_wait_slots = self.chain_config(endpoint).max_wait_slots;
        let mut extra_slots = 0u64;
        loop {
            let (result, cost) = self.eth_retry(endpoint, |eth| eth.get_transaction_receipt(hash));
            self.clock.advance(cost);
            match result {
                Ok(Some(receipt)) => return Ok(receipt),
                Ok(None) => {
                    // `None` from the client poll is ambiguous: a lagging
                    // replica hides freshly-mined receipts exactly like a
                    // dropped transaction. Backstage tells them apart.
                    if self.receipt_of(endpoint, &hash).is_none() {
                        return Err(WorldError::TxDropped(hash));
                    }
                    if extra_slots >= max_wait_slots {
                        return Err(WorldError::ConfirmationTimeout {
                            slots_mined: extra_slots,
                            pending: vec![hash],
                        });
                    }
                    // Mined but not yet visible to the replica: wait out a
                    // slot (the replica's view advances with the head) and
                    // re-poll, exactly as a production client would.
                    let slot = self.next_slot_secs(self.clock.now());
                    self.mine_slot(slot);
                    extra_slots += 1;
                }
                Err(e) => return Err(WorldError::Rpc(e)),
            }
        }
    }

    /// Submits a transaction via a wallet and blocks (in virtual time) until
    /// it is mined, driving 12-second slot production. Returns the receipt.
    pub fn send_and_confirm(
        &mut self,
        endpoint: EndpointId,
        wallet: &Wallet,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<Receipt, WorldError> {
        // RPC submission (calldata rides along).
        self.clock.advance(self.tx_submit_time(data.len()));
        let (hash, preflight) = self.submit_tx(endpoint, wallet, from, to, value, data)?;
        self.clock.advance(preflight);
        self.await_receipt(endpoint, hash)
    }

    /// Advances slot by slot until every hash has a receipt on `endpoint`,
    /// giving up with a typed [`WorldError::ConfirmationTimeout`] after
    /// [`ChainConfig::max_wait_slots`] slots. Each wait polls the endpoint
    /// once per slot (batched when several hashes are pending).
    pub fn mine_until(&mut self, endpoint: EndpointId, hashes: &[H256]) -> Result<(), WorldError> {
        let max_wait_slots = self.chain_config(endpoint).max_wait_slots;
        let mut slots_mined = 0u64;
        loop {
            let Billed {
                value: receipts,
                cost,
            } = self.poll_receipts(endpoint, hashes);
            self.clock.advance(cost);
            if receipts.iter().all(Option::is_some) {
                return Ok(());
            }
            if slots_mined >= max_wait_slots {
                break;
            }
            let slot = self.next_slot_secs(self.clock.now());
            self.mine_slot(slot);
            slots_mined += 1;
        }
        // A final backstage check: flaky or stale polls can miss receipts
        // that are actually there.
        let mut pending = Vec::new();
        for hash in hashes {
            if self.receipt_of(endpoint, hash).is_none() {
                pending.push(*hash);
            }
        }
        if pending.is_empty() {
            return Ok(());
        }
        // Distinguish "still queued" from "silently evicted": a vanished
        // transaction will never confirm no matter how long we wait.
        for hash in &pending {
            if !self.is_pending(endpoint, hash) {
                return Err(WorldError::TxDropped(*hash));
            }
        }
        Err(WorldError::ConfirmationTimeout {
            slots_mined,
            pending,
        })
    }

    /// A free read (`eth_call`-style) through the endpoint, with the priced
    /// RPC cost charged to the global clock and transient failures retried.
    pub fn read_call(
        &mut self,
        endpoint: EndpointId,
        from: &H160,
        to: &H160,
        data: Vec<u8>,
    ) -> Result<CallResult, WorldError> {
        let (result, cost) = self.eth_retry(endpoint, |eth| eth.call(from, to, data.clone()));
        self.clock.advance(cost);
        result.map_err(WorldError::Rpc)
    }

    // ------------------------------------------------------------------
    // IPFS traffic (also provider-priced; the caller charges the bill).
    // ------------------------------------------------------------------

    /// `ipfs add` on `node` of `endpoint`'s swarm: stores + pins, returns
    /// the root CID and the priced LAN transfer time.
    pub fn ipfs_add(
        &mut self,
        endpoint: EndpointId,
        node: usize,
        data: &[u8],
    ) -> Billed<AddResult> {
        self.pool.endpoint(endpoint).add(node, data)
    }

    /// `ipfs cat` on `node` of `endpoint`'s swarm: bitswaps the DAG under
    /// `cid` and returns the bytes, transfer stats, and priced LAN time.
    pub fn ipfs_cat(
        &mut self,
        endpoint: EndpointId,
        node: usize,
        cid: &Cid,
    ) -> Billed<Result<(Vec<u8>, FetchStats), ofl_ipfs::swarm::IpfsError>> {
        self.pool.endpoint(endpoint).cat(node, cid)
    }
}

fn receipt_of(response: RpcResponse) -> Option<Receipt> {
    match response.result {
        Ok(RpcResult::Receipt(receipt)) => receipt,
        _ => None,
    }
}

/// Unpacks the signing-environment batch (`eth_chainId`,
/// `eth_getTransactionCount`, `eth_estimateGas`, `eth_gasPrice`), surfacing
/// the first transport error so a dropped batch retries as a unit.
fn decode_tx_env(responses: &[RpcResponse]) -> Result<TxEnv, RpcError> {
    let result = |i: usize| -> Result<&RpcResult, RpcError> {
        responses
            .get(i)
            .ok_or(RpcError::UnexpectedResponse)?
            .result
            .as_ref()
            .map_err(Clone::clone)
    };
    let chain_id = match result(0)? {
        RpcResult::ChainId(id) => *id,
        _ => return Err(RpcError::UnexpectedResponse),
    };
    let nonce = match result(1)? {
        RpcResult::TransactionCount(n) => *n,
        _ => return Err(RpcError::UnexpectedResponse),
    };
    let gas_estimate = match result(2)? {
        RpcResult::GasEstimate(g) => *g,
        _ => return Err(RpcError::UnexpectedResponse),
    };
    let base_fee = match result(3)? {
        RpcResult::GasPrice(p) => *p,
        _ => return Err(RpcError::UnexpectedResponse),
    };
    Ok(TxEnv {
        chain_id,
        nonce,
        gas_estimate,
        base_fee,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_eth::tx::{sign_tx, TxRequest};
    use ofl_primitives::wei_per_eth;

    const EP: EndpointId = EndpointId(0);

    #[test]
    fn send_and_confirm_waits_for_slot() {
        let wallet = Wallet::from_seed("world-test", 2);
        let addrs = wallet.addresses();
        let world_genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(
            ChainConfig::default(),
            &world_genesis,
            NetworkProfile::campus(),
        );
        let receipt = world
            .send_and_confirm(
                EP,
                &wallet,
                &addrs[0],
                Some(addrs[1]),
                U256::from(5u64),
                vec![],
            )
            .unwrap();
        assert!(receipt.is_success());
        // Must have waited at least until the first 12 s slot.
        assert!(world.clock.elapsed_secs() >= 12.0);
        assert!(world.clock.elapsed_secs() < 25.0);
        assert_eq!(world.chain(EP).height(), 1);
    }

    #[test]
    fn sequential_txs_land_in_sequential_slots() {
        let wallet = Wallet::from_seed("world-test-2", 2);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(ChainConfig::default(), &genesis, NetworkProfile::campus());
        let r1 = world
            .send_and_confirm(EP, &wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        let r2 = world
            .send_and_confirm(EP, &wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        assert!(r2.block_number > r1.block_number);
        assert!(world.clock.elapsed_secs() >= 24.0);
    }

    #[test]
    fn submit_tx_is_non_blocking_and_shares_blocks() {
        // Two senders submit before any slot boundary: one mined block
        // carries both — the contention the serial path could never create.
        let wallet = Wallet::from_seed("world-test-4", 2);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(ChainConfig::default(), &genesis, NetworkProfile::campus());
        let (h1, _) = world
            .submit_tx(EP, &wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        let (h2, _) = world
            .submit_tx(EP, &wallet, &addrs[1], Some(addrs[0]), U256::ONE, vec![])
            .unwrap();
        assert_eq!(world.clock.elapsed_secs(), 0.0, "submission never blocks");
        assert_eq!(world.chain(EP).mempool_len(), 2);
        let slot = world.next_slot_secs(world.clock.now());
        let blocks = world.mine_slot(slot);
        assert_eq!(blocks[0].tx_hashes.len(), 2);
        assert!(world.chain(EP).receipt(&h1).is_some());
        assert!(world.chain(EP).receipt(&h2).is_some());
    }

    #[test]
    fn signing_reads_travel_as_one_metered_batch() {
        let wallet = Wallet::from_seed("world-sign", 2);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(ChainConfig::default(), &genesis, NetworkProfile::campus());
        let (env, cost) = world.tx_env(EP, &addrs[0], Some(&addrs[1]), &[]).unwrap();
        assert_eq!(env.nonce, 0);
        assert_eq!(env.gas_estimate, 21_000);
        assert_eq!(env.chain_id, world.chain(EP).config().chain_id);
        assert_eq!(env.base_fee, world.chain(EP).base_fee());
        assert!(cost > SimDuration::ZERO, "the preflight is priced traffic");
        let metrics = world.rpc_metrics(EP);
        // Four signing reads, one wire round trip.
        assert_eq!(metrics.round_trips, 1);
        assert_eq!(metrics.batched_requests, 4);
        for method in [
            "eth_chainId",
            "eth_getTransactionCount",
            "eth_estimateGas",
            "eth_gasPrice",
        ] {
            assert_eq!(metrics.method(method).calls, 1, "{method}");
        }
    }

    #[test]
    fn faults_cover_the_signing_path() {
        // A provider that drops everything fails the submit inside the
        // signing preflight — no local chain read can paper over it.
        let wallet = Wallet::from_seed("world-sign-flaky", 1);
        let a = wallet.addresses()[0];
        let profile = FaultProfile {
            timeout: SimDuration::from_secs(3),
            ..FaultProfile::new(1, 1.0)
        };
        let mut world = World::with_faults(
            ChainConfig::default(),
            &[(a, wei_per_eth())],
            NetworkProfile::campus(),
            Some(profile),
        );
        match world.submit_tx(EP, &wallet, &a, None, U256::ZERO, vec![]) {
            Err(WorldError::Rpc(RpcError::Timeout)) => {}
            other => panic!("expected signing-path timeout, got {other:?}"),
        }
        let metrics = world.rpc_metrics(EP);
        assert!(metrics.method("eth_chainId").errors > 0);
        assert_eq!(metrics.method("eth_sendRawTransaction").calls, 0);
    }

    #[test]
    fn mine_until_timeout_is_typed_and_configurable() {
        let wallet = Wallet::from_seed("world-test-5", 1);
        let a = wallet.addresses()[0];
        let config = ChainConfig {
            max_wait_slots: 3,
            ..ChainConfig::default()
        };
        let mut world = World::new(config, &[(a, wei_per_eth())], NetworkProfile::campus());
        // A future-nonce transaction can never be mined on its own.
        let key = wallet.account(&a).unwrap().private_key;
        let req = TxRequest {
            chain_id: world.chain(EP).config().chain_id,
            nonce: 5,
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(40_000_000_000u64),
            gas_limit: 21_000,
            to: Some(H160::from_slice(&[9; 20])),
            value: U256::ONE,
            data: Vec::new(),
        };
        let hash = world
            .chain_mut(EP)
            .submit(sign_tx(req, &key).unwrap())
            .unwrap();
        match world.mine_until(EP, &[hash]) {
            Err(WorldError::ConfirmationTimeout {
                slots_mined,
                pending,
            }) => {
                assert_eq!(slots_mined, 3);
                assert_eq!(pending, vec![hash]);
            }
            other => panic!("expected ConfirmationTimeout, got {other:?}"),
        }
        assert_eq!(world.chain(EP).height(), 3);
    }

    #[test]
    fn next_slot_is_strictly_after() {
        let wallet = Wallet::from_seed("world-test-6", 1);
        let a = wallet.addresses()[0];
        let world = World::new(
            ChainConfig::default(),
            &[(a, wei_per_eth())],
            NetworkProfile::campus(),
        );
        assert_eq!(world.next_slot_secs(SimInstant(0)), 12);
        assert_eq!(world.next_slot_secs(SimInstant(11_999_999)), 12);
        assert_eq!(world.next_slot_secs(SimInstant(12_000_000)), 24);
    }

    #[test]
    fn read_call_costs_time_but_no_gas() {
        let wallet = Wallet::from_seed("world-test-3", 1);
        let a = wallet.addresses()[0];
        let mut world = World::new(
            ChainConfig::default(),
            &[(a, wei_per_eth())],
            NetworkProfile::campus(),
        );
        let before_balance = world.chain(EP).balance(&a);
        let before_time = world.clock.elapsed_secs();
        world
            .read_call(EP, &a, &H160::from_slice(&[7; 20]), vec![])
            .unwrap();
        assert_eq!(world.chain(EP).balance(&a), before_balance);
        assert!(world.clock.elapsed_secs() > before_time);
    }

    #[test]
    fn flaky_world_retries_and_charges_the_wasted_round_trips() {
        // A 60% drop rate forces visible retries; the session must still
        // complete, just later in virtual time than the clean run.
        let run = |faults: Option<FaultProfile>| {
            let wallet = Wallet::from_seed("world-flaky", 2);
            let addrs = wallet.addresses();
            let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
            let mut world = World::with_faults(
                ChainConfig::default(),
                &genesis,
                NetworkProfile::campus(),
                faults,
            );
            world
                .send_and_confirm(EP, &wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
                .unwrap();
            (world.clock.elapsed_secs(), world.rpc_metrics(EP))
        };
        let (clean_secs, clean_metrics) = run(None);
        let (flaky_secs, flaky_metrics) = run(Some(FaultProfile::new(9, 0.6)));
        assert_eq!(clean_metrics.total_errors(), 0);
        assert!(flaky_metrics.total_errors() > 0, "60% drops must be seen");
        // Timeouts waste retried round trips and priced virtual time. (The
        // *elapsed* clock may tie with the clean run when the retries fit
        // inside the slot wait the sender was paying anyway.)
        assert!(flaky_metrics.round_trips > clean_metrics.round_trips);
        assert!(flaky_metrics.total_cost() > clean_metrics.total_cost());
        assert!(flaky_secs >= clean_secs);
        // Determinism: the same fault seed reproduces the exact timing.
        let (again_secs, again_metrics) = run(Some(FaultProfile::new(9, 0.6)));
        assert_eq!(flaky_secs, again_secs);
        assert_eq!(flaky_metrics, again_metrics);
    }

    #[test]
    fn receipt_polls_batch_into_one_round_trip() {
        let wallet = Wallet::from_seed("world-batch", 4);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::new(ChainConfig::default(), &genesis, NetworkProfile::campus());
        let hashes: Vec<H256> = (0..4)
            .map(|i| {
                world
                    .submit_tx(
                        EP,
                        &wallet,
                        &addrs[i],
                        Some(addrs[(i + 1) % 4]),
                        U256::ONE,
                        vec![],
                    )
                    .unwrap()
                    .0
            })
            .collect();
        world.mine_slot(12);
        let before = world.rpc_metrics(EP).round_trips;
        let batched = world.poll_receipts(EP, &hashes);
        assert!(batched.value.iter().all(Option::is_some));
        assert_eq!(world.rpc_metrics(EP).round_trips, before + 1);

        world.batch_receipt_polls = false;
        let per_call = world.poll_receipts(EP, &hashes);
        assert_eq!(world.rpc_metrics(EP).round_trips, before + 1 + 4);
        // The batched bill is far cheaper than four separate round trips.
        assert!(batched.cost.as_secs_f64() * 2.0 < per_call.cost.as_secs_f64());
    }

    #[test]
    fn sharded_worlds_keep_independent_chains_but_one_clock() {
        let wallet = Wallet::from_seed("world-shards", 2);
        let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
        let mut world = World::from_shards(
            vec![
                ShardSpec::new(ChainConfig::default(), vec![(a, wei_per_eth())]),
                ShardSpec::new(ChainConfig::default(), vec![(b, wei_per_eth())]),
            ],
            NetworkProfile::campus(),
        );
        assert_eq!(world.endpoints(), 2);
        // Account `a` exists on shard 0 only.
        assert_eq!(world.chain(EndpointId(0)).balance(&a), wei_per_eth());
        assert_eq!(world.chain(EndpointId(1)).balance(&a), U256::ZERO);
        // Same-instant submissions on different shards mine into different
        // chains' blocks at the same slot boundary.
        let (h0, _) = world
            .submit_tx(EndpointId(0), &wallet, &a, Some(b), U256::ONE, vec![])
            .unwrap();
        let (h1, _) = world
            .submit_tx(EndpointId(1), &wallet, &b, Some(a), U256::ONE, vec![])
            .unwrap();
        let blocks = world.mine_slot(12);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].tx_hashes, vec![h0]);
        assert_eq!(blocks[1].tx_hashes, vec![h1]);
        // The sharded poll answers both in one pass, one round trip per
        // endpoint, each shard paying its own bill.
        let items = vec![(EndpointId(0), h0), (EndpointId(1), h1)];
        let (receipts, costs) = world.poll_receipts_sharded(&items);
        assert!(receipts.iter().all(Option::is_some));
        assert!(costs[0] > SimDuration::ZERO && costs[1] > SimDuration::ZERO);
        // Per-endpoint metering stays disjoint and rolls up.
        let per = world.rpc_metrics_per_endpoint();
        assert_eq!(per[0].method("eth_sendRawTransaction").calls, 1);
        assert_eq!(per[1].method("eth_sendRawTransaction").calls, 1);
        let merged = world.rpc_metrics_merged();
        assert_eq!(merged.method("eth_sendRawTransaction").calls, 2);
        assert_eq!(merged.round_trips, per[0].round_trips + per[1].round_trips);
    }

    #[test]
    fn push_subscriptions_deliver_per_shard_at_slot_boundaries() {
        use ofl_rpc::SubEvent;
        let wallet = Wallet::from_seed("world-subs", 2);
        let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
        let mut world = World::from_shards(
            vec![
                ShardSpec::new(ChainConfig::default(), vec![(a, wei_per_eth())]),
                ShardSpec::new(ChainConfig::default(), vec![(b, wei_per_eth())]),
            ],
            NetworkProfile::campus(),
        );
        let heads0 = world.subscribe(EndpointId(0), SubscriptionKind::NewHeads);
        let pend1 = world.subscribe(EndpointId(1), SubscriptionKind::PendingTxs);
        // Ids are per-backend: both shards hand out 1 first.
        assert_eq!((heads0, pend1), (1, 1));
        let (h1, _) = world
            .submit_tx(EndpointId(1), &wallet, &b, Some(a), U256::ONE, vec![])
            .unwrap();
        // Nothing delivered before the slot boundary pump.
        assert!(world.take_notifications(EndpointId(1), pend1).is_empty());
        world.mine_slot(12);
        let heads = world.take_notifications(EndpointId(0), heads0);
        assert_eq!(heads.len(), 1);
        assert!(matches!(&heads[0].event, SubEvent::NewHead(block) if block.header.number == 1));
        let pending = world.take_notifications(EndpointId(1), pend1);
        assert_eq!(pending.len(), 1);
        assert!(matches!(&pending[0].event, SubEvent::PendingTx(p) if p.hash == h1));
        // Taken means taken; shard 1's head went nowhere (no subscriber).
        assert!(world.take_notifications(EndpointId(0), heads0).is_empty());
        assert!(world.take_notifications(EndpointId(1), pend1).is_empty());
        assert!(world.take_notifications(EndpointId(1), 99).is_empty());
        assert!(world.unsubscribe(EndpointId(0), heads0));
        assert!(!world.unsubscribe(EndpointId(0), 42));
    }

    #[test]
    fn rate_limited_world_survives_via_backoff_retries() {
        let wallet = Wallet::from_seed("world-429", 2);
        let addrs = wallet.addresses();
        let genesis: Vec<(H160, U256)> = addrs.iter().map(|a| (*a, wei_per_eth())).collect();
        let mut world = World::from_shards(
            vec![ShardSpec::Local(ShardConfig {
                chain: ChainConfig::default(),
                genesis,
                faults: None,
                rate_limit: Some(RateLimitProfile::new(7, 2)),
                stale: None,
                spike: None,
                reorder: None,
                sub_lag: None,
            })],
            NetworkProfile::campus(),
        );
        // The signing preflight + broadcast + polls blow a 2-request budget;
        // back-off retries still land the transfer.
        let receipt = world
            .send_and_confirm(EP, &wallet, &addrs[0], Some(addrs[1]), U256::ONE, vec![])
            .unwrap();
        assert!(receipt.is_success());
        let metrics = world.rpc_metrics(EP);
        assert!(metrics.total_errors() > 0, "429s must have fired");
    }
}
