//! The OFL-W3 marketplace: model buyers, model owners, and the paper's
//! seven-step workflow (§3.2) executed end-to-end on the simulated Web 3.0
//! substrate.
//!
//! | Step | Action | Who |
//! |------|--------|-----|
//! | 1 | Design & deploy the `CidStorage` contract | buyer |
//! | 2 | Train locally, upload model to IPFS | owners |
//! | 3 | Receive CIDs from IPFS | owners |
//! | 4 | Send CIDs to the contract | owners |
//! | 5 | Download CIDs (free reads) | buyer |
//! | 6 | Retrieve models from IPFS | buyer |
//! | 7 | Aggregate (PFNM, backend server), compute LOO, pay | buyer |
//!
//! The session state lives in [`MarketSession`], which is deliberately
//! substrate-free: every step is a primitive that either does pure host
//! compute and *returns* the virtual time it would take, or touches a
//! [`World`] passed in by the caller. Two drivers compose the primitives:
//!
//! - [`Marketplace`] owns a private `World` and runs the steps serially,
//!   blocking in virtual time on each confirmation (the original workflow).
//! - `ofl_core::engine` shares one `World` among many sessions and drives
//!   the same primitives from a discrete-event queue, so owners act
//!   concurrently and their transactions share blocks.

use crate::config::{FinalizePolicy, MarketConfig, PartitionScheme};
use crate::world::{ShardConfig, ShardSpec, World, WorldError};
use ofl_data::dataset::Dataset;
use ofl_data::{mnist, partition};
use ofl_eth::block::Receipt;
use ofl_eth::tx::{sign_tx, SignedTx, TxRequest};
use ofl_eth::wallet::{TxEnv, Wallet};
use ofl_fl::baselines::{average_weights, AggregateError};
use ofl_fl::client::TrainedModel;
use ofl_fl::pfnm::{self, PfnmConfig};
use ofl_incentive::{allocate_payments, loo_scores};
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::{IpfsNode, Swarm};
use ofl_netsim::clock::{SimClock, SimDuration, SimInstant};
use ofl_netsim::service::{Response, Service};
use ofl_netsim::timing::{ComputeModel, PhaseRecorder};
use ofl_primitives::hotpath::{HotPhase, PhaseTimer};
use ofl_primitives::u256::U256;
use ofl_primitives::{format_eth, wei_per_eth, H160, H256};
use ofl_rpc::{BindingError, EndpointId, ModelMarketContract, ProviderMetrics};
use ofl_tensor::nn::Mlp;
use ofl_tensor::serialize::{decode_model, encode_model};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Phase labels (owners), matching the paper's Fig 7a.
pub mod owner_phase {
    /// Local model training.
    pub const TRAIN: &str = "local training";
    /// Model upload to IPFS.
    pub const UPLOAD: &str = "model upload (IPFS)";
    /// Sending the CID to the smart contract and awaiting confirmation.
    pub const SEND_CID: &str = "send CID (blockchain)";
}

/// Phase labels (buyer), matching the paper's Fig 7b.
pub mod buyer_phase {
    /// Contract deployment and confirmation.
    pub const DEPLOY: &str = "contract deployment";
    /// Downloading CIDs from the contract (free reads).
    pub const DOWNLOAD_CIDS: &str = "download CIDs";
    /// Retrieving models from IPFS.
    pub const RETRIEVE: &str = "model retrieval (IPFS)";
    /// One-shot aggregation on the backend workstation.
    pub const AGGREGATE: &str = "aggregation (backend)";
    /// LOO payment computation plus the payment transactions.
    pub const PAYMENT: &str = "payment";
}

/// One model owner's session state.
pub struct OwnerState {
    /// Wallet address (appears in the payment table).
    pub address: H160,
    /// Index of this owner's IPFS node in the swarm.
    pub ipfs_node: usize,
    /// The owner's private silo.
    pub data: Dataset,
    /// Local training output.
    pub trained: Option<TrainedModel>,
    /// Serialized model uploaded to IPFS.
    pub model_bytes: Vec<u8>,
    /// The model's content identifier.
    pub cid: Option<Cid>,
    /// Receipt of the `uploadCid` transaction.
    pub upload_receipt: Option<Receipt>,
}

/// The model buyer's session state.
pub struct BuyerState {
    /// Wallet address.
    pub address: H160,
    /// Buyer's IPFS node.
    pub ipfs_node: usize,
    /// Held-out evaluation set (proxy for the buyer's target task).
    pub test: Dataset,
}

/// A row of the payment table (the paper's Table 1).
#[derive(Debug, Clone)]
pub struct PaymentRow {
    /// Recipient wallet.
    pub address: H160,
    /// Amount paid, wei.
    pub amount_wei: U256,
    /// Receipt of the payment transaction.
    pub receipt: Receipt,
}

/// A gas measurement (the paper's Fig 5).
#[derive(Debug, Clone)]
pub struct GasRow {
    /// Human-readable label, e.g. `deploy`, `uploadCid[3]`, `payment[7]`.
    pub label: String,
    /// Gas units consumed.
    pub gas_used: u64,
    /// Fee in wei.
    pub fee_wei: U256,
}

/// Everything a full session produces — the inputs to every figure and
/// table of the paper's §4.
pub struct SessionReport {
    /// Test accuracy of each owner's local model (Fig 4 bars).
    pub local_accuracies: Vec<f64>,
    /// Test accuracy of the PFNM-aggregated model (Fig 4 line: 93.87 %).
    pub aggregated_accuracy: f64,
    /// Hidden width of the aggregated model.
    pub global_neurons: usize,
    /// `loo_drop_accuracies[i]` = aggregate accuracy without owner i
    /// (Fig 6).
    pub loo_drop_accuracies: Vec<f64>,
    /// Marginal contributions `v(N) − v(N∖i)`.
    pub contributions: Vec<f64>,
    /// The payment table (Table 1).
    pub payments: Vec<PaymentRow>,
    /// Gas per transaction (Fig 5).
    pub gas: Vec<GasRow>,
    /// Per-owner phase breakdowns (Fig 7a).
    pub owner_breakdowns: Vec<Vec<(String, SimDuration, f64)>>,
    /// Buyer phase breakdown (Fig 7b).
    pub buyer_breakdown: Vec<(String, SimDuration, f64)>,
    /// CIDs shared on-chain, in upload order.
    pub cids: Vec<String>,
    /// Total virtual seconds the session took.
    pub total_sim_seconds: f64,
    /// The metering snapshot of **this market's endpoint** (its
    /// [`MarketConfig::placement`] shard), taken when the session
    /// completed: per-method call counts, errors, round trips, and
    /// virtual-time totals. Markets placed on *different* shards meter
    /// independently; markets sharing a shard share its counters (the
    /// snapshot then includes same-shard siblings' traffic up to that
    /// instant — use [`EngineReport::rpc`](crate::engine::EngineReport)
    /// for run-level totals rather than summing across sessions).
    pub rpc: ProviderMetrics,
}

impl SessionReport {
    /// Worst local model accuracy (the paper quotes aggregate − worst =
    /// 58.87 points).
    pub fn worst_local_accuracy(&self) -> f64 {
        self.local_accuracies
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }

    /// Index of the least useful owner (paper: model 7).
    pub fn least_useful_owner(&self) -> usize {
        self.loo_drop_accuracies
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("accuracies finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Sum of all payments (must equal the budget).
    pub fn total_paid(&self) -> U256 {
        self.payments
            .iter()
            .fold(U256::ZERO, |acc, p| acc.wrapping_add(&p.amount_wei))
    }
}

/// Errors from marketplace steps.
#[derive(Debug)]
pub enum MarketError {
    /// Substrate failure.
    World(WorldError),
    /// A typed contract-binding failure (revert, corrupt returndata, or
    /// provider error underneath it).
    Binding(BindingError),
    /// A step was invoked out of order.
    StepOrder(&'static str),
    /// Aggregation failure.
    Pfnm(pfnm::PfnmError),
    /// A transaction landed but failed on-chain.
    TxFailed(String),
    /// Model bytes from IPFS failed to decode.
    ModelDecode,
}

impl From<WorldError> for MarketError {
    fn from(e: WorldError) -> Self {
        MarketError::World(e)
    }
}

impl From<BindingError> for MarketError {
    fn from(e: BindingError) -> Self {
        MarketError::Binding(e)
    }
}

impl From<pfnm::PfnmError> for MarketError {
    fn from(e: pfnm::PfnmError) -> Self {
        MarketError::Pfnm(e)
    }
}

impl core::fmt::Display for MarketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MarketError::World(e) => write!(f, "world: {e}"),
            MarketError::Binding(e) => write!(f, "contract binding: {e}"),
            MarketError::StepOrder(what) => write!(f, "workflow step out of order: {what}"),
            MarketError::Pfnm(e) => write!(f, "aggregation: {e}"),
            MarketError::TxFailed(label) => write!(f, "transaction failed on-chain: {label}"),
            MarketError::ModelDecode => write!(f, "retrieved model bytes failed to decode"),
        }
    }
}

impl std::error::Error for MarketError {}

/// A model the buyer pulled from IPFS, attributed back to its owner.
struct RetrievedModel {
    model: Mlp,
    /// Data weight (the owner's example count).
    weight: usize,
    /// Index into `owners`, when the CID matches a known owner.
    owner_index: Option<usize>,
}

/// Everything the buyer knows after PFNM aggregation, before payment.
pub struct Aggregation {
    models: Vec<Mlp>,
    weights: Vec<usize>,
    /// Payment recipients, in model order (`None` = unattributable CID).
    pub recipients: Vec<Option<H160>>,
    /// The aggregated model plus matching metadata.
    pub result: pfnm::PfnmResult,
    /// Test accuracy of the aggregated model.
    pub accuracy: f64,
}

/// LOO contribution assessment and the resulting payment split.
pub struct LooPayments {
    /// Aggregate accuracy without each model.
    pub drop_values: Vec<f64>,
    /// Marginal contributions `v(N) − v(N∖i)`.
    pub contributions: Vec<f64>,
    /// Wei owed per model, aligned with `Aggregation::recipients`.
    pub amounts: Vec<U256>,
}

/// Pure per-market setup — wallet derivation, genesis allocation, and data
/// partitioning — computed before any [`World`] exists so that several
/// markets can pool their genesis entries into one shared chain.
pub struct SessionBlueprint {
    config: MarketConfig,
    label: String,
    wallet: Wallet,
    buyer_addr: H160,
    owner_addrs: Vec<H160>,
    adversary: Option<H160>,
    genesis: Vec<(H160, U256)>,
    silos: Vec<Dataset>,
    test: Dataset,
}

impl SessionBlueprint {
    /// Derives participants and partitions data. `label` namespaces wallet
    /// seeds and IPFS peer ids so several markets can share one world; use
    /// `""` for a solo market (identical derivation to the original serial
    /// construction).
    pub fn new(config: MarketConfig, label: &str) -> SessionBlueprint {
        let mut wallet = Wallet::from_seed(&format!("ofl-w3/{label}{}", config.seed), 0);
        let buyer_addr = wallet.derive_account(
            &format!("ofl-w3/{label}buyer"),
            config.seed,
            "model-buyer".into(),
        );
        let owner_addrs: Vec<H160> = (0..config.n_owners)
            .map(|i| {
                wallet.derive_account(
                    &format!("ofl-w3/{label}owner"),
                    config.seed.wrapping_mul(1000).wrapping_add(i as u64),
                    format!("model-owner-{i}"),
                )
            })
            .collect();
        // Genesis: buyer gets 1 ETH (covers the 0.01 budget plus fees);
        // owners get 0.1 ETH for their uploadCid gas.
        let mut genesis = vec![(buyer_addr, wei_per_eth())];
        let tenth = wei_per_eth().div_rem(&U256::from(10u64)).0;
        for a in &owner_addrs {
            genesis.push((*a, tenth));
        }
        // Derived after the participants so their addresses (and therefore
        // every clean-run digest) are untouched by the knob.
        let adversary = config.fund_adversary.then(|| {
            let addr = wallet.derive_account(
                &format!("ofl-w3/{label}adversary"),
                config.seed,
                "mempool-freeloader".into(),
            );
            genesis.push((addr, wei_per_eth()));
            addr
        });

        // Data: the buyer holds the test set; owners hold non-IID silos.
        let (train, test) = mnist::generate(config.seed, config.n_train, config.n_test);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(77));
        let silos = match config.partition {
            PartitionScheme::Iid => partition::iid(&train, config.n_owners, &mut rng),
            PartitionScheme::Dirichlet { alpha } => {
                partition::dirichlet(&train, config.n_owners, 10, alpha, &mut rng)
            }
            PartitionScheme::Shards { per_client } => {
                partition::shards(&train, config.n_owners, per_client, &mut rng)
            }
            PartitionScheme::LabelSkew { classes } => {
                partition::label_skew(&train, config.n_owners, 10, classes, &mut rng)
            }
        };

        SessionBlueprint {
            config,
            label: label.to_string(),
            wallet,
            buyer_addr,
            owner_addrs,
            adversary,
            genesis,
            silos,
            test,
        }
    }

    /// This market's genesis allocation (pooled by multi-market worlds).
    pub fn genesis(&self) -> &[(H160, U256)] {
        &self.genesis
    }

    /// The configuration this blueprint was derived from.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// Spawns the market's IPFS nodes into `swarm` and assembles the
    /// session state (in-process worlds; see
    /// [`SessionBlueprint::instantiate_with`] for the general form).
    pub fn instantiate(self, swarm: &mut Swarm) -> MarketSession {
        self.instantiate_with(|label| swarm.add_node(IpfsNode::new(label)))
    }

    /// Spawns the market's IPFS nodes through `spawn` (any backstage node
    /// spawner — a local swarm or a remote shard's wire channel) and
    /// assembles the session state.
    pub fn instantiate_with(self, mut spawn: impl FnMut(&str) -> usize) -> MarketSession {
        let SessionBlueprint {
            config,
            label,
            wallet,
            buyer_addr,
            owner_addrs,
            adversary,
            genesis: _,
            silos,
            test,
        } = self;
        let buyer_node = spawn(&format!("{label}buyer"));
        let owners: Vec<OwnerState> = silos
            .into_iter()
            .enumerate()
            .map(|(i, data)| OwnerState {
                address: owner_addrs[i],
                ipfs_node: spawn(&format!("{label}owner-{i}")),
                data,
                trained: None,
                model_bytes: Vec::new(),
                cid: None,
                upload_receipt: None,
            })
            .collect();

        // The buyer's backend server (Flask role): /aggregate and /loo.
        // Route processing times follow the finalize policy: PFNM+LOO is
        // quadratic in owners, FedAvg+proportional stays linear so fleet
        // cells price realistically at thousands of owners.
        let mut backend = Service::new(format!("{label}buyer-backend"));
        let agg_time = match config.finalize {
            FinalizePolicy::PfnmLoo => aggregation_time(
                &config.buyer_compute,
                config.n_owners,
                *config.train.dims.get(1).unwrap_or(&100),
                config.n_test,
            ),
            FinalizePolicy::FedAvgProportional => fedavg_time(
                &config.buyer_compute,
                config.n_owners,
                &config.train.dims,
                config.n_test,
            ),
        };
        backend.route("/aggregate", move |_req| {
            Response::ok(b"aggregated".to_vec()).with_processing(agg_time)
        });
        let loo_time = match config.finalize {
            FinalizePolicy::PfnmLoo => {
                SimDuration::from_secs_f64(agg_time.as_secs_f64() * config.n_owners as f64)
            }
            // Splitting the budget by data weight is one linear pass.
            FinalizePolicy::FedAvgProportional => {
                SimDuration::from_secs_f64(0.01 + config.n_owners as f64 * 1e-6)
            }
        };
        backend.route("/loo", move |_req| {
            Response::ok(b"loo-scores".to_vec()).with_processing(loo_time)
        });

        let n = config.n_owners;
        let placement = config.placement;
        MarketSession {
            placement,
            config,
            wallet,
            owners,
            buyer: BuyerState {
                address: buyer_addr,
                ipfs_node: buyer_node,
                test,
            },
            contract: None,
            deploy_receipt: None,
            owner_recorders: vec![PhaseRecorder::new(); n],
            buyer_recorder: PhaseRecorder::new(),
            backend,
            adversary,
            retrieved: Vec::new(),
        }
    }
}

/// One marketplace session's participants and progress, independent of the
/// substrate it runs on. See the module docs for how [`Marketplace`]
/// (serial) and `ofl_core::engine` (event-driven, shared world) drive it.
pub struct MarketSession {
    /// The world endpoint (shard) every piece of this market's client
    /// traffic is pinned to (copied from [`MarketConfig::placement`]).
    pub placement: EndpointId,
    /// Session configuration.
    pub config: MarketConfig,
    /// Keystore holding the buyer's and every owner's keys (each user's
    /// MetaMask, collapsed into one keystore for the simulation).
    pub wallet: Wallet,
    /// The model owners.
    pub owners: Vec<OwnerState>,
    /// The model buyer.
    pub buyer: BuyerState,
    /// Typed binding for the deployed contract (after step 1).
    pub contract: Option<ModelMarketContract>,
    /// Deployment receipt.
    pub deploy_receipt: Option<Receipt>,
    /// Per-owner timing.
    pub owner_recorders: Vec<PhaseRecorder>,
    /// Buyer timing.
    pub buyer_recorder: PhaseRecorder,
    /// The buyer's Flask-like backend service.
    pub backend: Service,
    /// The funded non-participant adversary account (only when
    /// [`MarketConfig::fund_adversary`] asked for one) — the engine's
    /// mempool-watching front-runner signs with this key.
    pub adversary: Option<H160>,
    retrieved: Vec<RetrievedModel>,
}

impl MarketSession {
    // ------------------------------------------------------------------
    // Owner primitives (Train → Upload → SendCid state machine).
    // ------------------------------------------------------------------

    /// **Step 2 (training half)** — owner `i` trains locally on the host
    /// CPU and returns the *virtual* time the training would take on the
    /// owner's hardware. The caller decides which clock/timeline to charge.
    pub fn train_owner(&mut self, i: usize) -> SimDuration {
        let cfg = ofl_fl::client::TrainConfig {
            seed: self.config.train.seed.wrapping_add(i as u64 * 7919),
            ..self.config.train.clone()
        };
        let trained = ofl_fl::client::train_local(&self.owners[i].data, &cfg);
        let train_time = self
            .config
            .owner_compute
            .training_time(self.owners[i].data.len().max(1), cfg.epochs);
        self.owners[i].model_bytes = encode_model(&trained.model);
        self.owners[i].trained = Some(trained);
        train_time
    }

    /// **Steps 2–3** — owner `i` pushes its model into the swarm and
    /// receives the CID. Returns the CID and the LAN transfer time.
    pub fn upload_owner(
        &mut self,
        world: &mut World,
        i: usize,
    ) -> Result<(Cid, SimDuration), MarketError> {
        if self.owners[i].trained.is_none() {
            return Err(MarketError::StepOrder("train before upload"));
        }
        let bytes = self.owners[i].model_bytes.clone();
        let node = self.owners[i].ipfs_node;
        let billed = world.ipfs_add(self.placement, node, &bytes);
        self.owners[i].cid = Some(billed.value.root.clone());
        Ok((billed.value.root, billed.cost))
    }

    /// Calldata for owner `i`'s `uploadCid` call — the event engine needs
    /// its length to schedule the RPC broadcast before submitting.
    pub fn cid_calldata(&self, i: usize) -> Result<Vec<u8>, MarketError> {
        if self.contract.is_none() {
            return Err(MarketError::StepOrder("deploy before sending CIDs"));
        }
        let cid = self.owners[i]
            .cid
            .as_ref()
            .ok_or(MarketError::StepOrder("upload before sending CID"))?;
        Ok(ModelMarketContract::upload_cid_calldata(
            &cid.to_string_form(),
        ))
    }

    /// **Step 4 (submit half)** — broadcasts owner `i`'s CID transaction
    /// into the placement shard's mempool without blocking, returning the
    /// hash plus the wallet's signing-preflight cost (the caller charges
    /// it). Pair with [`MarketSession::finish_cid`].
    pub fn submit_cid(
        &mut self,
        world: &mut World,
        i: usize,
    ) -> Result<(H256, SimDuration), MarketError> {
        let contract = self
            .contract
            .ok_or(MarketError::StepOrder("deploy before sending CIDs"))?;
        let data = self.cid_calldata(i)?;
        let from = self.owners[i].address;
        Ok(world.submit_tx(
            self.placement,
            &self.wallet,
            &from,
            Some(contract.address),
            U256::ZERO,
            data,
        )?)
    }

    /// **Step 4 (confirm half)** — records owner `i`'s mined `uploadCid`
    /// receipt, failing if it reverted on-chain.
    pub fn finish_cid(&mut self, i: usize, receipt: &Receipt) -> Result<(), MarketError> {
        if !receipt.is_success() {
            return Err(MarketError::TxFailed(format!("uploadCid[{i}]")));
        }
        self.owners[i].upload_receipt = Some(receipt.clone());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Buyer primitives.
    // ------------------------------------------------------------------

    /// **Step 1 (confirm half)** — records the mined deployment receipt and
    /// the typed contract handle. (The submit half is just broadcasting
    /// [`ModelMarketContract::init_code`] from the buyer's account.)
    pub fn finish_deploy(&mut self, receipt: &Receipt) -> Result<(), MarketError> {
        if !receipt.is_success() {
            return Err(MarketError::TxFailed("deploy".into()));
        }
        self.contract = Some(ModelMarketContract::from_deploy_receipt(receipt)?);
        self.deploy_receipt = Some(receipt.clone());
        Ok(())
    }

    /// **Step 5** — reads every CID from the contract through the typed
    /// binding (free `eth_call`s, transient provider failures retried) and
    /// returns them with the total RPC time of the polling loop. With
    /// [`World::batch_cid_reads`] set (the default) the whole download is
    /// `cidCount` plus **one** batched `getCid` round trip; without it,
    /// every index pays its own wire exchange — the Fig 7b knob
    /// `bench_session_engine` sweeps.
    pub fn download_cids_computed(
        &self,
        world: &mut World,
    ) -> Result<(Vec<String>, SimDuration), MarketError> {
        let contract = self
            .contract
            .ok_or(MarketError::StepOrder("deploy before download"))?;
        let buyer = self.buyer.address;
        if world.batch_cid_reads {
            let (cids, duration) =
                world.eth_retry(self.placement, |eth| contract.all_cids_batched(eth, &buyer));
            return Ok((cids?, duration));
        }
        let mut duration = SimDuration::ZERO;
        let (count, d) = world.eth_retry(self.placement, |eth| contract.cid_count(eth, &buyer));
        duration = duration.saturating_add(d);
        let count = count?;
        let mut cids = Vec::with_capacity(count as usize);
        for index in 0..count {
            let (cid, d) =
                world.eth_retry(self.placement, |eth| contract.get_cid(eth, &buyer, index));
            duration = duration.saturating_add(d);
            cids.push(cid?);
        }
        Ok((cids, duration))
    }

    /// **Step 6** — fetches every model from the swarm, verifies integrity
    /// (the CID *is* the hash), and attributes each back to its owner.
    /// Returns the retrieved count and the total bitswap transfer time.
    pub fn retrieve_models_computed(
        &mut self,
        world: &mut World,
        cids: &[String],
    ) -> Result<(usize, SimDuration), MarketError> {
        self.retrieved.clear();
        let mut duration = SimDuration::ZERO;
        for cid_str in cids {
            let cid = Cid::parse(cid_str).map_err(|_| MarketError::ModelDecode)?;
            let billed = world.ipfs_cat(self.placement, self.buyer.ipfs_node, &cid);
            duration = duration.saturating_add(billed.cost);
            let (bytes, _stats) = billed.value.map_err(WorldError::Ipfs)?;
            let model = decode_model(&bytes).map_err(|_| MarketError::ModelDecode)?;
            // Attribute the model back to its owner by CID (for the data
            // weight and, later, the payment address).
            let owner_index = self
                .owners
                .iter()
                .position(|o| o.cid.as_ref().map(|c| c.to_string_form()) == Some(cid_str.clone()));
            let weight = owner_index.map(|i| self.owners[i].data.len()).unwrap_or(1);
            self.retrieved.push(RetrievedModel {
                model,
                weight,
                owner_index,
            });
        }
        Ok((self.retrieved.len(), duration))
    }

    /// **Step 7 (aggregation half)** — one backend `/aggregate` call plus
    /// the PFNM matching and a test-set evaluation, all host-side. Returns
    /// the aggregation and its virtual duration (backend call + inference).
    pub fn aggregate_computed(
        &mut self,
        world: &World,
    ) -> Result<(Aggregation, SimDuration), MarketError> {
        let _t = PhaseTimer::start(HotPhase::Aggregate);
        if self.retrieved.is_empty() {
            return Err(MarketError::StepOrder("retrieve models before aggregating"));
        }
        let models: Vec<Mlp> = self.retrieved.iter().map(|r| r.model.clone()).collect();
        let weights: Vec<usize> = self.retrieved.iter().map(|r| r.weight).collect();
        // Payment recipients, in model order. A CID the buyer cannot map to
        // a known owner earns nothing (there is no address to pay).
        let recipients: Vec<Option<H160>> = self
            .retrieved
            .iter()
            .map(|r| r.owner_index.map(|i| self.owners[i].address))
            .collect();
        // The Flask call's network + processing time, measured on a scratch
        // clock so the caller can charge it to any timeline.
        let scratch = SimClock::new();
        self.backend.call(
            &scratch,
            &world.profile.lan,
            "/aggregate",
            b"models".to_vec(),
        );
        let full = match self.config.finalize {
            FinalizePolicy::PfnmLoo => aggregate_subset(
                &models,
                &weights,
                &(0..models.len()).collect::<Vec<_>>(),
                &self.config.pfnm,
                self.config.seed,
            )?,
            FinalizePolicy::FedAvgProportional => {
                let model = average_weights(&models, &weights).map_err(|e| match e {
                    AggregateError::NoModels => MarketError::Pfnm(pfnm::PfnmError::NoModels),
                    AggregateError::ShapeMismatch => {
                        MarketError::Pfnm(pfnm::PfnmError::DimensionMismatch)
                    }
                })?;
                pfnm::PfnmResult {
                    global_neurons: *self.config.train.dims.get(1).unwrap_or(&0),
                    assignments: Vec::new(),
                    model,
                }
            }
        };
        let test = &self.buyer.test;
        let accuracy = full.model.accuracy(&test.images, &test.labels);
        let duration = scratch
            .now()
            .since(SimInstant(0))
            .saturating_add(self.config.buyer_compute.inference_time(test.len()));
        Ok((
            Aggregation {
                models,
                weights,
                recipients,
                result: full,
                accuracy,
            },
            duration,
        ))
    }

    /// **Step 7 (LOO half)** — the backend `/loo` call: re-aggregates the
    /// leave-one-out coalitions, prices contributions, and splits the
    /// budget. Returns the payment plan and the backend call's duration.
    pub fn loo_payments_computed(
        &mut self,
        world: &World,
        agg: &Aggregation,
    ) -> (LooPayments, SimDuration) {
        let _t = PhaseTimer::start(HotPhase::Aggregate);
        let scratch = SimClock::new();
        self.backend
            .call(&scratch, &world.profile.lan, "/loo", b"loo".to_vec());
        if self.config.finalize == FinalizePolicy::FedAvgProportional {
            // Linear-time pricing: each owner's contribution is the data
            // weight it brought; no leave-one-out coalitions are rerun.
            let contributions: Vec<f64> = agg.weights.iter().map(|&w| w as f64).collect();
            let amounts = allocate_payments(&contributions, &self.config.budget_wei)
                .expect("non-empty participant set");
            return (
                LooPayments {
                    drop_values: vec![agg.accuracy; agg.weights.len()],
                    contributions,
                    amounts,
                },
                scratch.now().since(SimInstant(0)),
            );
        }
        let pfnm_cfg = self.config.pfnm.clone();
        let seed = self.config.seed;
        let full_accuracy = agg.accuracy;
        let test = &self.buyer.test;
        let models = &agg.models;
        let weights = &agg.weights;
        let report = loo_scores(models.len(), |subset| {
            if subset.len() == models.len() {
                return full_accuracy;
            }
            match aggregate_subset(models, weights, subset, &pfnm_cfg, seed) {
                Ok(result) => result.model.accuracy(&test.images, &test.labels),
                Err(_) => 0.0,
            }
        });
        let amounts = allocate_payments(&report.contributions, &self.config.budget_wei)
            .expect("non-empty participant set");
        (
            LooPayments {
                drop_values: report.drop_values,
                contributions: report.contributions,
                amounts,
            },
            scratch.now().since(SimInstant(0)),
        )
    }

    /// **Step 7 (payment half)** — signs one transfer per attributable
    /// recipient with consecutive nonces (so they can share a block). The
    /// signing environment — chain id, starting nonce, transfer gas
    /// estimate, base fee — comes from [`World::tx_env`] envelopes against
    /// the market's endpoint, never a local chain read. Returns
    /// `(recipient, amount, signed_tx)` rows ready to broadcast.
    pub fn build_payment_txs(
        &self,
        env: &TxEnv,
        agg: &Aggregation,
        loo: &LooPayments,
    ) -> Vec<(H160, U256, SignedTx)> {
        let buyer = self.buyer.address;
        let mut nonce = env.nonce;
        let key = self
            .wallet
            .account(&buyer)
            .expect("buyer key in keystore")
            .private_key;
        let mut txs = Vec::new();
        for (recipient, amount) in agg.recipients.iter().zip(&loo.amounts) {
            let Some(address) = recipient else { continue };
            let req = TxRequest {
                chain_id: env.chain_id,
                nonce,
                max_priority_fee_per_gas: U256::from(1_500_000_000u64),
                max_fee_per_gas: env
                    .base_fee
                    .wrapping_mul(&U256::from(2u64))
                    .wrapping_add(&U256::from(1_500_000_000u64)),
                gas_limit: env.gas_estimate,
                to: Some(*address),
                value: *amount,
                data: Vec::new(),
            };
            nonce += 1;
            let tx = sign_tx(req, &key).expect("valid buyer key");
            txs.push((*address, *amount, tx));
        }
        txs
    }

    /// Fetches the buyer's payment-signing environment (one transfer's
    /// worth of gas estimate) against the market's endpoint. Returns the
    /// environment — `None` when there is no attributable recipient to pay
    /// — plus the preflight's RPC cost for the caller to charge.
    pub fn payment_env(
        &self,
        world: &mut World,
        agg: &Aggregation,
    ) -> Result<(Option<TxEnv>, SimDuration), MarketError> {
        let Some(first) = agg.recipients.iter().flatten().next().copied() else {
            return Ok((None, SimDuration::ZERO));
        };
        let (env, cost) = world.tx_env(self.placement, &self.buyer.address, Some(&first), &[])?;
        Ok((Some(env), cost))
    }

    /// Distills the finished session into the [`SessionReport`] feeding
    /// every figure and table of the paper's §4.
    pub fn assemble_report(
        &self,
        agg: &Aggregation,
        loo: &LooPayments,
        payments: Vec<PaymentRow>,
        total_sim_seconds: f64,
        rpc: ProviderMetrics,
    ) -> SessionReport {
        let test = &self.buyer.test;
        let local_accuracies: Vec<f64> = self
            .owners
            .iter()
            .map(|o| {
                o.trained
                    .as_ref()
                    .map(|t| t.model.accuracy(&test.images, &test.labels))
                    .unwrap_or(0.0)
            })
            .collect();
        let mut gas = Vec::new();
        if let Some(d) = &self.deploy_receipt {
            gas.push(GasRow {
                label: "deploy".into(),
                gas_used: d.gas_used,
                fee_wei: d.fee,
            });
        }
        for (i, o) in self.owners.iter().enumerate() {
            if let Some(r) = &o.upload_receipt {
                gas.push(GasRow {
                    label: format!("uploadCid[{i}]"),
                    gas_used: r.gas_used,
                    fee_wei: r.fee,
                });
            }
        }
        for (i, p) in payments.iter().enumerate() {
            gas.push(GasRow {
                label: format!("payment[{i}]"),
                gas_used: p.receipt.gas_used,
                fee_wei: p.receipt.fee,
            });
        }
        SessionReport {
            local_accuracies,
            aggregated_accuracy: agg.accuracy,
            global_neurons: agg.result.global_neurons,
            loo_drop_accuracies: loo.drop_values.clone(),
            contributions: loo.contributions.clone(),
            payments,
            gas,
            owner_breakdowns: self.owner_recorders.iter().map(|r| r.breakdown()).collect(),
            buyer_breakdown: self.buyer_recorder.breakdown(),
            cids: self
                .owners
                .iter()
                .filter_map(|o| o.cid.as_ref().map(Cid::to_string_form))
                .collect(),
            total_sim_seconds,
            rpc,
        }
    }
}

/// The serial marketplace driver: one private [`World`], participants
/// acting strictly one at a time, blocking in virtual time on each
/// confirmation. Field access passes through to the inner
/// [`MarketSession`].
pub struct Marketplace {
    /// Blockchain + IPFS + clock.
    pub world: World,
    /// The session state (also reachable through `Deref`).
    pub session: MarketSession,
}

impl std::ops::Deref for Marketplace {
    type Target = MarketSession;
    fn deref(&self) -> &MarketSession {
        &self.session
    }
}

impl std::ops::DerefMut for Marketplace {
    fn deref_mut(&mut self) -> &mut MarketSession {
        &mut self.session
    }
}

impl Marketplace {
    /// Sets up the world: funds wallets, partitions data, spawns IPFS
    /// nodes, and builds the single-shard provider pool (with fault/quota
    /// injection when the config asks for it). A solo serial market always
    /// runs on shard 0, whatever placement the config names.
    pub fn new(config: MarketConfig) -> Marketplace {
        let config = MarketConfig {
            placement: EndpointId(0),
            ..config
        };
        let blueprint = SessionBlueprint::new(config, "");
        let mut world = World::from_shards(
            vec![ShardSpec::Local(ShardConfig {
                chain: blueprint.config().chain.clone(),
                genesis: blueprint.genesis().to_vec(),
                faults: blueprint.config().rpc_faults,
                rate_limit: blueprint.config().rpc_rate_limit,
                stale: blueprint.config().rpc_stale,
                spike: blueprint.config().rpc_spike,
                reorder: blueprint.config().rpc_reorder,
                sub_lag: blueprint.config().rpc_sub_lag,
            })],
            blueprint.config().profile,
        );
        let session =
            blueprint.instantiate_with(|label| world.spawn_ipfs_node(EndpointId(0), label));
        Marketplace { world, session }
    }

    /// **Step 1** — the buyer deploys `CidStorage`.
    pub fn deploy_contract(&mut self) -> Result<Receipt, MarketError> {
        let start = self.world.clock.now();
        let buyer = self.session.buyer.address;
        let receipt = self.world.send_and_confirm(
            self.session.placement,
            &self.session.wallet,
            &buyer,
            None,
            U256::ZERO,
            ModelMarketContract::init_code(),
        )?;
        self.session.finish_deploy(&receipt)?;
        self.session
            .buyer_recorder
            .add(buyer_phase::DEPLOY, self.world.clock.now().since(start));
        Ok(receipt)
    }

    /// **Step 2 (training half)** — owner `i` trains locally. Virtual time
    /// is charged from the owner's compute model; the real training runs on
    /// the host CPU.
    pub fn owner_train(&mut self, i: usize) {
        let duration = self.session.train_owner(i);
        self.world.clock.advance(duration);
        self.session.owner_recorders[i].add(owner_phase::TRAIN, duration);
    }

    /// **Steps 2–3** — owner `i` uploads its model to IPFS and receives the
    /// CID.
    pub fn owner_upload_model(&mut self, i: usize) -> Result<Cid, MarketError> {
        let (cid, duration) = self.session.upload_owner(&mut self.world, i)?;
        self.world.clock.advance(duration);
        self.session.owner_recorders[i].add(owner_phase::UPLOAD, duration);
        Ok(cid)
    }

    /// **Step 4** — owner `i` sends its CID to the contract.
    pub fn owner_send_cid(&mut self, i: usize) -> Result<Receipt, MarketError> {
        let start = self.world.clock.now();
        let data = self.session.cid_calldata(i)?;
        let contract = self.session.contract.expect("checked by cid_calldata");
        let from = self.session.owners[i].address;
        let receipt = self.world.send_and_confirm(
            self.session.placement,
            &self.session.wallet,
            &from,
            Some(contract.address),
            U256::ZERO,
            data,
        )?;
        self.session.finish_cid(i, &receipt)?;
        self.session.owner_recorders[i]
            .add(owner_phase::SEND_CID, self.world.clock.now().since(start));
        Ok(receipt)
    }

    /// **Step 5** — the buyer downloads every CID from the contract. Free:
    /// only read calls.
    pub fn buyer_download_cids(&mut self) -> Result<Vec<String>, MarketError> {
        let (cids, duration) = self.session.download_cids_computed(&mut self.world)?;
        self.world.clock.advance(duration);
        self.session
            .buyer_recorder
            .add(buyer_phase::DOWNLOAD_CIDS, duration);
        Ok(cids)
    }

    /// Event-driven alternative to Step 5: reads the `CidUploaded` log
    /// stream (what a production DApp subscribes to) instead of polling
    /// `cidCount`/`getCid`. Free, like all reads; the typed binding's
    /// range query scans genesis through the current head in one
    /// `eth_getLogs` round trip. (`ofl_core::dapp::CidWatcher` wraps the
    /// same query in a resumable cursor for incremental watching.)
    pub fn buyer_watch_upload_events(&mut self) -> Result<Vec<String>, MarketError> {
        let ep = self.session.placement;
        let contract = self
            .session
            .contract
            .ok_or(MarketError::StepOrder("deploy before watching events"))?;
        let (head, d_head) = self.world.eth_retry(ep, |eth| eth.block_number());
        self.world.clock.advance(d_head);
        let head = head.map_err(WorldError::Rpc)?;
        let (cids, duration) = self
            .world
            .eth_retry(ep, |eth| contract.uploaded_cids_in(eth, 1, head));
        self.world.clock.advance(duration);
        self.session
            .buyer_recorder
            .add(buyer_phase::DOWNLOAD_CIDS, duration);
        Ok(cids?)
    }

    /// **Step 6** — the buyer retrieves every model from IPFS and verifies
    /// integrity (the CID *is* the hash).
    pub fn buyer_retrieve_models(&mut self, cids: &[String]) -> Result<usize, MarketError> {
        let (n, duration) = self
            .session
            .retrieve_models_computed(&mut self.world, cids)?;
        self.world.clock.advance(duration);
        self.session
            .buyer_recorder
            .add(buyer_phase::RETRIEVE, duration);
        Ok(n)
    }

    /// **Step 7** — aggregate with PFNM on the backend, evaluate, compute
    /// LOO contributions, and pay every owner from the budget. Returns the
    /// full session report.
    pub fn buyer_aggregate_and_pay(&mut self) -> Result<SessionReport, MarketError> {
        // Aggregation on the backend workstation (Flask call).
        let (agg, agg_duration) = self.session.aggregate_computed(&self.world)?;
        self.world.clock.advance(agg_duration);
        self.session
            .buyer_recorder
            .add(buyer_phase::AGGREGATE, agg_duration);

        // LOO: re-aggregate n leave-one-out coalitions (backend /loo call).
        let pay_start = self.world.clock.now();
        let (loo, loo_duration) = self.session.loo_payments_computed(&self.world, &agg);
        self.world.clock.advance(loo_duration);

        // Payment transactions: one signing-environment preflight against
        // the market's endpoint, then consecutive nonces so they share a
        // block.
        let ep = self.session.placement;
        let (env, env_cost) = self.session.payment_env(&mut self.world, &agg)?;
        self.world.clock.advance(env_cost);
        let txs = match env {
            Some(env) => self.session.build_payment_txs(&env, &agg, &loo),
            None => Vec::new(),
        };
        let mut hashes = Vec::new();
        let mut paid: Vec<(H160, U256)> = Vec::new();
        for (address, amount, tx) in txs {
            let (result, cost) = self.world.broadcast_raw(ep, &tx.encode());
            self.world.clock.advance(cost);
            let hash = result.map_err(|e| MarketError::TxFailed(format!("payment: {e}")))?;
            hashes.push(hash);
            paid.push((address, amount));
        }
        self.world.mine_until(ep, &hashes)?;
        let mut payments = Vec::with_capacity(hashes.len());
        for ((address, amount), hash) in paid.iter().zip(&hashes) {
            let receipt = self.world.receipt_of(ep, hash).expect("mined above");
            payments.push(PaymentRow {
                address: *address,
                amount_wei: *amount,
                receipt,
            });
        }
        self.session.buyer_recorder.add(
            buyer_phase::PAYMENT,
            self.world.clock.now().since(pay_start),
        );

        Ok(self.session.assemble_report(
            &agg,
            &loo,
            payments,
            self.world.clock.elapsed_secs(),
            self.world.rpc_metrics(ep),
        ))
    }

    /// Runs the complete seven-step workflow.
    pub fn run(config: MarketConfig) -> Result<(Marketplace, SessionReport), MarketError> {
        let mut market = Marketplace::new(config);
        market.deploy_contract()?;
        for i in 0..market.session.owners.len() {
            market.owner_train(i);
            market.owner_upload_model(i)?;
            market.owner_send_cid(i)?;
        }
        let cids = market.buyer_download_cids()?;
        market.buyer_retrieve_models(&cids)?;
        let report = market.buyer_aggregate_and_pay()?;
        Ok((market, report))
    }
}

/// PFNM over a subset of the retrieved models (the LOO value function).
fn aggregate_subset(
    models: &[Mlp],
    weights: &[usize],
    subset: &[usize],
    config: &PfnmConfig,
    seed: u64,
) -> Result<pfnm::PfnmResult, pfnm::PfnmError> {
    let sub_models: Vec<Mlp> = subset.iter().map(|&i| models[i].clone()).collect();
    let sub_weights: Vec<usize> = subset.iter().map(|&i| weights[i]).collect();
    // Deterministic per-subset seed so LOO results are reproducible.
    let mut subset_tag: u64 = 0xcbf29ce484222325;
    for &i in subset {
        subset_tag = (subset_tag ^ i as u64).wrapping_mul(0x100000001b3);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ subset_tag);
    pfnm::aggregate(&sub_models, &sub_weights, config, &mut rng)
}

/// Estimated backend time for one PFNM aggregation: Hungarian matching over
/// `n` clients of `hidden` neurons plus a test-set inference. Calibrated to
/// an A5000-class workstation (documented in DESIGN.md).
fn aggregation_time(
    compute: &ComputeModel,
    n_models: usize,
    hidden: usize,
    test_examples: usize,
) -> SimDuration {
    let matching_flops = n_models as f64 * (hidden as f64).powi(2) * 900.0;
    let matching = SimDuration::from_secs_f64(matching_flops / 1e12 + 0.05);
    matching.saturating_add(compute.inference_time(test_examples))
}

/// Estimated backend time for one FedAvg aggregation: a weighted sum over
/// every parameter of every model, plus a test-set inference — linear in
/// clients where PFNM's matching is quadratic-ish, which is what lets a
/// thousand-owner fleet cell finalize in bounded virtual time.
fn fedavg_time(
    compute: &ComputeModel,
    n_models: usize,
    dims: &[usize],
    test_examples: usize,
) -> SimDuration {
    let params: f64 = dims.windows(2).map(|w| (w[0] * w[1] + w[1]) as f64).sum();
    let averaging = SimDuration::from_secs_f64(n_models as f64 * params / 1e12 + 0.01);
    averaging.saturating_add(compute.inference_time(test_examples))
}

/// Renders the payment table in the paper's Table 1 format.
pub fn render_payment_table(payments: &[PaymentRow]) -> String {
    let mut out = String::from("Wallet Address                                Payment (ETH)\n");
    for p in payments {
        out.push_str(&format!(
            "{}  {}\n",
            p.address.to_checksum(),
            format_eth(&p.amount_wei, 8)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarketConfig;

    fn run_small() -> (Marketplace, SessionReport) {
        Marketplace::run(MarketConfig::small_test()).expect("session completes")
    }

    #[test]
    fn full_session_end_to_end() {
        let (market, report) = run_small();
        let n = market.owners.len();
        assert_eq!(report.local_accuracies.len(), n);
        assert_eq!(report.loo_drop_accuracies.len(), n);
        assert_eq!(report.payments.len(), n);
        assert_eq!(report.cids.len(), n);
        // Fig 4 shape: aggregate beats the worst local model.
        assert!(report.aggregated_accuracy > report.worst_local_accuracy());
        // Table 1 invariant: payments sum exactly to the budget.
        assert_eq!(report.total_paid(), market.config.budget_wei);
        // Every payment landed on-chain.
        for p in &report.payments {
            assert!(p.receipt.is_success());
        }
    }

    #[test]
    fn owners_received_their_payments() {
        let (market, report) = run_small();
        let tenth = wei_per_eth().div_rem(&U256::from(10u64)).0;
        for (owner, payment) in market.owners.iter().zip(&report.payments) {
            let balance = market.world.chain(EndpointId(0)).balance(&owner.address);
            // genesis 0.1 ETH − uploadCid fee + payment
            let fee = owner.upload_receipt.as_ref().unwrap().fee;
            let expect = tenth.wrapping_sub(&fee).wrapping_add(&payment.amount_wei);
            assert_eq!(balance, expect);
        }
    }

    #[test]
    fn gas_report_shape_matches_fig5() {
        let (_, report) = run_small();
        let deploy = report
            .gas
            .iter()
            .find(|g| g.label == "deploy")
            .expect("deploy row");
        let upload = report
            .gas
            .iter()
            .find(|g| g.label.starts_with("uploadCid"))
            .expect("upload row");
        let payment = report
            .gas
            .iter()
            .find(|g| g.label.starts_with("payment"))
            .expect("payment row");
        // Fig 5 ordering: deployment carries the heaviest fee.
        assert!(deploy.gas_used > upload.gas_used);
        assert!(upload.gas_used > payment.gas_used);
        assert_eq!(payment.gas_used, 21_000);
    }

    #[test]
    fn blockchain_dominates_owner_time() {
        // Fig 7 claim: "the bulk of time consumption is attributed to
        // blockchain interactions".
        let (market, _) = run_small();
        for rec in &market.owner_recorders {
            let chain_t = rec.get(owner_phase::SEND_CID).as_secs_f64();
            let other = rec.total().as_secs_f64() - chain_t;
            assert!(chain_t > other, "blockchain {chain_t}s vs other {other}s");
        }
    }

    #[test]
    fn cids_on_chain_match_ipfs() {
        let (market, report) = run_small();
        // What the contract stores is exactly what IPFS assigned.
        for (owner, cid_str) in market.owners.iter().zip(&report.cids) {
            assert_eq!(owner.cid.as_ref().unwrap().to_string_form(), *cid_str);
            // CIDv0, 46 chars.
            assert_eq!(cid_str.len(), 46);
            assert!(cid_str.starts_with("Qm"));
        }
    }

    #[test]
    fn step_order_enforced() {
        let mut market = Marketplace::new(MarketConfig::small_test());
        assert!(matches!(
            market.owner_send_cid(0),
            Err(MarketError::StepOrder(_))
        ));
        assert!(matches!(
            market.buyer_download_cids(),
            Err(MarketError::StepOrder(_))
        ));
        assert!(matches!(
            market.owner_upload_model(0),
            Err(MarketError::StepOrder(_))
        ));
        assert!(matches!(
            market.buyer_aggregate_and_pay(),
            Err(MarketError::StepOrder(_))
        ));
    }

    #[test]
    fn event_stream_agrees_with_polling() {
        let mut market = Marketplace::new(MarketConfig::small_test());
        market.deploy_contract().unwrap();
        for i in 0..market.owners.len() {
            market.owner_train(i);
            market.owner_upload_model(i).unwrap();
            market.owner_send_cid(i).unwrap();
        }
        let polled = market.buyer_download_cids().unwrap();
        let watched = market.buyer_watch_upload_events().unwrap();
        assert_eq!(polled, watched);
        assert_eq!(watched.len(), market.owners.len());
    }

    #[test]
    fn session_tolerates_dropped_owner() {
        // An owner who trains and uploads to IPFS but never sends the CID
        // simply doesn't participate: the buyer aggregates and pays the rest.
        let mut market = Marketplace::new(MarketConfig::small_test());
        market.deploy_contract().unwrap();
        let dropout = 1usize;
        for i in 0..market.owners.len() {
            market.owner_train(i);
            market.owner_upload_model(i).unwrap();
            if i != dropout {
                market.owner_send_cid(i).unwrap();
            }
        }
        let cids = market.buyer_download_cids().unwrap();
        assert_eq!(cids.len(), market.owners.len() - 1);
        market.buyer_retrieve_models(&cids).unwrap();
        let report = market.buyer_aggregate_and_pay().unwrap();
        assert!(report.aggregated_accuracy > 0.2);
        // Payments still exhaust the budget across all rows; the dropout's
        // own wallet received no uploadCid receipt.
        assert_eq!(report.total_paid(), market.config.budget_wei);
        assert!(market.owners[dropout].upload_receipt.is_none());
    }

    #[test]
    fn payment_table_renders_checksummed() {
        let (_, report) = run_small();
        let table = render_payment_table(&report.payments);
        assert!(table.contains("Wallet Address"));
        for p in &report.payments {
            assert!(table.contains(&p.address.to_checksum()));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = run_small();
        let (_, b) = run_small();
        assert_eq!(a.aggregated_accuracy, b.aggregated_accuracy);
        assert_eq!(a.local_accuracies, b.local_accuracies);
        assert_eq!(a.cids, b.cids);
        assert_eq!(
            a.payments.iter().map(|p| p.amount_wei).collect::<Vec<_>>(),
            b.payments.iter().map(|p| p.amount_wei).collect::<Vec<_>>()
        );
    }

    #[test]
    fn blueprint_labels_namespace_participants() {
        // Two labelled blueprints of the same config must not collide on
        // addresses — that is what lets several markets share one chain.
        let a = SessionBlueprint::new(MarketConfig::small_test(), "");
        let b = SessionBlueprint::new(MarketConfig::small_test(), "m1/");
        let a_addrs: std::collections::HashSet<_> =
            a.genesis().iter().map(|(addr, _)| *addr).collect();
        assert!(b.genesis().iter().all(|(addr, _)| !a_addrs.contains(addr)));
        // The unlabelled blueprint reproduces the serial construction.
        let market = Marketplace::new(MarketConfig::small_test());
        assert_eq!(a.genesis()[0].0, market.buyer.address);
    }
}
