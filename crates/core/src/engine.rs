//! The discrete-event session engine: concurrent owners, shared blocks,
//! multi-market worlds.
//!
//! The serial [`Marketplace`](crate::market::Marketplace) advances one
//! global clock through every participant's actions in turn, so a
//! 20-owner session pays 20× the blockchain wait it should and every block
//! carries exactly one transaction. This engine drives the same
//! [`MarketSession`] primitives from an [`EventQueue`] instead:
//!
//! - Each owner is a **state machine** (Train → Upload → SendCid → Done)
//!   whose steps fire as events on the owner's own timeline; the world
//!   advances to the earliest pending event, so owners overlap in time.
//! - Transaction submission is **non-blocking**: `uploadCid` calls from
//!   many owners (and deploys/payments from many buyers) sit in the one
//!   shared mempool until a `Mine` event fires at the next 12-second slot
//!   boundary, which packs them into *shared* blocks. Base-fee movement,
//!   per-block gas pressure, and confirmation-wait distributions emerge
//!   from that contention rather than being serialized away.
//! - [`MultiMarket`] runs N complete marketplace sessions over **one**
//!   world — one chain, one swarm — the substrate shape the roadmap's
//!   heavy-traffic north star requires.
//!
//! Determinism: the queue delivers simultaneous events in scheduling
//! order, all state is seeded, and nothing iterates a hash map — a run is
//! a pure function of `(configs, failures, arrivals)`.

use crate::config::MarketConfig;
use crate::market::{
    buyer_phase, owner_phase, Aggregation, LooPayments, MarketError, MarketSession, PaymentRow,
    SessionBlueprint, SessionReport,
};
use crate::scenario::FailurePlan;
use crate::world::{World, WorldError};
use ofl_eth::block::Receipt;
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::Swarm;
use ofl_netsim::clock::{SimDuration, SimInstant};
use ofl_netsim::sched::{EventQueue, Timeline};
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};
use ofl_rpc::{Billed, ModelMarketContract, ProviderMetrics};
use std::collections::BTreeSet;

/// When each owner shows up to start training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Everyone starts at t = 0 (maximum contention).
    Simultaneous,
    /// Owner `i` arrives at `i × interval` (a rolling-admission session).
    Staggered(SimDuration),
}

impl Arrivals {
    fn offset(&self, owner_index: usize) -> SimDuration {
        match self {
            Arrivals::Simultaneous => SimDuration::ZERO,
            Arrivals::Staggered(interval) => SimDuration(interval.0 * owner_index as u64),
        }
    }
}

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Owner arrival pattern (per market).
    pub arrivals: Arrivals,
    /// Whether the per-slot receipt polls for every pending transaction
    /// ride one batched provider round trip (the default) or one request
    /// per hash — the knob `bench_session_engine` sweeps.
    pub batch_receipt_polls: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            arrivals: Arrivals::Simultaneous,
            batch_receipt_polls: true,
        }
    }
}

/// Per-session facts the engine observed that a [`SessionReport`] does not
/// carry (the scenario layer distills outcomes from these).
#[derive(Debug, Clone, Default)]
pub struct SessionDetail {
    /// Every CID the market's contract returned at finalize time.
    pub cids_onchain: Vec<String>,
    /// The subset of CIDs some peer could still serve.
    pub cids_retrieved: Vec<String>,
    /// Injected transactions that (as intended) reverted on-chain.
    pub reverted_tx_count: usize,
}

/// What a whole engine run produced.
pub struct EngineReport {
    /// One report per market, in construction order.
    pub sessions: Vec<SessionReport>,
    /// Engine-level facts per market.
    pub details: Vec<SessionDetail>,
    /// Virtual time from world start to the last buyer's completion.
    pub total_sim_seconds: f64,
    /// `(block_number, distinct owners whose uploadCid landed there)` for
    /// every block that carried at least one CID transaction.
    pub cid_txs_per_block: Vec<(u64, usize)>,
    /// Provider metering for the whole run (shared world): per-method call
    /// counts, round trips, and virtual-time totals.
    pub rpc: ProviderMetrics,
}

impl EngineReport {
    /// The largest number of distinct owners sharing one block — ≥ 2 is the
    /// contention the serial engine could never produce.
    pub fn max_owners_sharing_block(&self) -> usize {
        self.cid_txs_per_block
            .iter()
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0)
    }
}

/// N concurrent marketplace sessions sharing one world: one chain, one
/// swarm, one mempool.
pub struct MultiMarket {
    /// The shared substrate.
    pub world: World,
    /// The markets, each with its own buyer, owners, contract, and budget.
    pub sessions: Vec<MarketSession>,
}

impl MultiMarket {
    /// Builds a shared world from explicit per-market configurations. The
    /// first market's chain parameters and network profile govern the
    /// world; market 0 derives exactly like a solo
    /// [`Marketplace`](crate::market::Marketplace) (so serial-vs-event
    /// comparisons are apples to apples), later markets are namespaced
    /// `m1/`, `m2/`, …
    pub fn new(configs: Vec<MarketConfig>) -> MultiMarket {
        assert!(!configs.is_empty(), "at least one market required");
        let blueprints: Vec<SessionBlueprint> = configs
            .iter()
            .enumerate()
            .map(|(m, c)| {
                let label = if m == 0 {
                    String::new()
                } else {
                    format!("m{m}/")
                };
                SessionBlueprint::new(c.clone(), &label)
            })
            .collect();
        let genesis: Vec<(H160, U256)> = blueprints
            .iter()
            .flat_map(|b| b.genesis().iter().cloned())
            .collect();
        let mut world = World::with_faults(
            configs[0].chain.clone(),
            &genesis,
            configs[0].profile,
            configs[0].rpc_faults,
        );
        let sessions = blueprints
            .into_iter()
            .map(|b| b.instantiate(world.swarm_mut()))
            .collect();
        MultiMarket { world, sessions }
    }

    /// `markets` copies of `base` with decorrelated data/model seeds — the
    /// "4×8" style regimes.
    pub fn replicated(base: &MarketConfig, markets: usize) -> MultiMarket {
        let configs = (0..markets)
            .map(|m| {
                let mut c = base.clone();
                c.seed = base.seed.wrapping_add(m as u64 * 7919);
                c.train.seed = base.train.seed.wrapping_add(m as u64 * 104_729);
                c
            })
            .collect();
        MultiMarket::new(configs)
    }

    /// Runs every session to completion on the event queue. `failures[m]`
    /// is market m's injection plan (missing entries mean clean).
    pub fn run(
        mut self,
        engine: &EngineConfig,
        failures: &[FailurePlan],
    ) -> Result<(MultiMarket, EngineReport), MarketError> {
        self.world.batch_receipt_polls = engine.batch_receipt_polls;
        let report = {
            let mut driver = Driver::new(
                &mut self.world,
                &mut self.sessions,
                engine.arrivals,
                failures,
            );
            driver.run()?
        };
        Ok((self, report))
    }
}

/// Whether any node in the swarm can still serve `cid`.
pub(crate) fn swarm_has(swarm: &Swarm, cid: &Cid) -> bool {
    (0..swarm.len()).any(|i| swarm.node(i).has_block(cid))
}

// ----------------------------------------------------------------------
// The event loop.
// ----------------------------------------------------------------------

/// Events. `m` indexes the market, `i` the owner within it. `Submit*`
/// events fire at the instant the transaction *reaches the mempool* (the
/// RPC broadcast time has already elapsed); `phase_start` pins where the
/// participant's blockchain phase began for Fig 7 accounting.
enum Ev {
    SubmitDeploy {
        m: usize,
    },
    OwnerArrive {
        m: usize,
        i: usize,
    },
    OwnerTrained {
        m: usize,
        i: usize,
    },
    OwnerUploaded {
        m: usize,
        i: usize,
    },
    OwnerSubmitCid {
        m: usize,
        i: usize,
        phase_start: SimInstant,
    },
    Mine {
        slot_secs: u64,
    },
    BuyerFinalize {
        m: usize,
    },
    BuyerSubmitPayments {
        m: usize,
    },
    BuyerDone {
        m: usize,
    },
}

/// Who is waiting on a mined receipt.
enum Wake {
    Deploy {
        m: usize,
    },
    OwnerCid {
        m: usize,
        i: usize,
        phase_start: SimInstant,
    },
    OwnerRevert {
        m: usize,
        i: usize,
    },
    Payment {
        m: usize,
    },
}

struct PendingTx {
    hash: H256,
    submitted_height: u64,
    wake: Wake,
}

/// Per-market run state.
struct MarketRun {
    failures: FailurePlan,
    /// Each owner's local time: where that owner's Train → Upload → SendCid
    /// machine has progressed to, independent of the global clock.
    owner_timelines: Vec<Timeline>,
    /// The buyer's local time (deploy wait, finalize pipeline, payment).
    buyer_timeline: Timeline,
    deploy_phase_start: SimInstant,
    contract_ready: bool,
    /// Owners whose CID is ready but whose contract isn't deployed yet.
    parked: Vec<usize>,
    owners_unresolved: usize,
    reverted_tx_count: usize,
    payment_phase_start: SimInstant,
    outstanding_payments: usize,
    paid: Vec<(H160, U256)>,
    payment_hashes: Vec<H256>,
    finalize: Option<(Aggregation, LooPayments)>,
    detail: SessionDetail,
    report: Option<SessionReport>,
}

struct Driver<'a> {
    world: &'a mut World,
    sessions: &'a mut [MarketSession],
    arrivals: Arrivals,
    queue: EventQueue<Ev>,
    pending: Vec<PendingTx>,
    scheduled_slots: BTreeSet<u64>,
    markets: Vec<MarketRun>,
}

impl<'a> Driver<'a> {
    fn new(
        world: &'a mut World,
        sessions: &'a mut [MarketSession],
        arrivals: Arrivals,
        failures: &[FailurePlan],
    ) -> Driver<'a> {
        let markets = (0..sessions.len())
            .map(|m| MarketRun {
                failures: failures.get(m).cloned().unwrap_or_default(),
                owner_timelines: vec![Timeline::default(); sessions[m].owners.len()],
                buyer_timeline: Timeline::default(),
                deploy_phase_start: SimInstant(0),
                contract_ready: false,
                parked: Vec::new(),
                owners_unresolved: sessions[m].owners.len(),
                reverted_tx_count: 0,
                payment_phase_start: SimInstant(0),
                outstanding_payments: 0,
                paid: Vec::new(),
                payment_hashes: Vec::new(),
                finalize: None,
                detail: SessionDetail::default(),
                report: None,
            })
            .collect();
        Driver {
            world,
            sessions,
            arrivals,
            queue: EventQueue::new(),
            pending: Vec::new(),
            scheduled_slots: BTreeSet::new(),
            markets,
        }
    }

    fn run(&mut self) -> Result<EngineReport, MarketError> {
        // Seed the queue: every buyer broadcasts its deploy immediately;
        // every owner arrives per the schedule.
        for m in 0..self.sessions.len() {
            let deploy_rpc = self
                .world
                .tx_submit_time(ModelMarketContract::init_code().len());
            self.queue
                .schedule(SimInstant(deploy_rpc.0), Ev::SubmitDeploy { m });
            for i in 0..self.sessions[m].owners.len() {
                self.queue.schedule(
                    SimInstant(self.arrivals.offset(i).0),
                    Ev::OwnerArrive { m, i },
                );
            }
        }

        while let Some((t, ev)) = self.queue.pop() {
            self.world.clock.advance_to(t);
            match ev {
                Ev::SubmitDeploy { m } => self.on_submit_deploy(m, t)?,
                Ev::OwnerArrive { m, i } => self.on_owner_arrive(m, i, t),
                Ev::OwnerTrained { m, i } => self.on_owner_trained(m, i, t)?,
                Ev::OwnerUploaded { m, i } => self.on_owner_uploaded(m, i, t)?,
                Ev::OwnerSubmitCid { m, i, phase_start } => {
                    self.on_owner_submit_cid(m, i, phase_start, t)?
                }
                Ev::Mine { slot_secs } => self.on_mine(slot_secs)?,
                Ev::BuyerFinalize { m } => self.on_buyer_finalize(m, t)?,
                Ev::BuyerSubmitPayments { m } => self.on_buyer_submit_payments(m, t)?,
                Ev::BuyerDone { m } => self.on_buyer_done(m, t)?,
            }
        }

        let sessions: Vec<SessionReport> = self
            .markets
            .iter_mut()
            .map(|run| run.report.take().expect("every market completed"))
            .collect();
        let details: Vec<SessionDetail> =
            self.markets.iter().map(|run| run.detail.clone()).collect();
        let cid_txs_per_block = self.cid_block_occupancy();
        Ok(EngineReport {
            sessions,
            details,
            total_sim_seconds: self.world.clock.elapsed_secs(),
            cid_txs_per_block,
            rpc: self.world.rpc_metrics(),
        })
    }

    // -- scheduling helpers ------------------------------------------------

    /// Schedules a `Mine` event for the given slot (once per slot).
    fn schedule_mine(&mut self, slot_secs: u64) {
        if self.scheduled_slots.insert(slot_secs) {
            self.queue
                .schedule(SimInstant(slot_secs * 1_000_000), Ev::Mine { slot_secs });
        }
    }

    /// Schedules owner `i`'s CID broadcast: the owner's timeline advances
    /// to `now` (it may have been blocked waiting for the contract), the
    /// RPC transfer runs from there, and the mempool sees the transaction
    /// when it completes.
    fn schedule_cid_submit(&mut self, m: usize, i: usize, now: SimInstant) {
        let data_len = if self.markets[m].failures.revert_cid_tx.contains(&i) {
            4 // the bogus selector
        } else {
            match self.sessions[m].cid_calldata(i) {
                Ok(data) => data.len(),
                Err(_) => 4,
            }
        };
        let rpc = self.world.tx_submit_time(data_len);
        let timeline = &mut self.markets[m].owner_timelines[i];
        let phase_start = timeline.advance_to(now);
        let submit_at = timeline.advance(rpc);
        self.queue
            .schedule(submit_at, Ev::OwnerSubmitCid { m, i, phase_start });
    }

    /// Marks owner `i` finished (confirmed, reverted, or dropped out); the
    /// buyer finalizes once every owner is resolved.
    fn resolve_owner(&mut self, m: usize, at: SimInstant) {
        self.markets[m].owners_unresolved -= 1;
        if self.markets[m].owners_unresolved == 0 {
            self.queue.schedule(at, Ev::BuyerFinalize { m });
        }
    }

    // -- event handlers ----------------------------------------------------

    fn on_submit_deploy(&mut self, m: usize, _t: SimInstant) -> Result<(), MarketError> {
        let buyer = self.sessions[m].buyer.address;
        let hash = self.world.submit_tx(
            &self.sessions[m].wallet,
            &buyer,
            None,
            U256::ZERO,
            ModelMarketContract::init_code(),
        )?;
        self.pending.push(PendingTx {
            hash,
            submitted_height: self.world.chain().height(),
            wake: Wake::Deploy { m },
        });
        let slot = self.world.next_slot_secs(self.world.clock.now());
        self.schedule_mine(slot);
        Ok(())
    }

    fn on_owner_arrive(&mut self, m: usize, i: usize, t: SimInstant) {
        if self.markets[m].failures.freeload.contains(&i) {
            // Shrink the silo to (at most) 3 examples before training; the
            // owner still goes through the whole honest protocol.
            let len = self.sessions[m].owners[i].data.len();
            let keep: Vec<usize> = (0..len.min(3)).collect();
            self.sessions[m].owners[i].data = self.sessions[m].owners[i].data.subset(&keep);
        }
        let duration = self.sessions[m].train_owner(i);
        self.sessions[m].owner_recorders[i].add(owner_phase::TRAIN, duration);
        let timeline = &mut self.markets[m].owner_timelines[i];
        timeline.advance_to(t);
        let done = timeline.advance(duration);
        self.queue.schedule(done, Ev::OwnerTrained { m, i });
    }

    fn on_owner_trained(&mut self, m: usize, i: usize, t: SimInstant) -> Result<(), MarketError> {
        let (_cid, duration) = self.sessions[m].upload_owner(self.world, i)?;
        self.sessions[m].owner_recorders[i].add(owner_phase::UPLOAD, duration);
        let timeline = &mut self.markets[m].owner_timelines[i];
        timeline.advance_to(t);
        let done = timeline.advance(duration);
        self.queue.schedule(done, Ev::OwnerUploaded { m, i });
        Ok(())
    }

    fn on_owner_uploaded(&mut self, m: usize, i: usize, t: SimInstant) -> Result<(), MarketError> {
        if self.markets[m].failures.dropout.contains(&i) {
            // Silent dropout: trained and uploaded, never tells the chain.
            self.resolve_owner(m, t);
            return Ok(());
        }
        if self.markets[m].contract_ready {
            self.schedule_cid_submit(m, i, t);
        } else {
            // The contract isn't deployed yet; the owner's DApp polls and
            // submits the moment the deployment confirms.
            self.markets[m].parked.push(i);
        }
        Ok(())
    }

    fn on_owner_submit_cid(
        &mut self,
        m: usize,
        i: usize,
        phase_start: SimInstant,
        t: SimInstant,
    ) -> Result<(), MarketError> {
        let hash;
        let wake;
        if self.markets[m].failures.revert_cid_tx.contains(&i) {
            // An unknown selector: the contract's dispatcher reverts, the
            // owner pays intrinsic+execution gas, no CID lands.
            let contract = self.sessions[m]
                .contract
                .ok_or(MarketError::StepOrder("deploy before sending CIDs"))?;
            let from = self.sessions[m].owners[i].address;
            hash = self.world.submit_tx(
                &self.sessions[m].wallet,
                &from,
                Some(contract.address),
                U256::ZERO,
                vec![0xde, 0xad, 0xbe, 0xef],
            )?;
            wake = Wake::OwnerRevert { m, i };
        } else {
            hash = self.sessions[m].submit_cid(self.world, i)?;
            wake = Wake::OwnerCid { m, i, phase_start };
        }
        self.pending.push(PendingTx {
            hash,
            submitted_height: self.world.chain().height(),
            wake,
        });
        let slot = self.world.next_slot_secs(t);
        self.schedule_mine(slot);
        Ok(())
    }

    fn on_mine(&mut self, slot_secs: u64) -> Result<(), MarketError> {
        self.scheduled_slots.remove(&slot_secs);
        self.world.mine_slot(slot_secs);
        let now = self.world.clock.now();

        // One receipt poll for *everything* pending — a single batched
        // provider round trip (or N per-call polls when the engine config
        // says so); everyone waiting wakes when the answer lands.
        let hashes: Vec<H256> = self.pending.iter().map(|p| p.hash).collect();
        let Billed {
            value: receipts,
            cost,
        } = self.world.poll_receipts(&hashes);
        let wake_at = SimInstant(now.0 + cost.0);

        // Deliver receipts to whoever was waiting on this block.
        let pending = std::mem::take(&mut self.pending);
        for (p, receipt) in pending.into_iter().zip(receipts) {
            let Some(receipt) = receipt else {
                self.pending.push(p);
                continue;
            };
            match p.wake {
                Wake::Deploy { m } => self.on_deploy_confirmed(m, &receipt, wake_at)?,
                Wake::OwnerCid { m, i, phase_start } => {
                    self.sessions[m].finish_cid(i, &receipt)?;
                    self.sessions[m].owner_recorders[i]
                        .add(owner_phase::SEND_CID, wake_at.since(phase_start));
                    self.markets[m].owner_timelines[i].advance_to(wake_at);
                    self.resolve_owner(m, wake_at);
                }
                Wake::OwnerRevert { m, i } => {
                    if receipt.is_success() {
                        return Err(MarketError::TxFailed(format!(
                            "injected revert for owner {i} unexpectedly succeeded"
                        )));
                    }
                    self.markets[m].reverted_tx_count += 1;
                    self.resolve_owner(m, wake_at);
                }
                Wake::Payment { m } => {
                    self.markets[m].outstanding_payments -= 1;
                    if self.markets[m].outstanding_payments == 0 {
                        self.queue.schedule(wake_at, Ev::BuyerDone { m });
                    }
                }
            }
        }

        // Anything still unmined: detect evictions and enforce the
        // configurable confirmation cap (same budget as the serial
        // `World::mine_until`: give up once `max_wait_slots` slots have been
        // mined since submission, reporting the actual count).
        let max_wait = self.world.chain().config().max_wait_slots;
        let height = self.world.chain().height();
        let mut timed_out = Vec::new();
        let mut slots_mined = 0u64;
        for p in &self.pending {
            // Backstage check (not client traffic): a transaction neither
            // mined nor pending was silently evicted, while a mined one the
            // flaky poll merely missed will be re-polled next slot.
            if self.world.chain().receipt(&p.hash).is_some() {
                continue; // mined; the flaky poll just missed it this slot
            }
            if !self.world.chain().is_pending(&p.hash) {
                return Err(MarketError::World(WorldError::TxDropped(p.hash)));
            }
            let waited = height.saturating_sub(p.submitted_height);
            if waited >= max_wait {
                timed_out.push(p.hash);
                slots_mined = slots_mined.max(waited);
            }
        }
        if !timed_out.is_empty() {
            return Err(MarketError::World(WorldError::ConfirmationTimeout {
                slots_mined,
                pending: timed_out,
            }));
        }

        // Keep slots coming while work is queued — or while a flaky poll
        // left receipts undelivered (the next slot's poll retries them).
        if self.world.chain().mempool_len() > 0 || !self.pending.is_empty() {
            self.schedule_mine(slot_secs + self.world.chain().config().block_time);
        }
        Ok(())
    }

    fn on_deploy_confirmed(
        &mut self,
        m: usize,
        receipt: &Receipt,
        wake_at: SimInstant,
    ) -> Result<(), MarketError> {
        self.sessions[m].finish_deploy(receipt)?;
        let start = self.markets[m].deploy_phase_start;
        self.sessions[m]
            .buyer_recorder
            .add(buyer_phase::DEPLOY, wake_at.since(start));
        self.markets[m].buyer_timeline.advance_to(wake_at);
        self.markets[m].contract_ready = true;
        // Release owners who finished uploading before the contract existed.
        let parked = std::mem::take(&mut self.markets[m].parked);
        for i in parked {
            self.schedule_cid_submit(m, i, wake_at);
        }
        Ok(())
    }

    fn on_buyer_finalize(&mut self, m: usize, t: SimInstant) -> Result<(), MarketError> {
        // Availability failure: after the CIDs are public, the blocks vanish.
        let drop_blocks = self.markets[m].failures.drop_ipfs_blocks.clone();
        for i in drop_blocks {
            if let Some(cid) = self.sessions[m].owners[i].cid.clone() {
                let node_index = self.sessions[m].owners[i].ipfs_node;
                let node = self.world.swarm_mut().node_mut(node_index);
                node.store_mut().unpin(&cid);
                node.store_mut().gc();
            }
        }

        let session = &mut self.sessions[m];
        let (cids_onchain, d_download) = session.download_cids_computed(self.world)?;
        session
            .buyer_recorder
            .add(buyer_phase::DOWNLOAD_CIDS, d_download);
        // A production client gives up on unfetchable CIDs; retrieve only
        // content some peer can still serve.
        let cids_retrieved: Vec<String> = cids_onchain
            .iter()
            .filter(|s| {
                Cid::parse(s)
                    .map(|c| swarm_has(self.world.swarm(), &c))
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        let (_n, d_retrieve) = session.retrieve_models_computed(self.world, &cids_retrieved)?;
        session
            .buyer_recorder
            .add(buyer_phase::RETRIEVE, d_retrieve);
        let (agg, d_agg) = session.aggregate_computed(self.world)?;
        session.buyer_recorder.add(buyer_phase::AGGREGATE, d_agg);
        let (loo, d_loo) = session.loo_payments_computed(self.world, &agg);

        // The buyer pipelines download → retrieve → aggregate → /loo →
        // payment broadcast on its own timeline; payments reach the mempool
        // together after one RPC transfer.
        let pay_rpc = self.world.tx_submit_time(0);
        let run = &mut self.markets[m];
        run.detail.cids_onchain = cids_onchain;
        run.detail.cids_retrieved = cids_retrieved;
        run.finalize = Some((agg, loo));
        run.buyer_timeline.advance_to(t);
        run.buyer_timeline.advance(d_download);
        run.buyer_timeline.advance(d_retrieve);
        run.payment_phase_start = run.buyer_timeline.advance(d_agg);
        run.buyer_timeline.advance(d_loo);
        let pay_at = run.buyer_timeline.advance(pay_rpc);
        self.queue.schedule(pay_at, Ev::BuyerSubmitPayments { m });
        Ok(())
    }

    fn on_buyer_submit_payments(&mut self, m: usize, t: SimInstant) -> Result<(), MarketError> {
        let (agg, loo) = self.markets[m]
            .finalize
            .as_ref()
            .expect("finalize precedes payments");
        // Fee terms are priced at broadcast time, against the base fee the
        // shared chain has *now* — not at finalize time.
        let txs = self.sessions[m].build_payment_txs(self.world.chain(), agg, loo);
        let mut hashes = Vec::new();
        let mut paid = Vec::new();
        for (address, amount, tx) in txs {
            // The one RPC transfer for the payment batch was charged on the
            // buyer's timeline at finalize; retries (flaky provider) smear
            // onto the global clock inside `broadcast_raw`'s bill, which the
            // engine deliberately leaves unapplied.
            let (result, _cost) = self.world.broadcast_raw(&tx.encode());
            let hash = result.map_err(|e| MarketError::TxFailed(format!("payment: {e}")))?;
            self.pending.push(PendingTx {
                hash,
                submitted_height: self.world.chain().height(),
                wake: Wake::Payment { m },
            });
            hashes.push(hash);
            paid.push((address, amount));
        }
        let run = &mut self.markets[m];
        run.outstanding_payments = hashes.len();
        run.payment_hashes = hashes;
        run.paid = paid;
        if run.outstanding_payments == 0 {
            self.queue.schedule(t, Ev::BuyerDone { m });
        } else {
            let slot = self.world.next_slot_secs(t);
            self.schedule_mine(slot);
        }
        Ok(())
    }

    fn on_buyer_done(&mut self, m: usize, t: SimInstant) -> Result<(), MarketError> {
        let run = &mut self.markets[m];
        let mut payments = Vec::with_capacity(run.payment_hashes.len());
        for ((address, amount), hash) in run.paid.iter().zip(&run.payment_hashes) {
            let receipt = self
                .world
                .chain()
                .receipt(hash)
                .expect("payment mined")
                .clone();
            payments.push(PaymentRow {
                address: *address,
                amount_wei: *amount,
                receipt,
            });
        }
        run.buyer_timeline.advance_to(t);
        let session = &mut self.sessions[m];
        session
            .buyer_recorder
            .add(buyer_phase::PAYMENT, t.since(run.payment_phase_start));
        let (agg, loo) = run.finalize.take().expect("finalize state present");
        run.detail.reverted_tx_count = run.reverted_tx_count;
        let total_secs = run.buyer_timeline.now().0 as f64 / 1e6;
        run.report = Some(session.assemble_report(
            &agg,
            &loo,
            payments,
            total_secs,
            self.world.rpc_metrics(),
        ));
        Ok(())
    }

    /// For every mined block, how many distinct owners' `uploadCid`
    /// transactions it carries (across all markets).
    fn cid_block_occupancy(&self) -> Vec<(u64, usize)> {
        let mut per_block: std::collections::BTreeMap<u64, usize> =
            std::collections::BTreeMap::new();
        for session in self.sessions.iter() {
            for owner in &session.owners {
                if let Some(receipt) = &owner.upload_receipt {
                    *per_block.entry(receipt.block_number).or_insert(0) += 1;
                }
            }
        }
        per_block.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarketConfig;
    use crate::market::Marketplace;

    fn tiny(n_owners: usize) -> MarketConfig {
        MarketConfig {
            n_owners,
            n_train: 100 * n_owners,
            n_test: 80,
            train: ofl_fl::client::TrainConfig {
                dims: vec![784, 16, 10],
                epochs: 1,
                ..ofl_fl::client::TrainConfig::default()
            },
            ..MarketConfig::small_test()
        }
    }

    #[test]
    fn concurrent_owners_share_blocks_and_finish_sooner() {
        let config = tiny(4);
        let (_, serial_report) = Marketplace::run(config.clone()).expect("serial run");
        let mm = MultiMarket::new(vec![config]);
        let (mm, report) = mm
            .run(&EngineConfig::default(), &[])
            .expect("event-driven run");
        assert_eq!(report.sessions.len(), 1);
        // All four CID transactions land in one block.
        assert!(report.max_owners_sharing_block() >= 2);
        // Concurrency strictly beats the serial schedule.
        assert!(
            report.sessions[0].total_sim_seconds < serial_report.total_sim_seconds,
            "event {} vs serial {}",
            report.sessions[0].total_sim_seconds,
            serial_report.total_sim_seconds
        );
        // Same participants, same models, same CIDs — only the schedule
        // changed.
        assert_eq!(report.sessions[0].cids, serial_report.cids);
        assert_eq!(
            report.sessions[0].payments.len(),
            serial_report.payments.len()
        );
        assert!(mm.world.chain().height() >= 1);
    }

    #[test]
    fn multi_market_sessions_complete_on_one_chain() {
        let mm = MultiMarket::replicated(&tiny(3), 2);
        assert_eq!(mm.sessions.len(), 2);
        let genesis_supply = mm.world.chain().state().total_supply();
        let (mm, report) = mm.run(&EngineConfig::default(), &[]).expect("runs");
        assert_eq!(report.sessions.len(), 2);
        for session_report in &report.sessions {
            assert_eq!(session_report.payments.len(), 3);
        }
        // Distinct markets, distinct CIDs (decorrelated seeds).
        assert_ne!(report.sessions[0].cids, report.sessions[1].cids);
        // One shared chain conserved ETH across both markets.
        let live = mm.world.chain().state().total_supply();
        let burned = mm.world.chain().burned();
        assert_eq!(live.wrapping_add(&burned), genesis_supply);
    }

    #[test]
    fn staggered_arrivals_spread_cid_blocks() {
        let config = tiny(3);
        let engine = EngineConfig {
            arrivals: Arrivals::Staggered(SimDuration::from_secs(30)),
            ..EngineConfig::default()
        };
        let (_, report) = MultiMarket::new(vec![config])
            .run(&engine, &[])
            .expect("runs");
        // 30 s apart with 12 s slots: every owner's CID lands in its own
        // block.
        assert!(report.cid_txs_per_block.len() >= 2);
        assert_eq!(report.max_owners_sharing_block(), 1);
    }

    #[test]
    fn engine_reruns_are_deterministic() {
        let run = || {
            let (_, report) = MultiMarket::replicated(&tiny(3), 2)
                .run(&EngineConfig::default(), &[])
                .expect("runs");
            report
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_sim_seconds, b.total_sim_seconds);
        assert_eq!(a.cid_txs_per_block, b.cid_txs_per_block);
        for (ra, rb) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(ra.cids, rb.cids);
            assert_eq!(ra.total_sim_seconds, rb.total_sim_seconds);
            assert_eq!(
                ra.payments.iter().map(|p| p.amount_wei).collect::<Vec<_>>(),
                rb.payments.iter().map(|p| p.amount_wei).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn engine_supports_failure_injection() {
        let config = tiny(4);
        let failures = FailurePlan {
            dropout: vec![1],
            revert_cid_tx: vec![2],
            ..FailurePlan::clean()
        };
        let (_, report) = MultiMarket::new(vec![config])
            .run(&EngineConfig::default(), &[failures])
            .expect("runs");
        let detail = &report.details[0];
        assert_eq!(detail.cids_onchain.len(), 2);
        assert_eq!(detail.reverted_tx_count, 1);
        assert_eq!(report.sessions[0].payments.len(), 2);
    }
}
