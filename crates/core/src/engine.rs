//! The discrete-event session engine: concurrent owners, shared blocks,
//! multi-market worlds.
//!
//! The serial [`Marketplace`](crate::market::Marketplace) advances one
//! global clock through every participant's actions in turn, so a
//! 20-owner session pays 20× the blockchain wait it should and every block
//! carries exactly one transaction. This engine drives the same
//! [`MarketSession`] primitives from an [`EventQueue`] instead:
//!
//! - Each owner is a **state machine** (Train → Upload → SendCid → Done)
//!   whose steps fire as events on the owner's own timeline; the world
//!   advances to the earliest pending event, so owners overlap in time.
//! - Transaction submission is **non-blocking**: `uploadCid` calls from
//!   many owners (and deploys/payments from many buyers) sit in their
//!   shard's mempool until a `Mine` event fires at the next 12-second slot
//!   boundary, which packs them into *shared* blocks. Base-fee movement,
//!   per-block gas pressure, and confirmation-wait distributions emerge
//!   from that contention rather than being serialized away.
//! - [`MultiMarket`] runs N complete marketplace sessions over **one**
//!   world whose provider pool fronts one or more shards. Markets placed
//!   on the same [`EndpointId`] contend for the same blocks exactly as a
//!   single-chain world; markets placed on different shards land their CID
//!   transactions in different chains' blocks, which is how the engine
//!   compares same-shard against cross-shard contention.
//!
//! Determinism: the queue delivers simultaneous events in scheduling
//! order, all state is seeded, and nothing iterates a hash map — a run is
//! a pure function of `(configs, placements, failures, arrivals)`.

use crate::config::MarketConfig;
use crate::market::{
    buyer_phase, owner_phase, Aggregation, LooPayments, MarketError, MarketSession, PaymentRow,
    SessionBlueprint, SessionReport,
};
use crate::scenario::FailurePlan;
use crate::world::{ShardConfig, ShardSpec, World, WorldError};
use ofl_eth::block::Receipt;
use ofl_eth::chain::LogFilter;
use ofl_eth::tx::{sign_tx, TxRequest};
use ofl_ipfs::cid::Cid;
use ofl_netsim::clock::{SimDuration, SimInstant};
use ofl_netsim::sched::{EventQueue, Timeline};
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};
use ofl_rpc::{EndpointId, ModelMarketContract, ProviderMetrics, SubEvent, SubscriptionKind};
use std::collections::BTreeSet;

/// When each owner shows up to start training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Everyone starts at t = 0 (maximum contention).
    Simultaneous,
    /// Owner `i` arrives at `i × interval` (a rolling-admission session).
    Staggered(SimDuration),
}

impl Arrivals {
    fn offset(&self, owner_index: usize) -> SimDuration {
        match self {
            Arrivals::Simultaneous => SimDuration::ZERO,
            Arrivals::Staggered(interval) => SimDuration(interval.0 * owner_index as u64),
        }
    }
}

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Owner arrival pattern (per market).
    pub arrivals: Arrivals,
    /// Whether the per-slot receipt polls for every pending transaction
    /// ride one batched provider round trip per shard (the default) or one
    /// request per hash — the knob `bench_session_engine` sweeps.
    pub batch_receipt_polls: bool,
    /// Whether the buyer's step-5 CID download rides `cidCount` + one
    /// batched `getCid` round trip (the default) or one `eth_call` per
    /// index — the Fig 7b knob `bench_session_engine` sweeps.
    pub batch_cid_reads: bool,
    /// Open push subscriptions (`newHeads`, all-logs, `pendingTxs`) on
    /// every shard and fold each delivery into
    /// [`EngineReport::event_digest`], keyed `(slot, shard, seq)` — the
    /// knob the tri-backend pinning tests flip to prove in-process, pipe,
    /// and TCP worlds emit bit-identical event streams.
    pub watch_events: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            arrivals: Arrivals::Simultaneous,
            batch_receipt_polls: true,
            batch_cid_reads: true,
            watch_events: false,
        }
    }
}

/// Per-session facts the engine observed that a [`SessionReport`] does not
/// carry (the scenario layer distills outcomes from these).
#[derive(Debug, Clone, Default)]
pub struct SessionDetail {
    /// Every CID the market's contract returned at finalize time.
    pub cids_onchain: Vec<String>,
    /// The subset of CIDs some peer could still serve.
    pub cids_retrieved: Vec<String>,
    /// Injected transactions that (as intended) reverted on-chain.
    pub reverted_tx_count: usize,
    /// Victim `uploadCid` broadcasts the mempool-watching adversary outbid
    /// (zero unless the market's plan set
    /// [`FailurePlan::mempool_front_run`]).
    pub front_run_count: usize,
}

/// What a whole engine run produced.
pub struct EngineReport {
    /// One report per market, in construction order.
    pub sessions: Vec<SessionReport>,
    /// Engine-level facts per market.
    pub details: Vec<SessionDetail>,
    /// Virtual time from world start to the last buyer's completion.
    pub total_sim_seconds: f64,
    /// `(endpoint, block_number, distinct owners whose uploadCid landed
    /// there)` for every block that carried at least one CID transaction —
    /// cross-shard placements show up as rows with different endpoints.
    pub cid_txs_per_block: Vec<(EndpointId, u64, usize)>,
    /// Provider metering for the whole run: every endpoint's counters
    /// rolled up into one snapshot.
    pub rpc: ProviderMetrics,
    /// Per-endpoint provider metering, indexed by `EndpointId.0` — what a
    /// sharded run uses to see which shard carried which traffic.
    pub rpc_per_endpoint: Vec<ProviderMetrics>,
    /// Push deliveries the engine's own watchers received (zero unless
    /// [`EngineConfig::watch_events`] was set).
    pub events_observed: u64,
    /// Order-sensitive FNV-1a digest of the watched event stream, keyed
    /// `(slot, shard, sub, seq, event)` — identical across in-process,
    /// pipe, and TCP shard mountings of the same fleet.
    pub event_digest: u64,
    /// Total blocks mined across all shards (one per shard per slot) —
    /// the denominator of the push-vs-poll comparison: a cursor-polling
    /// watcher pays per mined block, a subscription watcher does not.
    pub blocks_mined: u64,
}

impl EngineReport {
    /// The largest number of distinct owners sharing one block (on any
    /// shard) — ≥ 2 is the contention the serial engine could never
    /// produce.
    pub fn max_owners_sharing_block(&self) -> usize {
        self.cid_txs_per_block
            .iter()
            .map(|(_, _, n)| *n)
            .max()
            .unwrap_or(0)
    }

    /// The shards that carried at least one CID transaction, deduplicated
    /// in endpoint order.
    pub fn shards_with_cid_txs(&self) -> Vec<EndpointId> {
        let mut shards: Vec<EndpointId> =
            self.cid_txs_per_block.iter().map(|(e, _, _)| *e).collect();
        shards.sort();
        shards.dedup();
        shards
    }
}

/// N concurrent marketplace sessions sharing one world: one provider pool
/// of one or more shards, each market pinned to its
/// [`MarketConfig::placement`] endpoint.
pub struct MultiMarket {
    /// The shared substrate.
    pub world: World,
    /// The markets, each with its own buyer, owners, contract, and budget.
    pub sessions: Vec<MarketSession>,
}

impl MultiMarket {
    /// Builds a shared world from explicit per-market configurations, with
    /// exactly as many shards as the largest placement requires. The first
    /// market's chain parameters, network profile, and fault/quota knobs
    /// govern every shard; market 0 derives exactly like a solo
    /// [`Marketplace`](crate::market::Marketplace) (so serial-vs-event
    /// comparisons are apples to apples), later markets are namespaced
    /// `m1/`, `m2/`, …
    pub fn new(configs: Vec<MarketConfig>) -> MultiMarket {
        let shards = configs
            .iter()
            .map(|c| c.placement.0 + 1)
            .max()
            .expect("at least one market required");
        MultiMarket::with_shards(configs, shards)
    }

    /// Like [`MultiMarket::new`], but with an explicit shard count (≥ the
    /// largest placement + 1) — how a world keeps idle endpoints around,
    /// e.g. to show that two markets pinned to shard 0 of a 2-shard pool
    /// behave bit-identically to a 1-shard world.
    pub fn with_shards(configs: Vec<MarketConfig>, shards: usize) -> MultiMarket {
        MultiMarket::with_shards_via(configs, shards, ShardSpec::Local)
    }

    /// Like [`MultiMarket::with_shards`], but every shard's specification
    /// passes through `mount` before the world comes up — how a scenario
    /// moves one (or every) shard out of process: return
    /// `spec.into_remote(endpoint)` (or a pre-built
    /// [`ShardSpec::Mounted`] stack) for the shards a daemon should serve,
    /// and `ShardSpec::Local(config)` for the rest.
    pub fn with_shards_via(
        configs: Vec<MarketConfig>,
        shards: usize,
        mut mount: impl FnMut(ShardConfig) -> ShardSpec,
    ) -> MultiMarket {
        assert!(!configs.is_empty(), "at least one market required");
        assert!(
            configs.iter().all(|c| c.placement.0 < shards),
            "every placement must name an existing shard"
        );
        let blueprints: Vec<SessionBlueprint> = configs
            .iter()
            .enumerate()
            .map(|(m, c)| {
                let label = if m == 0 {
                    String::new()
                } else {
                    format!("m{m}/")
                };
                SessionBlueprint::new(c.clone(), &label)
            })
            .collect();
        // Each shard funds exactly the markets placed on it.
        let specs: Vec<ShardSpec> = (0..shards)
            .map(|s| {
                let genesis: Vec<(H160, U256)> = blueprints
                    .iter()
                    .zip(&configs)
                    .filter(|(_, c)| c.placement.0 == s)
                    .flat_map(|(b, _)| b.genesis().iter().cloned())
                    .collect();
                mount(ShardConfig {
                    chain: configs[0].chain.clone(),
                    genesis,
                    faults: configs[0].rpc_faults,
                    rate_limit: configs[0].rpc_rate_limit,
                    stale: configs[0].rpc_stale,
                    spike: configs[0].rpc_spike,
                    reorder: configs[0].rpc_reorder,
                    sub_lag: configs[0].rpc_sub_lag,
                })
            })
            .collect();
        let mut world = World::from_shards(specs, configs[0].profile);
        let sessions = blueprints
            .into_iter()
            .zip(&configs)
            .map(|(b, c)| b.instantiate_with(|label| world.spawn_ipfs_node(c.placement, label)))
            .collect();
        MultiMarket { world, sessions }
    }

    /// `markets` copies of `base` with decorrelated data/model seeds — the
    /// "4×8" style regimes — all placed on one shard.
    pub fn replicated(base: &MarketConfig, markets: usize) -> MultiMarket {
        MultiMarket::new(Self::replica_configs(base, markets, 1))
    }

    /// `markets` decorrelated copies of `base` spread round-robin across
    /// `shards` chains — the cross-shard contention regime. A shard count
    /// of 0 is treated as 1 (a pool cannot be empty).
    pub fn replicated_sharded(base: &MarketConfig, markets: usize, shards: usize) -> MultiMarket {
        let shards = shards.max(1);
        MultiMarket::with_shards(Self::replica_configs(base, markets, shards), shards)
    }

    /// The decorrelated per-market configurations `replicated`/
    /// `replicated_sharded` build — public so callers can reuse the exact
    /// same fleet with a different shard mounting.
    pub fn replica_configs(
        base: &MarketConfig,
        markets: usize,
        shards: usize,
    ) -> Vec<MarketConfig> {
        (0..markets)
            .map(|m| {
                let mut c = base.clone();
                c.seed = base.seed.wrapping_add(m as u64 * 7919);
                c.train.seed = base.train.seed.wrapping_add(m as u64 * 104_729);
                c.placement = EndpointId(m % shards.max(1));
                c
            })
            .collect()
    }

    /// Runs every session to completion on the event queue. `failures[m]`
    /// is market m's injection plan (missing entries mean clean).
    pub fn run(
        mut self,
        engine: &EngineConfig,
        failures: &[FailurePlan],
    ) -> Result<(MultiMarket, EngineReport), MarketError> {
        self.world.batch_receipt_polls = engine.batch_receipt_polls;
        self.world.batch_cid_reads = engine.batch_cid_reads;
        let report = {
            let mut driver = Driver::new(&mut self.world, &mut self.sessions, engine, failures);
            driver.run()?
        };
        Ok((self, report))
    }
}

// ----------------------------------------------------------------------
// The event loop.
// ----------------------------------------------------------------------

/// Events. `m` indexes the market, `i` the owner within it. `Submit*`
/// events fire at the instant the transaction *reaches the mempool* (the
/// RPC broadcast time has already elapsed); `phase_start` pins where the
/// participant's blockchain phase began for Fig 7 accounting.
enum Ev {
    SubmitDeploy {
        m: usize,
    },
    OwnerArrive {
        m: usize,
        i: usize,
    },
    OwnerTrained {
        m: usize,
        i: usize,
    },
    OwnerUploaded {
        m: usize,
        i: usize,
    },
    OwnerSubmitCid {
        m: usize,
        i: usize,
        phase_start: SimInstant,
    },
    Mine {
        slot_secs: u64,
    },
    BuyerFinalize {
        m: usize,
    },
    BuyerSubmitPayments {
        m: usize,
    },
    BuyerDone {
        m: usize,
    },
}

/// Who is waiting on a mined receipt.
enum Wake {
    Deploy {
        m: usize,
    },
    OwnerCid {
        m: usize,
        i: usize,
        phase_start: SimInstant,
    },
    OwnerRevert {
        m: usize,
        i: usize,
    },
    Payment {
        m: usize,
    },
}

struct PendingTx {
    /// Which shard the transaction was broadcast to.
    endpoint: EndpointId,
    hash: H256,
    submitted_height: u64,
    wake: Wake,
    /// Set once the hash appears in a mined block — only then does the
    /// per-slot receipt poll spend client RPC traffic on it. A mined
    /// transaction whose poll misses (flaky drop, stale replica) stays
    /// flagged and is re-polled next slot.
    mined: bool,
}

/// Per-market run state.
struct MarketRun {
    failures: FailurePlan,
    /// Each owner's local time: where that owner's Train → Upload → SendCid
    /// machine has progressed to, independent of the global clock.
    owner_timelines: Vec<Timeline>,
    /// The buyer's local time (deploy wait, finalize pipeline, payment).
    buyer_timeline: Timeline,
    deploy_phase_start: SimInstant,
    contract_ready: bool,
    /// Owners whose CID is ready but whose contract isn't deployed yet.
    parked: Vec<usize>,
    owners_unresolved: usize,
    reverted_tx_count: usize,
    payment_phase_start: SimInstant,
    outstanding_payments: usize,
    paid: Vec<(H160, U256)>,
    payment_hashes: Vec<H256>,
    finalize: Option<(Aggregation, LooPayments)>,
    /// The adversary's `pendingTxs` subscription on the market's shard
    /// (only when the plan front-runs).
    freeload_sub: Option<u64>,
    /// Locally-tracked adversary nonce: several junk registrations can be
    /// broadcast within one slot, before any of them confirms.
    adversary_nonce: u64,
    front_runs: usize,
    detail: SessionDetail,
    report: Option<SessionReport>,
}

struct Driver<'a> {
    world: &'a mut World,
    sessions: &'a mut [MarketSession],
    arrivals: Arrivals,
    queue: EventQueue<Ev>,
    pending: Vec<PendingTx>,
    scheduled_slots: BTreeSet<u64>,
    markets: Vec<MarketRun>,
    /// The engine's own watchers (one `newHeads` + all-logs + `pendingTxs`
    /// triple per shard) when [`EngineConfig::watch_events`] is set.
    event_subs: Vec<(EndpointId, u64)>,
    events_observed: u64,
    event_digest: u64,
    blocks_mined: u64,
}

impl<'a> Driver<'a> {
    fn new(
        world: &'a mut World,
        sessions: &'a mut [MarketSession],
        engine: &EngineConfig,
        failures: &[FailurePlan],
    ) -> Driver<'a> {
        let mut event_subs = Vec::new();
        if engine.watch_events {
            // Subscribe in (shard, kind) order so ids — and therefore the
            // digest — are identical on every backend kind.
            for ep in (0..world.endpoints()).map(EndpointId) {
                for kind in [
                    SubscriptionKind::NewHeads,
                    SubscriptionKind::Logs {
                        filter: LogFilter::all(),
                    },
                    SubscriptionKind::PendingTxs,
                ] {
                    event_subs.push((ep, world.subscribe(ep, kind)));
                }
            }
        }
        let markets = (0..sessions.len())
            .map(|m| {
                let failures = failures.get(m).cloned().unwrap_or_default();
                let freeload_sub = (failures.mempool_front_run && sessions[m].adversary.is_some())
                    .then(|| world.subscribe(sessions[m].placement, SubscriptionKind::PendingTxs));
                MarketRun {
                    failures,
                    owner_timelines: vec![Timeline::default(); sessions[m].owners.len()],
                    buyer_timeline: Timeline::default(),
                    deploy_phase_start: SimInstant(0),
                    contract_ready: false,
                    parked: Vec::new(),
                    owners_unresolved: sessions[m].owners.len(),
                    reverted_tx_count: 0,
                    payment_phase_start: SimInstant(0),
                    outstanding_payments: 0,
                    paid: Vec::new(),
                    payment_hashes: Vec::new(),
                    finalize: None,
                    freeload_sub,
                    adversary_nonce: 0,
                    front_runs: 0,
                    detail: SessionDetail::default(),
                    report: None,
                }
            })
            .collect();
        Driver {
            world,
            sessions,
            arrivals: engine.arrivals,
            queue: EventQueue::new(),
            pending: Vec::new(),
            scheduled_slots: BTreeSet::new(),
            markets,
            event_subs,
            events_observed: 0,
            event_digest: 0xcbf29ce484222325,
            blocks_mined: 0,
        }
    }

    fn run(&mut self) -> Result<EngineReport, MarketError> {
        // Seed the queue: every buyer broadcasts its deploy immediately;
        // every owner arrives per the schedule.
        for m in 0..self.sessions.len() {
            let deploy_rpc = self
                .world
                .tx_submit_time(ModelMarketContract::init_code().len());
            self.queue
                .schedule(SimInstant(deploy_rpc.0), Ev::SubmitDeploy { m });
            for i in 0..self.sessions[m].owners.len() {
                self.queue.schedule(
                    SimInstant(self.arrivals.offset(i).0),
                    Ev::OwnerArrive { m, i },
                );
            }
        }

        while let Some((t, ev)) = self.queue.pop() {
            self.world.clock.advance_to(t);
            if ofl_trace::tracing_enabled()
                && ofl_trace::category_enabled(ofl_trace::Category::Engine)
            {
                use ofl_trace::FieldValue;
                let (label, tail): (&'static str, Vec<(&'static str, FieldValue)>) = match &ev {
                    Ev::SubmitDeploy { m } => ("submit_deploy", vec![("m", (*m).into())]),
                    Ev::OwnerArrive { m, i } => {
                        ("owner_arrive", vec![("m", (*m).into()), ("i", (*i).into())])
                    }
                    Ev::OwnerTrained { m, i } => (
                        "owner_trained",
                        vec![("m", (*m).into()), ("i", (*i).into())],
                    ),
                    Ev::OwnerUploaded { m, i } => (
                        "owner_uploaded",
                        vec![("m", (*m).into()), ("i", (*i).into())],
                    ),
                    Ev::OwnerSubmitCid { m, i, .. } => (
                        "owner_submit_cid",
                        vec![("m", (*m).into()), ("i", (*i).into())],
                    ),
                    Ev::Mine { slot_secs } => ("mine", vec![("slot_secs", (*slot_secs).into())]),
                    Ev::BuyerFinalize { m } => ("buyer_finalize", vec![("m", (*m).into())]),
                    Ev::BuyerSubmitPayments { m } => {
                        ("buyer_submit_payments", vec![("m", (*m).into())])
                    }
                    Ev::BuyerDone { m } => ("buyer_done", vec![("m", (*m).into())]),
                };
                let mut fields = vec![("ev", FieldValue::from(label))];
                fields.extend(tail);
                ofl_trace::record_event(
                    ofl_trace::Category::Engine,
                    ofl_trace::EventKind::Instant,
                    "engine.dispatch",
                    fields,
                );
            }
            match ev {
                Ev::SubmitDeploy { m } => self.on_submit_deploy(m, t)?,
                Ev::OwnerArrive { m, i } => self.on_owner_arrive(m, i, t),
                Ev::OwnerTrained { m, i } => self.on_owner_trained(m, i, t)?,
                Ev::OwnerUploaded { m, i } => self.on_owner_uploaded(m, i, t)?,
                Ev::OwnerSubmitCid { m, i, phase_start } => {
                    self.on_owner_submit_cid(m, i, phase_start, t)?
                }
                Ev::Mine { slot_secs } => self.on_mine(slot_secs)?,
                Ev::BuyerFinalize { m } => self.on_buyer_finalize(m, t)?,
                Ev::BuyerSubmitPayments { m } => self.on_buyer_submit_payments(m, t)?,
                Ev::BuyerDone { m } => self.on_buyer_done(m, t)?,
            }
        }

        let sessions: Vec<SessionReport> = self
            .markets
            .iter_mut()
            .map(|run| run.report.take().expect("every market completed"))
            .collect();
        for run in self.markets.iter_mut() {
            run.detail.front_run_count = run.front_runs;
        }
        let details: Vec<SessionDetail> =
            self.markets.iter().map(|run| run.detail.clone()).collect();
        let cid_txs_per_block = self.cid_block_occupancy();
        Ok(EngineReport {
            sessions,
            details,
            total_sim_seconds: self.world.clock.elapsed_secs(),
            cid_txs_per_block,
            rpc: self.world.rpc_metrics_merged(),
            rpc_per_endpoint: self.world.rpc_metrics_per_endpoint(),
            events_observed: self.events_observed,
            event_digest: self.event_digest,
            blocks_mined: self.blocks_mined,
        })
    }

    // -- scheduling helpers ------------------------------------------------

    /// Schedules a `Mine` event for the given slot (once per slot).
    fn schedule_mine(&mut self, slot_secs: u64) {
        if self.scheduled_slots.insert(slot_secs) {
            self.queue
                .schedule(SimInstant(slot_secs * 1_000_000), Ev::Mine { slot_secs });
        }
    }

    /// Schedules owner `i`'s CID broadcast: the owner's timeline advances
    /// to `now` (it may have been blocked waiting for the contract), the
    /// RPC transfer runs from there, and the mempool sees the transaction
    /// when it completes.
    fn schedule_cid_submit(&mut self, m: usize, i: usize, now: SimInstant) {
        let data_len = if self.markets[m].failures.revert_cid_tx.contains(&i) {
            4 // the bogus selector
        } else {
            match self.sessions[m].cid_calldata(i) {
                Ok(data) => data.len(),
                Err(_) => 4,
            }
        };
        let rpc = self.world.tx_submit_time(data_len);
        let timeline = &mut self.markets[m].owner_timelines[i];
        let phase_start = timeline.advance_to(now);
        let submit_at = timeline.advance(rpc);
        self.queue
            .schedule(submit_at, Ev::OwnerSubmitCid { m, i, phase_start });
    }

    /// Marks owner `i` finished (confirmed, reverted, or dropped out); the
    /// buyer finalizes once every owner is resolved.
    fn resolve_owner(&mut self, m: usize, at: SimInstant) {
        self.markets[m].owners_unresolved -= 1;
        if self.markets[m].owners_unresolved == 0 {
            self.queue.schedule(at, Ev::BuyerFinalize { m });
        }
    }

    // -- event handlers ----------------------------------------------------

    fn on_submit_deploy(&mut self, m: usize, _t: SimInstant) -> Result<(), MarketError> {
        let buyer = self.sessions[m].buyer.address;
        let ep = self.sessions[m].placement;
        let (hash, preflight) = self.world.submit_tx(
            ep,
            &self.sessions[m].wallet,
            &buyer,
            None,
            U256::ZERO,
            ModelMarketContract::init_code(),
        )?;
        // The wallet's signing reads ride the buyer's own timeline; the
        // deploy-confirm wake will advance past them anyway.
        self.markets[m].buyer_timeline.advance(preflight);
        self.pending.push(PendingTx {
            endpoint: ep,
            hash,
            submitted_height: self.world.height(ep),
            wake: Wake::Deploy { m },
            mined: false,
        });
        let slot = self.world.next_slot_secs(self.world.clock.now());
        self.schedule_mine(slot);
        Ok(())
    }

    fn on_owner_arrive(&mut self, m: usize, i: usize, t: SimInstant) {
        if self.markets[m].failures.freeload.contains(&i) {
            // Shrink the silo to (at most) 3 examples before training; the
            // owner still goes through the whole honest protocol.
            let len = self.sessions[m].owners[i].data.len();
            let keep: Vec<usize> = (0..len.min(3)).collect();
            self.sessions[m].owners[i].data = self.sessions[m].owners[i].data.subset(&keep);
        }
        let duration = self.sessions[m].train_owner(i);
        self.sessions[m].owner_recorders[i].add(owner_phase::TRAIN, duration);
        let timeline = &mut self.markets[m].owner_timelines[i];
        timeline.advance_to(t);
        let done = timeline.advance(duration);
        self.queue.schedule(done, Ev::OwnerTrained { m, i });
    }

    fn on_owner_trained(&mut self, m: usize, i: usize, t: SimInstant) -> Result<(), MarketError> {
        let (_cid, duration) = self.sessions[m].upload_owner(self.world, i)?;
        self.sessions[m].owner_recorders[i].add(owner_phase::UPLOAD, duration);
        let timeline = &mut self.markets[m].owner_timelines[i];
        timeline.advance_to(t);
        let done = timeline.advance(duration);
        self.queue.schedule(done, Ev::OwnerUploaded { m, i });
        Ok(())
    }

    fn on_owner_uploaded(&mut self, m: usize, i: usize, t: SimInstant) -> Result<(), MarketError> {
        if self.markets[m].failures.dropout.contains(&i) {
            // Silent dropout: trained and uploaded, never tells the chain.
            self.resolve_owner(m, t);
            return Ok(());
        }
        if self.markets[m].contract_ready {
            self.schedule_cid_submit(m, i, t);
        } else {
            // The contract isn't deployed yet; the owner's DApp polls and
            // submits the moment the deployment confirms.
            self.markets[m].parked.push(i);
        }
        Ok(())
    }

    fn on_owner_submit_cid(
        &mut self,
        m: usize,
        i: usize,
        phase_start: SimInstant,
        t: SimInstant,
    ) -> Result<(), MarketError> {
        let hash;
        let wake;
        let ep = self.sessions[m].placement;
        let preflight;
        if self.markets[m].failures.revert_cid_tx.contains(&i) {
            // An unknown selector: the contract's dispatcher reverts, the
            // owner pays intrinsic+execution gas, no CID lands.
            let contract = self.sessions[m]
                .contract
                .ok_or(MarketError::StepOrder("deploy before sending CIDs"))?;
            let from = self.sessions[m].owners[i].address;
            let (h, cost) = self.world.submit_tx(
                ep,
                &self.sessions[m].wallet,
                &from,
                Some(contract.address),
                U256::ZERO,
                vec![0xde, 0xad, 0xbe, 0xef],
            )?;
            hash = h;
            preflight = cost;
            wake = Wake::OwnerRevert { m, i };
        } else {
            let (h, cost) = self.sessions[m].submit_cid(self.world, i)?;
            hash = h;
            preflight = cost;
            wake = Wake::OwnerCid { m, i, phase_start };
        }
        // The signing reads ride the owner's own timeline; the receipt wake
        // advances past them.
        self.markets[m].owner_timelines[i].advance(preflight);
        self.pending.push(PendingTx {
            endpoint: ep,
            hash,
            submitted_height: self.world.height(ep),
            wake,
            mined: false,
        });
        let slot = self.world.next_slot_secs(t);
        self.schedule_mine(slot);
        Ok(())
    }

    fn on_mine(&mut self, slot_secs: u64) -> Result<(), MarketError> {
        self.scheduled_slots.remove(&slot_secs);
        // The adversary races the slot boundary: everything broadcast since
        // the last slot is still in the mempool, so a junk registration
        // outbidding a victim's tip lands *ahead* of it in this very block.
        self.front_run_mempool()?;
        let blocks = self.world.mine_slot(slot_secs);
        self.blocks_mined += blocks.len() as u64;
        self.harvest_watched_events(slot_secs);
        let now = self.world.clock.now();

        // Index the slot's blocks: a pending transaction becomes poll-worthy
        // ("mined") only once its hash lands in a block on its shard. The
        // per-slot client poll then covers mined-but-undelivered txs only —
        // a tx waiting out mempool congestion on one shard stops costing a
        // receipt poll on every other slot of the run.
        let mined_this_slot: Vec<std::collections::BTreeSet<H256>> = blocks
            .iter()
            .map(|b| b.tx_hashes.iter().copied().collect())
            .collect();
        for p in &mut self.pending {
            if !p.mined && mined_this_slot[p.endpoint.0].contains(&p.hash) {
                p.mined = true;
            }
        }

        // One receipt poll for every mined-but-undelivered tx — the pool
        // fans the tagged batch out, one wire round trip per shard involved
        // (or per-call polls when the engine config says so); every waiter
        // wakes when its own shard's answer lands.
        let items: Vec<(EndpointId, H256)> = self
            .pending
            .iter()
            .filter(|p| p.mined)
            .map(|p| (p.endpoint, p.hash))
            .collect();
        let (receipts, poll_costs) = self.world.poll_receipts_sharded(&items);

        // Deliver receipts to whoever was waiting on this block. Polled and
        // unpolled entries interleave in `pending`; the receipt list covers
        // the polled (mined) ones in order.
        let pending = std::mem::take(&mut self.pending);
        let mut polled = receipts.into_iter();
        for p in pending {
            let receipt = if p.mined {
                polled.next().expect("one poll answer per mined tx")
            } else {
                None
            };
            let Some(receipt) = receipt else {
                self.pending.push(p);
                continue;
            };
            let wake_at = SimInstant(now.0 + poll_costs[p.endpoint.0].0);
            match p.wake {
                Wake::Deploy { m } => self.on_deploy_confirmed(m, &receipt, wake_at)?,
                Wake::OwnerCid { m, i, phase_start } => {
                    self.sessions[m].finish_cid(i, &receipt)?;
                    self.sessions[m].owner_recorders[i]
                        .add(owner_phase::SEND_CID, wake_at.since(phase_start));
                    self.markets[m].owner_timelines[i].advance_to(wake_at);
                    self.resolve_owner(m, wake_at);
                }
                Wake::OwnerRevert { m, i } => {
                    if receipt.is_success() {
                        return Err(MarketError::TxFailed(format!(
                            "injected revert for owner {i} unexpectedly succeeded"
                        )));
                    }
                    self.markets[m].reverted_tx_count += 1;
                    self.resolve_owner(m, wake_at);
                }
                Wake::Payment { m } => {
                    self.markets[m].outstanding_payments -= 1;
                    if self.markets[m].outstanding_payments == 0 {
                        self.queue.schedule(wake_at, Ev::BuyerDone { m });
                    }
                }
            }
        }

        // Anything still unmined: detect evictions and enforce the
        // configurable confirmation cap per shard (same budget as the
        // serial `World::mine_until`: give up once `max_wait_slots` slots
        // have been mined since submission, reporting the actual count).
        let mut timed_out = Vec::new();
        let mut slots_mined = 0u64;
        let unmined: Vec<(EndpointId, H256, u64)> = self
            .pending
            .iter()
            .map(|p| (p.endpoint, p.hash, p.submitted_height))
            .collect();
        // One height read per endpoint involved (on a remote shard each
        // backstage op is a wire round trip), not one per transaction.
        let mut heights: std::collections::BTreeMap<EndpointId, u64> =
            std::collections::BTreeMap::new();
        for (ep, hash, submitted_height) in unmined {
            // Backstage check (not client traffic): a transaction neither
            // mined nor pending was silently evicted, while a mined one a
            // flaky or stale poll merely missed will be re-polled next slot.
            if self.world.receipt_of(ep, &hash).is_some() {
                continue; // mined; the client poll just missed it this slot
            }
            if !self.world.is_pending(ep, &hash) {
                return Err(MarketError::World(WorldError::TxDropped(hash)));
            }
            let height = match heights.get(&ep) {
                Some(height) => *height,
                None => {
                    let height = self.world.height(ep);
                    heights.insert(ep, height);
                    height
                }
            };
            let waited = height.saturating_sub(submitted_height);
            if waited >= self.world.chain_config(ep).max_wait_slots {
                timed_out.push(hash);
                slots_mined = slots_mined.max(waited);
            }
        }
        if !timed_out.is_empty() {
            return Err(MarketError::World(WorldError::ConfirmationTimeout {
                slots_mined,
                pending: timed_out,
            }));
        }

        // Keep slots coming while work is queued on any shard — or while a
        // flaky poll left receipts undelivered (the next slot's poll
        // retries them).
        let any_mempool =
            (0..self.world.endpoints()).any(|i| self.world.mempool_len(EndpointId(i)) > 0);
        if any_mempool || !self.pending.is_empty() {
            let block_time = self.world.chain_config(EndpointId(0)).block_time;
            self.schedule_mine(slot_secs + block_time);
        }
        Ok(())
    }

    /// The mempool freeloader: markets whose plan set
    /// [`FailurePlan::mempool_front_run`] drain the adversary's
    /// `pendingTxs` subscription just before the slot seals, and outbid
    /// every victim `uploadCid` broadcast with a junk registration at the
    /// victim's tip + 1 wei — the junk lands *ahead* of the victim in the
    /// same block. The junk CID parses as nothing, so the buyer never
    /// retrieves (or pays for) it: the front-runner burns gas on a
    /// worthless contract slot, which is exactly the attack the incentive
    /// layer must price at zero.
    fn front_run_mempool(&mut self) -> Result<(), MarketError> {
        if self.markets.iter().all(|run| run.freeload_sub.is_none()) {
            return Ok(());
        }
        // Pull everything broadcast since the last slot into the inbox; the
        // post-mine pump inside `mine_slot` continues from here, so watched
        // streams see the same deliveries whether or not anyone front-runs.
        self.world.pump_notifications();
        let selector: [u8; 4] = ModelMarketContract::upload_cid_calldata("")[..4]
            .try_into()
            .expect("calldata starts with a 4-byte selector");
        for m in 0..self.markets.len() {
            let Some(sub) = self.markets[m].freeload_sub else {
                continue;
            };
            let ep = self.sessions[m].placement;
            let adversary = self.sessions[m]
                .adversary
                .expect("freeload_sub implies a funded adversary");
            let key = self.sessions[m]
                .wallet
                .account(&adversary)
                .expect("adversary key lives in the session wallet")
                .private_key;
            let chain_id = self.world.chain_config(ep).chain_id;
            for note in self.world.take_notifications(ep, sub) {
                let SubEvent::PendingTx(p) = note.event else {
                    continue;
                };
                if p.sender == adversary || p.selector != Some(selector) {
                    continue;
                }
                let Some(contract) = p.to else { continue };
                // Deliberately unparseable as a CID, unique per victim so
                // each junk registration occupies its own contract slot.
                let junk = format!("junk-{}", self.markets[m].front_runs);
                let request = TxRequest {
                    chain_id,
                    // Tracked locally: several junk broadcasts can share a
                    // slot, before any of them confirms.
                    nonce: self.markets[m].adversary_nonce,
                    max_priority_fee_per_gas: p.tip.wrapping_add(&U256::ONE),
                    max_fee_per_gas: U256::from(100_000_000_000u64),
                    gas_limit: 300_000,
                    to: Some(contract),
                    value: U256::ZERO,
                    data: ModelMarketContract::upload_cid_calldata(&junk),
                };
                let tx = sign_tx(request, &key)
                    .map_err(|e| MarketError::TxFailed(format!("front-run signing: {e:?}")))?;
                let (result, _cost) = self.world.broadcast_raw(ep, &tx.encode());
                result.map_err(|e| MarketError::TxFailed(format!("front-run broadcast: {e}")))?;
                self.markets[m].adversary_nonce += 1;
                self.markets[m].front_runs += 1;
            }
        }
        Ok(())
    }

    /// Folds every delivery on the engine's own watchers into the report's
    /// event digest. Runs right after `mine_slot`, whose pump has just
    /// parked this slot's notifications (heads, logs, pendings — plus
    /// anything a laggy decorator released) in the world's inbox.
    fn harvest_watched_events(&mut self, slot_secs: u64) {
        if self.event_subs.is_empty() {
            return;
        }
        let mut digest = self.event_digest;
        let mut observed = self.events_observed;
        {
            let mut eat = |bytes: &[u8]| {
                for &b in bytes {
                    digest = (digest ^ b as u64).wrapping_mul(0x100000001b3);
                }
            };
            for (ep, sub) in self.event_subs.clone() {
                for note in self.world.take_notifications(ep, sub) {
                    eat(&slot_secs.to_le_bytes());
                    eat(&(ep.0 as u64).to_le_bytes());
                    eat(&note.sub_id.to_le_bytes());
                    eat(&note.seq.to_le_bytes());
                    eat(format!("{:?}", note.event).as_bytes());
                    observed += 1;
                }
            }
        }
        self.event_digest = digest;
        self.events_observed = observed;
    }

    fn on_deploy_confirmed(
        &mut self,
        m: usize,
        receipt: &Receipt,
        wake_at: SimInstant,
    ) -> Result<(), MarketError> {
        self.sessions[m].finish_deploy(receipt)?;
        let start = self.markets[m].deploy_phase_start;
        self.sessions[m]
            .buyer_recorder
            .add(buyer_phase::DEPLOY, wake_at.since(start));
        self.markets[m].buyer_timeline.advance_to(wake_at);
        self.markets[m].contract_ready = true;
        // Release owners who finished uploading before the contract existed.
        let parked = std::mem::take(&mut self.markets[m].parked);
        for i in parked {
            self.schedule_cid_submit(m, i, wake_at);
        }
        Ok(())
    }

    fn on_buyer_finalize(&mut self, m: usize, t: SimInstant) -> Result<(), MarketError> {
        let ep = self.sessions[m].placement;
        // Availability failure: after the CIDs are public, the blocks vanish.
        let drop_blocks = self.markets[m].failures.drop_ipfs_blocks.clone();
        for i in drop_blocks {
            if let Some(cid) = self.sessions[m].owners[i].cid.clone() {
                let node_index = self.sessions[m].owners[i].ipfs_node;
                self.world.drop_ipfs_block(ep, node_index, &cid);
            }
        }

        let session = &mut self.sessions[m];
        let (cids_onchain, d_download) = session.download_cids_computed(self.world)?;
        session
            .buyer_recorder
            .add(buyer_phase::DOWNLOAD_CIDS, d_download);
        // A production client gives up on unfetchable CIDs; retrieve only
        // content some peer on the market's shard can still serve.
        let cids_retrieved: Vec<String> = cids_onchain
            .iter()
            .filter(|s| {
                Cid::parse(s)
                    .map(|c| self.world.swarm_has(ep, &c))
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        let (_n, d_retrieve) = session.retrieve_models_computed(self.world, &cids_retrieved)?;
        session
            .buyer_recorder
            .add(buyer_phase::RETRIEVE, d_retrieve);
        let (agg, d_agg) = session.aggregate_computed(self.world)?;
        session.buyer_recorder.add(buyer_phase::AGGREGATE, d_agg);
        let (loo, d_loo) = session.loo_payments_computed(self.world, &agg);

        // The buyer pipelines download → retrieve → aggregate → /loo →
        // payment broadcast on its own timeline; payments reach the mempool
        // together after one RPC transfer.
        let pay_rpc = self.world.tx_submit_time(0);
        let run = &mut self.markets[m];
        run.detail.cids_onchain = cids_onchain;
        run.detail.cids_retrieved = cids_retrieved;
        run.finalize = Some((agg, loo));
        run.buyer_timeline.advance_to(t);
        run.buyer_timeline.advance(d_download);
        run.buyer_timeline.advance(d_retrieve);
        run.payment_phase_start = run.buyer_timeline.advance(d_agg);
        run.buyer_timeline.advance(d_loo);
        let pay_at = run.buyer_timeline.advance(pay_rpc);
        self.queue.schedule(pay_at, Ev::BuyerSubmitPayments { m });
        Ok(())
    }

    fn on_buyer_submit_payments(&mut self, m: usize, t: SimInstant) -> Result<(), MarketError> {
        let ep = self.sessions[m].placement;
        let (agg, loo) = self.markets[m]
            .finalize
            .take()
            .expect("finalize precedes payments");
        // Fee terms are priced at broadcast time, against the base fee the
        // market's shard has *now* — not at finalize time. The signing
        // environment is RPC traffic like everything else; its preflight
        // rides the buyer's timeline.
        let (env, env_cost) = self.sessions[m].payment_env(self.world, &agg)?;
        self.markets[m].buyer_timeline.advance(env_cost);
        let txs = match env {
            Some(env) => self.sessions[m].build_payment_txs(&env, &agg, &loo),
            None => Vec::new(),
        };
        self.markets[m].finalize = Some((agg, loo));
        let mut hashes = Vec::new();
        let mut paid = Vec::new();
        for (address, amount, tx) in txs {
            // The one RPC transfer for the payment batch was charged on the
            // buyer's timeline at finalize; retries (flaky provider) smear
            // onto the global clock inside `broadcast_raw`'s bill, which the
            // engine deliberately leaves unapplied.
            let (result, _cost) = self.world.broadcast_raw(ep, &tx.encode());
            let hash = result.map_err(|e| MarketError::TxFailed(format!("payment: {e}")))?;
            self.pending.push(PendingTx {
                endpoint: ep,
                hash,
                submitted_height: self.world.height(ep),
                wake: Wake::Payment { m },
                mined: false,
            });
            hashes.push(hash);
            paid.push((address, amount));
        }
        let run = &mut self.markets[m];
        run.outstanding_payments = hashes.len();
        run.payment_hashes = hashes;
        run.paid = paid;
        if run.outstanding_payments == 0 {
            self.queue.schedule(t, Ev::BuyerDone { m });
        } else {
            let slot = self.world.next_slot_secs(t);
            self.schedule_mine(slot);
        }
        Ok(())
    }

    fn on_buyer_done(&mut self, m: usize, t: SimInstant) -> Result<(), MarketError> {
        let ep = self.sessions[m].placement;
        let rows: Vec<(H160, U256, H256)> = self.markets[m]
            .paid
            .iter()
            .zip(&self.markets[m].payment_hashes)
            .map(|((address, amount), hash)| (*address, *amount, *hash))
            .collect();
        let mut payments = Vec::with_capacity(rows.len());
        for (address, amount, hash) in rows {
            let receipt = self.world.receipt_of(ep, &hash).expect("payment mined");
            payments.push(PaymentRow {
                address,
                amount_wei: amount,
                receipt,
            });
        }
        let run = &mut self.markets[m];
        run.buyer_timeline.advance_to(t);
        let session = &mut self.sessions[m];
        session
            .buyer_recorder
            .add(buyer_phase::PAYMENT, t.since(run.payment_phase_start));
        let (agg, loo) = run.finalize.take().expect("finalize state present");
        run.detail.reverted_tx_count = run.reverted_tx_count;
        let total_secs = run.buyer_timeline.now().0 as f64 / 1e6;
        run.report = Some(session.assemble_report(
            &agg,
            &loo,
            payments,
            total_secs,
            self.world.rpc_metrics(ep),
        ));
        Ok(())
    }

    /// For every mined block on every shard, how many distinct owners'
    /// `uploadCid` transactions it carries (across all markets placed
    /// there).
    fn cid_block_occupancy(&self) -> Vec<(EndpointId, u64, usize)> {
        let mut per_block: std::collections::BTreeMap<(EndpointId, u64), usize> =
            std::collections::BTreeMap::new();
        for session in self.sessions.iter() {
            for owner in &session.owners {
                if let Some(receipt) = &owner.upload_receipt {
                    *per_block
                        .entry((session.placement, receipt.block_number))
                        .or_insert(0) += 1;
                }
            }
        }
        per_block
            .into_iter()
            .map(|((ep, block), n)| (ep, block, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarketConfig;
    use crate::market::Marketplace;

    fn tiny(n_owners: usize) -> MarketConfig {
        MarketConfig {
            n_owners,
            n_train: 100 * n_owners,
            n_test: 80,
            train: ofl_fl::client::TrainConfig {
                dims: vec![784, 16, 10],
                epochs: 1,
                ..ofl_fl::client::TrainConfig::default()
            },
            ..MarketConfig::small_test()
        }
    }

    #[test]
    fn concurrent_owners_share_blocks_and_finish_sooner() {
        let config = tiny(4);
        let (_, serial_report) = Marketplace::run(config.clone()).expect("serial run");
        let mm = MultiMarket::new(vec![config]);
        let (mm, report) = mm
            .run(&EngineConfig::default(), &[])
            .expect("event-driven run");
        assert_eq!(report.sessions.len(), 1);
        // All four CID transactions land in one block.
        assert!(report.max_owners_sharing_block() >= 2);
        // Concurrency strictly beats the serial schedule.
        assert!(
            report.sessions[0].total_sim_seconds < serial_report.total_sim_seconds,
            "event {} vs serial {}",
            report.sessions[0].total_sim_seconds,
            serial_report.total_sim_seconds
        );
        // Same participants, same models, same CIDs — only the schedule
        // changed.
        assert_eq!(report.sessions[0].cids, serial_report.cids);
        assert_eq!(
            report.sessions[0].payments.len(),
            serial_report.payments.len()
        );
        assert!(mm.world.chain(EndpointId(0)).height() >= 1);
    }

    #[test]
    fn multi_market_sessions_complete_on_one_chain() {
        let mm = MultiMarket::replicated(&tiny(3), 2);
        assert_eq!(mm.sessions.len(), 2);
        let genesis_supply = mm.world.chain(EndpointId(0)).state().total_supply();
        let (mm, report) = mm.run(&EngineConfig::default(), &[]).expect("runs");
        assert_eq!(report.sessions.len(), 2);
        for session_report in &report.sessions {
            assert_eq!(session_report.payments.len(), 3);
        }
        // Distinct markets, distinct CIDs (decorrelated seeds).
        assert_ne!(report.sessions[0].cids, report.sessions[1].cids);
        // One shared chain conserved ETH across both markets.
        let live = mm.world.chain(EndpointId(0)).state().total_supply();
        let burned = mm.world.chain(EndpointId(0)).burned();
        assert_eq!(live.wrapping_add(&burned), genesis_supply);
    }

    #[test]
    fn staggered_arrivals_spread_cid_blocks() {
        let config = tiny(3);
        let engine = EngineConfig {
            arrivals: Arrivals::Staggered(SimDuration::from_secs(30)),
            ..EngineConfig::default()
        };
        let (_, report) = MultiMarket::new(vec![config])
            .run(&engine, &[])
            .expect("runs");
        // 30 s apart with 12 s slots: every owner's CID lands in its own
        // block.
        assert!(report.cid_txs_per_block.len() >= 2);
        assert_eq!(report.max_owners_sharing_block(), 1);
    }

    #[test]
    fn engine_reruns_are_deterministic() {
        let run = || {
            let (_, report) = MultiMarket::replicated(&tiny(3), 2)
                .run(&EngineConfig::default(), &[])
                .expect("runs");
            report
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_sim_seconds, b.total_sim_seconds);
        assert_eq!(a.cid_txs_per_block, b.cid_txs_per_block);
        for (ra, rb) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(ra.cids, rb.cids);
            assert_eq!(ra.total_sim_seconds, rb.total_sim_seconds);
            assert_eq!(
                ra.payments.iter().map(|p| p.amount_wei).collect::<Vec<_>>(),
                rb.payments.iter().map(|p| p.amount_wei).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn cross_shard_markets_land_in_different_chains_blocks() {
        let mm = MultiMarket::replicated_sharded(&tiny(3), 2, 2);
        assert_eq!(mm.world.endpoints(), 2);
        let (mm, report) = mm.run(&EngineConfig::default(), &[]).expect("runs");
        assert_eq!(report.sessions.len(), 2);
        for session_report in &report.sessions {
            assert_eq!(session_report.payments.len(), 3);
        }
        // CID transactions landed on both chains — and only each market's
        // own shard carries its transactions.
        assert_eq!(
            report.shards_with_cid_txs(),
            vec![EndpointId(0), EndpointId(1)]
        );
        assert!(mm.world.chain(EndpointId(0)).height() >= 1);
        assert!(mm.world.chain(EndpointId(1)).height() >= 1);
        // Both endpoints metered their own market's traffic, and the
        // rollup equals the per-endpoint sum.
        let per = &report.rpc_per_endpoint;
        assert!(per[0].total_calls() > 0 && per[1].total_calls() > 0);
        assert_eq!(
            report.rpc.total_calls(),
            per[0].total_calls() + per[1].total_calls()
        );
        assert_eq!(
            report.rpc.round_trips,
            per[0].round_trips + per[1].round_trips
        );
        // Each session report carries its own endpoint's snapshot.
        assert_eq!(report.sessions[0].rpc.total_calls(), per[0].total_calls());
        assert_eq!(report.sessions[1].rpc.total_calls(), per[1].total_calls());
    }

    #[test]
    fn watched_event_streams_are_deterministic() {
        let watched = EngineConfig {
            watch_events: true,
            ..EngineConfig::default()
        };
        let run = || {
            let (_, report) = MultiMarket::new(vec![tiny(3)])
                .run(&watched, &[])
                .expect("watched run");
            (report.events_observed, report.event_digest)
        };
        let a = run();
        // Heads and pending transactions both crossed the watchers.
        assert!(a.0 > 0, "watchers must observe the run's events");
        assert_eq!(a, run(), "the event stream digest is a pure function");
        // An unwatched run opens no subscriptions and observes nothing.
        let (_, quiet) = MultiMarket::new(vec![tiny(3)])
            .run(&EngineConfig::default(), &[])
            .expect("unwatched run");
        assert_eq!(quiet.events_observed, 0);
    }

    #[test]
    fn engine_supports_failure_injection() {
        let config = tiny(4);
        let failures = FailurePlan {
            dropout: vec![1],
            revert_cid_tx: vec![2],
            ..FailurePlan::clean()
        };
        let (_, report) = MultiMarket::new(vec![config])
            .run(&EngineConfig::default(), &[failures])
            .expect("runs");
        let detail = &report.details[0];
        assert_eq!(detail.cids_onchain.len(), 2);
        assert_eq!(detail.reverted_tx_count, 1);
        assert_eq!(report.sessions[0].payments.len(), 2);
    }
}
