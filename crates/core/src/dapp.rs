//! The DApp facade: button-level actions mirroring the React interfaces of
//! the paper's Fig 3, so that "anyone, regardless of their knowledge of
//! blockchain or Web 3.0", can drive the system.
//!
//! [`OwnerApp`] exposes the model-owner screen (Fig 3a) and [`BuyerApp`] the
//! model-buyer screen (Fig 3b). Every click produces a human-readable event
//! in the app's log, and MetaMask-style confirmation summaries are surfaced
//! before anything is signed.
//!
//! Like any real DApp, the screens talk to infrastructure only through the
//! provider traits: wallet connection reads the balance via
//! `eth_getBalance`, and the buyer's status line polls `eth_blockNumber` —
//! both priced, metered, and fault-injectable like all other traffic.

use crate::market::{MarketError, Marketplace, SessionReport};
use crate::world::{World, WorldError};
use ofl_eth::chain::LogFilter;
use ofl_netsim::clock::SimDuration;
use ofl_primitives::format_eth;
use ofl_rpc::{EndpointId, ModelMarketContract, SubEvent, SubscriptionKind};

/// A UI event (what the user sees after a click).
#[derive(Debug, Clone)]
pub struct UiEvent {
    /// Which screen produced it.
    pub screen: &'static str,
    /// Display text.
    pub message: String,
}

/// The model-owner screen (paper Fig 3a).
pub struct OwnerApp {
    /// Which owner this screen belongs to.
    pub owner_index: usize,
    events: Vec<UiEvent>,
}

impl OwnerApp {
    /// Opens the screen for owner `i`.
    pub fn new(owner_index: usize) -> OwnerApp {
        OwnerApp {
            owner_index,
            events: Vec::new(),
        }
    }

    fn log(&mut self, message: String) {
        self.events.push(UiEvent {
            screen: "owner",
            message,
        });
    }

    /// The event log.
    pub fn events(&self) -> &[UiEvent] {
        &self.events
    }

    /// "Connect Wallet" button: resolves the account and reads its balance
    /// through the provider (`eth_getBalance`), like MetaMask's header.
    pub fn connect_wallet(&mut self, market: &mut Marketplace) -> String {
        let addr = market.owners[self.owner_index].address;
        let ep = market.session.placement;
        let (balance, cost) = market.world.eth_retry(ep, |eth| eth.get_balance(&addr));
        market.world.clock.advance(cost);
        // A provider failure must not masquerade as an empty wallet.
        let msg = match balance {
            Ok(balance) => format!(
                "Connected wallet {} (balance {} ETH)",
                addr.to_checksum(),
                format_eth(&balance, 4)
            ),
            Err(e) => format!(
                "Connected wallet {} (balance unavailable: {e})",
                addr.to_checksum()
            ),
        };
        self.log(msg.clone());
        msg
    }

    /// "Train Model" button: runs local training on the private silo.
    pub fn train_model(&mut self, market: &mut Marketplace) -> String {
        market.owner_train(self.owner_index);
        let trained = market.owners[self.owner_index]
            .trained
            .as_ref()
            .expect("just trained");
        let msg = format!(
            "Training complete: {} examples, final loss {:.4}",
            trained.n_examples, trained.final_loss
        );
        self.log(msg.clone());
        msg
    }

    /// "Upload Model" button: pushes the model to IPFS (Steps 2–3).
    pub fn upload_model(&mut self, market: &mut Marketplace) -> Result<String, MarketError> {
        match market.owner_upload_model(self.owner_index) {
            Ok(cid) => {
                let msg = format!("Model uploaded to IPFS. CID: {cid}");
                self.log(msg.clone());
                Ok(msg)
            }
            Err(e) => {
                self.log(format!("Upload failed: {e}"));
                Err(e)
            }
        }
    }

    /// "Send CID" button: submits the CID to the contract via the wallet
    /// (Step 4), returning the MetaMask-style fee line.
    pub fn send_cid(&mut self, market: &mut Marketplace) -> Result<String, MarketError> {
        match market.owner_send_cid(self.owner_index) {
            Ok(receipt) => {
                let msg = format!(
                    "CID sent on-chain in block {} — gas {}, fee {} ETH",
                    receipt.block_number,
                    receipt.gas_used,
                    format_eth(&receipt.fee, 8)
                );
                self.log(msg.clone());
                Ok(msg)
            }
            Err(e) => {
                self.log(format!("Send CID failed: {e}"));
                Err(e)
            }
        }
    }
}

/// A resumable cursor over the contract's `CidUploaded` event stream —
/// what a production DApp's subscription loop keeps between polls.
///
/// Two delivery modes share one cursor:
///
/// * **Streaming** ([`CidWatcher::subscribed`]): a `Logs` push subscription
///   filtered to the contract address and `CidUploaded` topic. The first
///   [`poll`](CidWatcher::poll) does one catch-up range read for blocks
///   mined before the subscription existed; after that, polls just drain
///   parked push notifications — no head read, no `eth_getLogs`, zero RPC
///   round trips. An undecodable push degrades the watcher back to cursor
///   polling without skipping or re-yielding a block.
/// * **Cursor polling** ([`CidWatcher::new`]): each poll reads the chain
///   head (`eth_blockNumber`) and queries only `(last_seen, head]` via the
///   typed binding's `LogFilter::in_blocks` range.
///
/// In both modes repeated polls never rescan — and never re-yield — blocks
/// already seen. Compare the whole-chain scan of
/// [`Marketplace::buyer_watch_upload_events`], which rereads everything
/// on every call.
pub struct CidWatcher {
    contract: ModelMarketContract,
    endpoint: EndpointId,
    /// Live `Logs` subscription id, or `None` in cursor-polling mode.
    sub: Option<u64>,
    /// Whether the one-time catch-up range read (blocks mined before the
    /// subscription existed) has run. Always true in cursor mode, where
    /// every poll is a range read.
    synced: bool,
    /// The highest block this watcher has already consumed.
    pub last_seen_block: u64,
}

impl CidWatcher {
    /// A cursor-polling watcher starting from genesis (nothing consumed
    /// yet).
    pub fn new(contract: ModelMarketContract, endpoint: EndpointId) -> CidWatcher {
        CidWatcher {
            contract,
            endpoint,
            sub: None,
            synced: true,
            last_seen_block: 0,
        }
    }

    /// A streaming watcher: opens a `Logs` subscription filtered to the
    /// contract's `CidUploaded` events. Blocks mined before this call are
    /// picked up by the first poll's catch-up range read.
    pub fn subscribed(
        contract: ModelMarketContract,
        endpoint: EndpointId,
        world: &mut World,
    ) -> CidWatcher {
        let filter = LogFilter::all()
            .at_address(contract.address)
            .with_topic(ModelMarketContract::uploaded_topic());
        let sub = world.subscribe(endpoint, SubscriptionKind::Logs { filter });
        CidWatcher {
            contract,
            endpoint,
            sub: Some(sub),
            synced: false,
            last_seen_block: 0,
        }
    }

    /// Whether the watcher is currently fed by a push subscription.
    pub fn is_streaming(&self) -> bool {
        self.sub.is_some()
    }

    /// Drops the push subscription and returns to cursor polling. The
    /// cursor sits on the last consumed block, so subsequent range polls
    /// resume exactly where the stream stopped — parked-but-untaken pushes
    /// are re-read from the chain, never duplicated.
    pub fn degrade(&mut self, world: &mut World) {
        if let Some(sub) = self.sub.take() {
            world.unsubscribe(self.endpoint, sub);
        }
        self.synced = true;
    }

    /// One iteration of the subscription loop: yields only CIDs uploaded in
    /// blocks this watcher has not consumed yet, plus the RPC time charged
    /// (head read and range query in cursor mode or during catch-up; zero
    /// once the stream is live). The caller charges the duration.
    pub fn poll(&mut self, world: &mut World) -> Result<(Vec<String>, SimDuration), MarketError> {
        let (mut cids, mut duration) = if self.synced {
            (Vec::new(), SimDuration::ZERO)
        } else {
            // One-time catch-up for blocks mined before the subscription
            // existed. It advances the cursor to the current head, so any
            // pushes already parked for those same blocks dedupe below.
            let caught = self.poll_range(world)?;
            self.synced = true;
            caught
        };
        let Some(sub) = self.sub else {
            // Cursor mode (`synced` is always true here, so nothing was
            // caught up above): every poll is a fresh range read.
            debug_assert!(cids.is_empty());
            return self.poll_range(world);
        };
        world.pump_notifications();
        let floor = self.last_seen_block;
        let batch_start = cids.len();
        for note in world.take_notifications(self.endpoint, sub) {
            let SubEvent::Log(pushed) = note.event else {
                continue;
            };
            // Blocks at or below the floor were already consumed (by the
            // catch-up read or an earlier drain); their parked copies are
            // duplicates. Deliveries arrive in whole-block batches, so a
            // block-granular floor never splits a block.
            if pushed.block_number <= floor {
                continue;
            }
            match ModelMarketContract::decode_uploaded(&pushed.log) {
                Ok(cid) => {
                    self.last_seen_block = self.last_seen_block.max(pushed.block_number);
                    cids.push(cid);
                }
                Err(_) => {
                    // Graceful fallback: rewind past this whole push batch
                    // and re-read it through the range-query path, so the
                    // undecodable block is neither skipped nor its
                    // neighbours double-counted.
                    cids.truncate(batch_start);
                    self.last_seen_block = floor;
                    self.degrade(world);
                    let (rest, d_range) = self.poll_range(world)?;
                    cids.extend(rest);
                    duration = duration.saturating_add(d_range);
                    return Ok((cids, duration));
                }
            }
        }
        Ok((cids, duration))
    }

    /// The cursor-polling read: head via `eth_blockNumber`, then one
    /// `eth_getLogs` over `(last_seen, head]` when anything is new.
    fn poll_range(&mut self, world: &mut World) -> Result<(Vec<String>, SimDuration), MarketError> {
        let ep = self.endpoint;
        let (head, mut duration) = world.eth_retry(ep, |eth| eth.block_number());
        let head = head.map_err(WorldError::Rpc)?;
        if head <= self.last_seen_block {
            return Ok((Vec::new(), duration));
        }
        let from = self.last_seen_block + 1;
        let contract = self.contract;
        let (cids, d_logs) = world.eth_retry(ep, |eth| contract.uploaded_cids_in(eth, from, head));
        duration = duration.saturating_add(d_logs);
        let cids = cids?;
        // Advance the cursor only once the range was actually read — a
        // failed query must leave those blocks unconsumed for the next
        // poll, or their CIDs would be skipped forever.
        self.last_seen_block = head;
        Ok((cids, duration))
    }
}

/// The model-buyer screen (paper Fig 3b).
pub struct BuyerApp {
    events: Vec<UiEvent>,
    cids: Vec<String>,
    watcher: Option<CidWatcher>,
}

impl BuyerApp {
    /// Opens the buyer screen.
    pub fn new() -> BuyerApp {
        BuyerApp {
            events: Vec::new(),
            cids: Vec::new(),
            watcher: None,
        }
    }

    fn log(&mut self, message: String) {
        self.events.push(UiEvent {
            screen: "buyer",
            message,
        });
    }

    /// The event log.
    pub fn events(&self) -> &[UiEvent] {
        &self.events
    }

    /// The status line at the top of the buyer screen: chain head via
    /// `eth_blockNumber`, straight through the provider stack.
    pub fn node_status(&mut self, market: &mut Marketplace) -> Result<String, MarketError> {
        let ep = market.session.placement;
        let (head, cost) = market.world.eth_retry(ep, |eth| eth.block_number());
        market.world.clock.advance(cost);
        match head {
            Ok(head) => {
                let msg = format!("Connected to node — chain head at block {head}");
                self.log(msg.clone());
                Ok(msg)
            }
            Err(e) => {
                self.log(format!("Node unreachable: {e}"));
                Err(MarketError::World(WorldError::Rpc(e)))
            }
        }
    }

    /// "Deploy Contract" button (Step 1).
    pub fn deploy_contract(&mut self, market: &mut Marketplace) -> Result<String, MarketError> {
        match market.deploy_contract() {
            Ok(receipt) => {
                let msg = format!(
                    "CidStorage deployed at {} — gas {}, fee {} ETH",
                    receipt
                        .contract_address
                        .expect("deployment yields an address")
                        .to_checksum(),
                    receipt.gas_used,
                    format_eth(&receipt.fee, 8)
                );
                self.log(msg.clone());
                Ok(msg)
            }
            Err(e) => {
                self.log(format!("Deploy failed: {e}"));
                Err(e)
            }
        }
    }

    /// "Download CIDs" button (Step 5) — free of gas fees.
    pub fn download_cids(&mut self, market: &mut Marketplace) -> Result<String, MarketError> {
        match market.buyer_download_cids() {
            Ok(cids) => {
                self.cids = cids;
                let msg = format!("Downloaded {} CIDs (no gas fee)", self.cids.len());
                self.log(msg.clone());
                Ok(msg)
            }
            Err(e) => {
                self.log(format!("Download CIDs failed: {e}"));
                Err(e)
            }
        }
    }

    /// "Watch CIDs" — the incremental alternative to "Download CIDs": a
    /// push `Logs` subscription (with a one-time catch-up read for blocks
    /// mined before it existed) that appends only CIDs uploaded since the
    /// last poll, never re-yielding one. If the stream degrades, the
    /// watcher falls back to cursor polling from the same block, so the
    /// sequence the buyer sees is identical either way. Production DApps
    /// run this in a loop instead of whole-chain scans.
    pub fn watch_cids(&mut self, market: &mut Marketplace) -> Result<String, MarketError> {
        if self.watcher.is_none() {
            let contract = market
                .session
                .contract
                .ok_or(MarketError::StepOrder("deploy before watching events"))?;
            self.watcher = Some(CidWatcher::subscribed(
                contract,
                market.session.placement,
                &mut market.world,
            ));
        }
        let watcher = self.watcher.as_mut().expect("created above");
        match watcher.poll(&mut market.world) {
            Ok((fresh, duration)) => {
                market.world.clock.advance(duration);
                let msg = format!(
                    "Watched {} new CIDs through block {} ({} total, no gas fee)",
                    fresh.len(),
                    watcher.last_seen_block,
                    self.cids.len() + fresh.len()
                );
                self.cids.extend(fresh);
                self.log(msg.clone());
                Ok(msg)
            }
            Err(e) => {
                self.log(format!("Watch CIDs failed: {e}"));
                Err(e)
            }
        }
    }

    /// "Retrieve Models" button (Step 6).
    pub fn retrieve_models(&mut self, market: &mut Marketplace) -> Result<String, MarketError> {
        match market.buyer_retrieve_models(&self.cids) {
            Ok(n) => {
                let msg = format!("Retrieved and verified {n} models from IPFS");
                self.log(msg.clone());
                Ok(msg)
            }
            Err(e) => {
                self.log(format!("Retrieve Models failed: {e}"));
                Err(e)
            }
        }
    }

    /// "Aggregate & Pay" button (Step 7): backend aggregation, LOO
    /// contribution assessment, and the payment transactions.
    pub fn aggregate_and_pay(
        &mut self,
        market: &mut Marketplace,
    ) -> Result<SessionReport, MarketError> {
        match market.buyer_aggregate_and_pay() {
            Ok(report) => {
                self.log(format!(
                    "Aggregated model accuracy {:.2} % over {} global neurons; paid {} ETH to {} owners",
                    report.aggregated_accuracy * 100.0,
                    report.global_neurons,
                    format_eth(&report.total_paid(), 8),
                    report.payments.len()
                ));
                Ok(report)
            }
            Err(e) => {
                self.log(format!("Aggregate & Pay failed: {e}"));
                Err(e)
            }
        }
    }
}

impl Default for BuyerApp {
    fn default() -> Self {
        BuyerApp::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarketConfig;

    #[test]
    fn screens_talk_to_the_node_through_the_provider() {
        let mut market = Marketplace::new(MarketConfig::small_test());
        let mut owner_app = OwnerApp::new(0);
        let mut buyer_app = BuyerApp::new();
        // Wallet connection surfaces the genesis balance (0.1 ETH).
        let msg = owner_app.connect_wallet(&mut market);
        assert!(msg.contains("balance 0.1000 ETH"), "{msg}");
        // The status line reads the chain head via eth_blockNumber.
        let status = buyer_app.node_status(&mut market).unwrap();
        assert!(status.contains("block 0"), "{status}");
        buyer_app.deploy_contract(&mut market).unwrap();
        let status = buyer_app.node_status(&mut market).unwrap();
        assert!(status.contains("block 1"), "{status}");
        // Both queries were metered as provider traffic.
        let metrics = market.world.rpc_metrics(EndpointId(0));
        assert!(metrics.method("eth_getBalance").calls >= 1);
        assert!(metrics.method("eth_blockNumber").calls >= 2);
    }

    #[test]
    fn button_driven_session_matches_programmatic() {
        let mut market = Marketplace::new(MarketConfig::small_test());
        let mut buyer_app = BuyerApp::new();
        buyer_app.deploy_contract(&mut market).unwrap();
        for i in 0..market.owners.len() {
            let mut app = OwnerApp::new(i);
            app.connect_wallet(&mut market);
            app.train_model(&mut market);
            let upload_msg = app.upload_model(&mut market).unwrap();
            assert!(upload_msg.contains("CID: Qm"));
            let send_msg = app.send_cid(&mut market).unwrap();
            assert!(send_msg.contains("fee"));
            assert_eq!(app.events().len(), 4);
        }
        buyer_app.download_cids(&mut market).unwrap();
        buyer_app.retrieve_models(&mut market).unwrap();
        let report = buyer_app.aggregate_and_pay(&mut market).unwrap();
        assert_eq!(report.payments.len(), market.owners.len());
        assert!(buyer_app
            .events()
            .iter()
            .any(|e| e.message.contains("no gas fee")));
    }

    #[test]
    fn buttons_enforce_workflow_order() {
        let mut market = Marketplace::new(MarketConfig::small_test());
        let mut app = OwnerApp::new(0);
        // Sending a CID before anything else must fail cleanly — and the
        // screen shows the failure instead of swallowing it.
        assert!(app.send_cid(&mut market).is_err());
        assert!(app
            .events()
            .iter()
            .any(|e| e.message.contains("Send CID failed")));
        let mut buyer = BuyerApp::new();
        assert!(buyer.download_cids(&mut market).is_err());
        assert!(buyer
            .events()
            .iter()
            .any(|e| e.message.contains("Download CIDs failed")));
        assert!(buyer.aggregate_and_pay(&mut market).is_err());
        assert!(buyer
            .events()
            .iter()
            .any(|e| e.message.contains("Aggregate & Pay failed")));
    }

    #[test]
    fn cid_watcher_cursor_never_reyields() {
        let mut market = Marketplace::new(MarketConfig::small_test());
        let mut buyer_app = BuyerApp::new();
        buyer_app.deploy_contract(&mut market).unwrap();

        // First two owners publish, then the buyer polls.
        for i in 0..2 {
            let mut app = OwnerApp::new(i);
            app.train_model(&mut market);
            app.upload_model(&mut market).unwrap();
            app.send_cid(&mut market).unwrap();
        }
        buyer_app.watch_cids(&mut market).unwrap();
        let after_first: Vec<String> = buyer_app.cids.clone();
        assert_eq!(after_first.len(), 2);

        // An idle poll (no new blocks) yields nothing.
        buyer_app.watch_cids(&mut market).unwrap();
        assert_eq!(buyer_app.cids, after_first);

        // Two more owners publish; the next poll yields only the fresh
        // CIDs — the cursor resumed past the already-consumed blocks.
        for i in 2..market.owners.len() {
            let mut app = OwnerApp::new(i);
            app.train_model(&mut market);
            app.upload_model(&mut market).unwrap();
            app.send_cid(&mut market).unwrap();
        }
        buyer_app.watch_cids(&mut market).unwrap();
        assert_eq!(buyer_app.cids.len(), market.owners.len());
        let unique: std::collections::HashSet<_> = buyer_app.cids.iter().collect();
        assert_eq!(
            unique.len(),
            buyer_app.cids.len(),
            "a cursor poll must never re-yield a CID"
        );
        // The incremental stream saw exactly what the polling read sees.
        assert_eq!(buyer_app.cids, market.buyer_download_cids().unwrap());
        // And the rest of the workflow continues off the watched set.
        buyer_app.retrieve_models(&mut market).unwrap();
        let report = buyer_app.aggregate_and_pay(&mut market).unwrap();
        assert_eq!(report.payments.len(), market.owners.len());
    }

    #[test]
    fn streaming_watcher_matches_cursor_polling_and_never_reyields() {
        let mut market = Marketplace::new(MarketConfig::small_test());
        let n = market.owners.len();
        let mut buyer_app = BuyerApp::new();
        buyer_app.deploy_contract(&mut market).unwrap();
        let contract = market.session.contract.expect("deployed above");
        // An independent cursor-polling watcher consumes the same stream
        // for comparison at every phase.
        let mut cursor = CidWatcher::new(contract, market.session.placement);
        let mut polled: Vec<String> = Vec::new();
        let publish = |market: &mut Marketplace, i: usize| {
            let mut app = OwnerApp::new(i);
            app.train_model(market);
            app.upload_model(market).unwrap();
            app.send_cid(market).unwrap();
        };

        // Phase 1 — catch-up: two owners publish before the subscription
        // exists; the streaming watcher's first poll range-reads them.
        publish(&mut market, 0);
        publish(&mut market, 1);
        buyer_app.watch_cids(&mut market).unwrap();
        assert!(buyer_app.watcher.as_ref().unwrap().is_streaming());
        let (fresh, _) = cursor.poll(&mut market.world).unwrap();
        polled.extend(fresh);
        assert_eq!(buyer_app.cids, polled);
        assert_eq!(buyer_app.cids.len(), 2);

        // Phase 2 — live stream: an idle poll yields nothing, then a fresh
        // publish arrives by push. From here the streaming watcher must not
        // issue any further range queries — only the cursor watcher does.
        let logs_before = market
            .world
            .rpc_metrics(EndpointId(0))
            .method("eth_getLogs")
            .calls;
        buyer_app.watch_cids(&mut market).unwrap();
        assert_eq!(buyer_app.cids, polled);
        publish(&mut market, 2);
        buyer_app.watch_cids(&mut market).unwrap();
        let (fresh, _) = cursor.poll(&mut market.world).unwrap();
        polled.extend(fresh);
        assert_eq!(buyer_app.cids, polled);
        assert_eq!(buyer_app.cids.len(), 3);
        let logs_after = market
            .world
            .rpc_metrics(EndpointId(0))
            .method("eth_getLogs")
            .calls;
        assert_eq!(
            logs_after,
            logs_before + 1,
            "only the cursor comparison watcher may range-query while the stream is live"
        );

        // Phase 3 — graceful fallback: degrade to cursor polling; the next
        // publish is picked up from the same block, no skips, no re-yields.
        buyer_app
            .watcher
            .as_mut()
            .unwrap()
            .degrade(&mut market.world);
        assert!(!buyer_app.watcher.as_ref().unwrap().is_streaming());
        publish(&mut market, 3);
        buyer_app.watch_cids(&mut market).unwrap();
        let (fresh, _) = cursor.poll(&mut market.world).unwrap();
        polled.extend(fresh);
        assert_eq!(buyer_app.cids, polled);
        assert_eq!(buyer_app.cids.len(), n);

        // The streamed sequence is exactly the chain's upload order, with
        // nothing yielded twice in any phase.
        let unique: std::collections::HashSet<_> = buyer_app.cids.iter().collect();
        assert_eq!(unique.len(), buyer_app.cids.len());
        assert_eq!(buyer_app.cids, market.buyer_download_cids().unwrap());
    }

    #[test]
    fn dropped_owner_flow_is_reflected_in_event_logs() {
        // The failure scenario from the paper's availability discussion: one
        // owner trains and uploads but never presses "Send CID". The other
        // screens' logs must tell that story — fewer CIDs downloaded, fewer
        // models retrieved, fewer owners paid — and the dropout's own log
        // must stop at the upload event.
        let mut market = Marketplace::new(MarketConfig::small_test());
        let n = market.owners.len();
        let dropout = 1usize;
        let mut buyer_app = BuyerApp::new();
        buyer_app.deploy_contract(&mut market).unwrap();

        let mut owner_apps: Vec<OwnerApp> = (0..n).map(OwnerApp::new).collect();
        for (i, app) in owner_apps.iter_mut().enumerate() {
            app.connect_wallet(&mut market);
            app.train_model(&mut market);
            app.upload_model(&mut market).unwrap();
            if i != dropout {
                app.send_cid(&mut market).unwrap();
            }
        }

        // The dropout's screen has no on-chain confirmation event…
        assert!(owner_apps[dropout]
            .events()
            .iter()
            .all(|e| !e.message.contains("CID sent on-chain")));
        assert_eq!(owner_apps[dropout].events().len(), 3);
        // …while honest owners' screens do.
        for (i, app) in owner_apps.iter().enumerate() {
            if i != dropout {
                assert!(app
                    .events()
                    .iter()
                    .any(|e| e.message.contains("CID sent on-chain")));
            }
        }

        buyer_app.download_cids(&mut market).unwrap();
        buyer_app.retrieve_models(&mut market).unwrap();
        let report = buyer_app.aggregate_and_pay(&mut market).unwrap();
        assert_eq!(report.payments.len(), n - 1);
        // The buyer's log reflects the reduced participation.
        let expect_download = format!("Downloaded {} CIDs", n - 1);
        let expect_retrieve = format!("Retrieved and verified {} models", n - 1);
        let expect_paid = format!("{} owners", n - 1);
        let log = buyer_app.events();
        assert!(log.iter().any(|e| e.message.contains(&expect_download)));
        assert!(log.iter().any(|e| e.message.contains(&expect_retrieve)));
        assert!(log.iter().any(|e| e.message.contains(&expect_paid)));
    }
}
