//! # ofl-core
//!
//! The OFL-W3 system itself: a one-shot federated-learning marketplace on a
//! (simulated) Web 3.0 stack. Model **buyers** fund a smart contract and
//! aggregate shared models with PFNM; model **owners** train on private
//! silos and are paid by Leave-one-out contribution.
//!
//! - [`config`]: session parameters (the paper's §4 demo defaults),
//!   including each market's shard [`config::MarketConfig::placement`].
//! - [`world`]: the shared substrate — a provider *pool* of N chain shards
//!   plus their IPFS swarms, one virtual clock.
//! - [`market`]: the 7-step workflow and the [`market::SessionReport`] that
//!   feeds every figure/table of the paper.
//! - [`engine`]: the discrete-event session engine — concurrent owners,
//!   shared blocks, and [`engine::MultiMarket`] worlds (N sessions placed
//!   on one or many shards).
//! - [`dapp`]: the button-level React/Flask DApp facade of Fig 3.
//! - [`scenario`]: parameterized sessions with failure injection — the
//!   engine behind the regime sweeps in `tests/scenarios.rs` and the
//!   benches.
//!
//! ## Example: the paper's demo in five lines
//!
//! ```no_run
//! use ofl_core::config::MarketConfig;
//! use ofl_core::market::Marketplace;
//!
//! let (market, report) = Marketplace::run(MarketConfig::default()).unwrap();
//! println!("aggregated accuracy: {:.2} %", report.aggregated_accuracy * 100.0);
//! println!("{}", ofl_core::market::render_payment_table(&report.payments));
//! println!("{}", market.buyer_recorder.render("Buyer time distribution"));
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod dapp;
pub mod engine;
pub mod market;
pub mod scenario;
pub mod world;

pub use config::{FinalizePolicy, MarketConfig, PartitionScheme};
pub use engine::{Arrivals, EngineConfig, EngineReport, MultiMarket};
pub use market::{MarketSession, Marketplace, SessionBlueprint, SessionReport};
pub use ofl_rpc::EndpointId;
pub use scenario::{ExecutionMode, FailurePlan, Scenario, ScenarioOutcome, ScenarioSuite};
pub use world::{ShardSpec, World};
