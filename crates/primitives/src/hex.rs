//! Lowercase hex encoding/decoding with optional `0x` prefix handling.

use core::fmt;

/// Errors from [`from_hex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// Input length is odd.
    OddLength,
    /// A byte outside `[0-9a-fA-F]` at the given position.
    InvalidChar { position: usize, byte: u8 },
}

impl fmt::Display for HexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HexError::OddLength => write!(f, "hex string has odd length"),
            HexError::InvalidChar { position, byte } => {
                write!(f, "invalid hex byte 0x{byte:02x} at position {position}")
            }
        }
    }
}

impl std::error::Error for HexError {}

/// Encodes bytes as lowercase hex (no prefix).
pub fn to_hex(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Encodes bytes as `0x`-prefixed lowercase hex.
pub fn to_hex_prefixed(bytes: &[u8]) -> String {
    format!("0x{}", to_hex(bytes))
}

fn nibble(b: u8, position: usize) -> Result<u8, HexError> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        _ => Err(HexError::InvalidChar { position, byte: b }),
    }
}

/// Decodes a hex string; a leading `0x`/`0X` is accepted and ignored.
pub fn from_hex(s: &str) -> Result<Vec<u8>, HexError> {
    let s = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(HexError::OddLength);
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for i in (0..bytes.len()).step_by(2) {
        out.push((nibble(bytes[i], i)? << 4) | nibble(bytes[i + 1], i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00, 0x01, 0xab, 0xff];
        let s = to_hex(&data);
        assert_eq!(s, "0001abff");
        assert_eq!(from_hex(&s).unwrap(), data);
        assert_eq!(from_hex(&to_hex_prefixed(&data)).unwrap(), data);
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(from_hex("ABCDEF").unwrap(), [0xab, 0xcd, 0xef]);
        assert_eq!(from_hex("0XAB").unwrap(), [0xab]);
    }

    #[test]
    fn errors() {
        assert_eq!(from_hex("abc"), Err(HexError::OddLength));
        assert_eq!(
            from_hex("zz"),
            Err(HexError::InvalidChar {
                position: 0,
                byte: b'z'
            })
        );
        assert!(matches!(
            from_hex("a g0"),
            Err(HexError::InvalidChar { position: 1, .. })
        ));
    }

    #[test]
    fn empty() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert_eq!(from_hex("0x").unwrap(), Vec::<u8>::new());
    }
}
