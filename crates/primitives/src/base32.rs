//! RFC 4648 base32, lowercase, unpadded — the multibase `b` encoding used by
//! CIDv1 strings (`bafy...`).

const ALPHABET: &[u8; 32] = b"abcdefghijklmnopqrstuvwxyz234567";

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base32Error {
    /// A character outside the lowercase RFC 4648 alphabet.
    InvalidChar { position: usize, ch: char },
    /// Trailing bits that cannot form a whole byte are nonzero, or the
    /// string length is impossible for any byte sequence.
    InvalidLength,
}

impl core::fmt::Display for Base32Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Base32Error::InvalidChar { position, ch } => {
                write!(f, "invalid base32 character {ch:?} at position {position}")
            }
            Base32Error::InvalidLength => write!(f, "invalid base32 length"),
        }
    }
}

impl std::error::Error for Base32Error {}

/// Encodes bytes as unpadded lowercase base32.
pub fn encode(input: &[u8]) -> String {
    let mut out = String::with_capacity(input.len().div_ceil(5) * 8);
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &b in input {
        acc = (acc << 8) | b as u64;
        acc_bits += 8;
        while acc_bits >= 5 {
            acc_bits -= 5;
            out.push(ALPHABET[((acc >> acc_bits) & 0x1f) as usize] as char);
        }
    }
    if acc_bits > 0 {
        out.push(ALPHABET[((acc << (5 - acc_bits)) & 0x1f) as usize] as char);
    }
    out
}

/// Decodes unpadded lowercase base32.
pub fn decode(input: &str) -> Result<Vec<u8>, Base32Error> {
    let mut out = Vec::with_capacity(input.len() * 5 / 8);
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for (i, c) in input.bytes().enumerate() {
        let v = match c {
            b'a'..=b'z' => c - b'a',
            b'2'..=b'7' => c - b'2' + 26,
            _ => {
                return Err(Base32Error::InvalidChar {
                    position: i,
                    ch: c as char,
                })
            }
        };
        acc = (acc << 5) | v as u64;
        acc_bits += 5;
        if acc_bits >= 8 {
            acc_bits -= 8;
            out.push((acc >> acc_bits) as u8);
        }
    }
    // Leftover bits are padding and must be zero; 1..=4 leftover chars that
    // can't complete a byte indicate a malformed length when > 7 bits remain
    // unused in a way no encoder produces.
    if acc_bits > 0 && (acc & ((1 << acc_bits) - 1)) != 0 {
        return Err(Base32Error::InvalidLength);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors_lowercase_unpadded() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "my");
        assert_eq!(encode(b"fo"), "mzxq");
        assert_eq!(encode(b"foo"), "mzxw6");
        assert_eq!(encode(b"foob"), "mzxw6yq");
        assert_eq!(encode(b"fooba"), "mzxw6ytb");
        assert_eq!(encode(b"foobar"), "mzxw6ytboi");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("mzxw6ytboi").unwrap(), b"foobar");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
        for len in 0..40 {
            let d = vec![0xA5u8; len];
            assert_eq!(decode(&encode(&d)).unwrap(), d, "len={len}");
        }
    }

    #[test]
    fn rejects_uppercase_and_symbols() {
        assert!(decode("MZXW6").is_err());
        assert!(decode("mzx=").is_err());
        assert!(decode("0").is_err()); // '0' and '1' excluded
    }

    #[test]
    fn rejects_nonzero_padding_bits() {
        // "mz" decodes 10 bits → 1 byte + 2 leftover bits; make them nonzero.
        // 'z' = 25 = 0b11001; leftover low 2 bits = 0b01 ≠ 0 → error.
        assert!(decode("mz").is_err());
        // 'y' = 24 = 0b11000 → leftover bits zero → ok.
        assert!(decode("my").is_ok());
    }
}
