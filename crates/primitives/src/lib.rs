//! # ofl-primitives
//!
//! Self-contained cryptographic and encoding primitives for the OFL-W3
//! reproduction stack. Everything here is implemented from scratch against
//! published test vectors — no external crypto dependencies — so the
//! blockchain (`ofl-eth`) and content-addressed storage (`ofl-ipfs`) layers
//! above are fully auditable.
//!
//! Modules:
//! - [`u256`]: 256/512-bit unsigned integers (EVM words, wei, field elements)
//! - [`keccak`][]: Keccak-256 (Ethereum hashing)
//! - [`sha256`](mod@sha256): SHA-256 + HMAC-SHA256 (IPFS multihash, RFC-6979 nonces)
//! - [`hex`], [`base58`], [`base32`]: text encodings (addresses, CIDs)
//! - [`varint`]: unsigned LEB128 varints (multiformats headers)
//! - [`rlp`]: Recursive Length Prefix (transactions, blocks)
//! - [`fixed`]: `H160` / `H256` fixed-width types
//! - [`hotpath`]: wall-clock phase accounting for the bench hot paths

#![forbid(unsafe_code)]

pub mod base32;
pub mod base58;
pub mod fixed;
pub mod hex;
pub mod hotpath;
pub mod keccak;
pub mod rlp;
pub mod sha256;
pub mod u256;
pub mod varint;

pub use fixed::{H160, H256};
pub use hotpath::{
    phase_snapshot, reset_phase_times, set_phase_timing, HotPhase, PhaseTimer, PhaseTimes,
};
pub use keccak::keccak256;
pub use sha256::{hmac_sha256, sha256};
pub use u256::{U256, U512};

/// Wei per ether (10^18), as a convenience for balance formatting.
pub fn wei_per_eth() -> U256 {
    U256::from_u128(1_000_000_000_000_000_000)
}

/// Wei per gwei (10^9).
pub fn wei_per_gwei() -> U256 {
    U256::from_u64(1_000_000_000)
}

/// Formats a wei amount as a decimal ETH string with `dp` fractional digits
/// (rounded toward zero), e.g. `format_eth(&fee, 8) == "0.00204900"`.
pub fn format_eth(wei: &U256, dp: usize) -> String {
    let (whole, frac) = wei.div_rem(&wei_per_eth());
    if dp == 0 {
        return whole.to_dec_string();
    }
    // Scale the fractional remainder to dp digits.
    let mut scaled = frac;
    let ten = U256::from_u64(10);
    for _ in 0..dp {
        scaled = scaled.wrapping_mul(&ten);
    }
    let digits = scaled.div_rem(&wei_per_eth()).0.to_dec_string();
    let padded = format!("{digits:0>dp$}");
    format!("{}.{}", whole.to_dec_string(), padded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eth_formatting() {
        let one_eth = wei_per_eth();
        assert_eq!(format_eth(&one_eth, 4), "1.0000");
        let fee = U256::from_u128(1_623_660_000_000_000); // 0.00162366 ETH
        assert_eq!(format_eth(&fee, 8), "0.00162366");
        assert_eq!(format_eth(&U256::ZERO, 2), "0.00");
        assert_eq!(format_eth(&U256::from_u64(1), 18), "0.000000000000000001");
    }

    #[test]
    fn gwei_constant() {
        assert_eq!(
            wei_per_gwei().wrapping_mul(&U256::from_u64(1_000_000_000)),
            wei_per_eth()
        );
    }
}
