//! Keccak-256 as used by Ethereum (the original Keccak padding `0x01`, not
//! the NIST SHA-3 `0x06` variant).
//!
//! Used for contract addresses, transaction hashes, event topics, function
//! selectors, and EVM `KECCAK256`.

/// Keccak-f[1600] round constants.
const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets for the rho step, indexed `[x][y]`.
const RHO: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// One Keccak-f[1600] permutation over the 5×5 lane state.
fn keccak_f(state: &mut [[u64; 5]; 5]) {
    for rc in RC {
        // Theta
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x][0] ^ state[x][1] ^ state[x][2] ^ state[x][3] ^ state[x][4];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for x in 0..5 {
            for lane in state[x].iter_mut() {
                *lane ^= d[x];
            }
        }
        // Rho + Pi
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = state[x][y].rotate_left(RHO[x][y]);
            }
        }
        // Chi
        for x in 0..5 {
            for y in 0..5 {
                state[x][y] = b[x][y] ^ ((!b[(x + 1) % 5][y]) & b[(x + 2) % 5][y]);
            }
        }
        // Iota
        state[0][0] ^= rc;
    }
}

/// Incremental Keccak-256 hasher.
///
/// ```
/// use ofl_primitives::keccak::Keccak256;
/// let mut h = Keccak256::new();
/// h.update(b"hello");
/// h.update(b" world");
/// assert_eq!(h.finalize(), ofl_primitives::keccak::keccak256(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Keccak256 {
    state: [[u64; 5]; 5],
    buf: [u8; Self::RATE],
    buf_len: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Keccak256 {
    /// Rate in bytes for a 256-bit capacity: (1600 - 2*256) / 8.
    const RATE: usize = 136;

    /// Creates an empty hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [[0; 5]; 5],
            buf: [0; Self::RATE],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut rest = data;
        while !rest.is_empty() {
            let take = (Self::RATE - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == Self::RATE {
                self.absorb_block();
            }
        }
    }

    fn absorb_block(&mut self) {
        for i in 0..Self::RATE / 8 {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(&self.buf[i * 8..(i + 1) * 8]);
            let v = u64::from_le_bytes(lane);
            self.state[i % 5][i / 5] ^= v;
        }
        keccak_f(&mut self.state);
        self.buf_len = 0;
    }

    /// Applies padding and squeezes the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        // Keccak (pre-NIST) multi-rate padding: 0x01 .. 0x80.
        self.buf[self.buf_len..].fill(0);
        self.buf[self.buf_len] ^= 0x01;
        self.buf[Self::RATE - 1] ^= 0x80;
        self.buf_len = Self::RATE;
        self.absorb_block();

        let mut out = [0u8; 32];
        for i in 0..4 {
            let lane = self.state[i % 5][i / 5];
            out[i * 8..(i + 1) * 8].copy_from_slice(&lane.to_le_bytes());
        }
        out
    }
}

/// One-shot Keccak-256.
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    let mut h = Keccak256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn empty_string_vector() {
        // Well-known Ethereum constant: keccak256("").
        assert_eq!(
            to_hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            to_hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn transfer_selector_vector() {
        // First 4 bytes of keccak256("transfer(address,uint256)") = a9059cbb —
        // the most famous function selector on Ethereum.
        let h = keccak256(b"transfer(address,uint256)");
        assert_eq!(to_hex(&h[..4]), "a9059cbb");
    }

    #[test]
    fn long_input_spanning_blocks() {
        // 1 MiB of 0xAA absorbed in odd-sized chunks must equal one-shot.
        let data = vec![0xAAu8; 1 << 20];
        let oneshot = keccak256(&data);
        let mut inc = Keccak256::new();
        for chunk in data.chunks(997) {
            inc.update(chunk);
        }
        assert_eq!(inc.finalize(), oneshot);
    }

    #[test]
    fn rate_boundary_lengths() {
        // Lengths straddling the 136-byte rate exercise the padding paths.
        for len in [135usize, 136, 137, 271, 272, 273] {
            let data = vec![0x5Au8; len];
            let mut inc = Keccak256::new();
            inc.update(&data[..len / 2]);
            inc.update(&data[len / 2..]);
            assert_eq!(inc.finalize(), keccak256(&data), "len={len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(keccak256(b"a"), keccak256(b"b"));
        assert_ne!(keccak256(b""), keccak256(b"\x00"));
    }
}
