//! Wall-clock hot-path phase accounting.
//!
//! The fleet benches want to know *where* real time goes — signing, codec,
//! event-queue bookkeeping, aggregation, or the wire — so regressions are
//! attributable to a phase instead of a whole run. This module keeps one
//! process-wide nanosecond counter per [`HotPhase`]; call sites guard a
//! region with a [`PhaseTimer`] and the drop adds the elapsed wall time to
//! that phase's counter.
//!
//! Timing is **off by default** ([`set_phase_timing`]) so the instrumented
//! hot paths pay only a relaxed atomic load when nobody is measuring.
//! Phases may nest or overlap — e.g. the wire phase of a socket round trip
//! includes the codec phase of encoding its frames — so the counters are a
//! breakdown of *attributed* time, not a partition of wall time.
//!
//! Unlike `ofl_netsim::timing::PhaseRecorder` (which accounts *virtual*
//! time inside a simulated session), these counters measure real host
//! nanoseconds and exist purely for benchmarking; they never influence
//! simulation results.

use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented hot-path phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotPhase {
    /// Transaction signing (secp256k1 scalar multiplication + RFC-6979).
    Sign,
    /// Envelope/frame encode + decode.
    Codec,
    /// Discrete-event queue schedule/pop bookkeeping.
    Queue,
    /// Model aggregation and payment finalisation.
    Aggregate,
    /// Socket send/receive, including time blocked on the peer.
    Wire,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SIGN_NS: AtomicU64 = AtomicU64::new(0);
static CODEC_NS: AtomicU64 = AtomicU64::new(0);
static QUEUE_NS: AtomicU64 = AtomicU64::new(0);
static AGGREGATE_NS: AtomicU64 = AtomicU64::new(0);
static WIRE_NS: AtomicU64 = AtomicU64::new(0);

fn counter(phase: HotPhase) -> &'static AtomicU64 {
    match phase {
        HotPhase::Sign => &SIGN_NS,
        HotPhase::Codec => &CODEC_NS,
        HotPhase::Queue => &QUEUE_NS,
        HotPhase::Aggregate => &AGGREGATE_NS,
        HotPhase::Wire => &WIRE_NS,
    }
}

/// Turns wall-clock phase accounting on or off process-wide (default: off).
pub fn set_phase_timing(enabled: bool) {
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// True when [`PhaseTimer`]s are currently recording.
pub fn phase_timing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `ns` nanoseconds directly to a phase's counter (recorded even while
/// timing is disabled; prefer [`PhaseTimer`] at call sites).
pub fn record_phase_ns(phase: HotPhase, ns: u64) {
    counter(phase).fetch_add(ns, Ordering::Relaxed);
}

/// Zeroes every phase counter, e.g. between bench legs.
pub fn reset_phase_times() {
    for phase in [
        HotPhase::Sign,
        HotPhase::Codec,
        HotPhase::Queue,
        HotPhase::Aggregate,
        HotPhase::Wire,
    ] {
        counter(phase).store(0, Ordering::Relaxed);
    }
}

/// A snapshot of the accumulated wall-clock nanoseconds per phase — the
/// `phase_times` object written into `BENCH_fleet.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PhaseTimes {
    /// Nanoseconds spent signing transactions.
    pub sign_ns: u64,
    /// Nanoseconds spent encoding/decoding envelopes and frames.
    pub codec_ns: u64,
    /// Nanoseconds spent in event-queue schedule/pop bookkeeping.
    pub queue_ns: u64,
    /// Nanoseconds spent aggregating models and finalising payments.
    pub aggregate_ns: u64,
    /// Nanoseconds spent on socket send/receive (includes peer wait).
    pub wire_ns: u64,
}

/// Reads the current per-phase totals.
pub fn phase_snapshot() -> PhaseTimes {
    PhaseTimes {
        sign_ns: SIGN_NS.load(Ordering::Relaxed),
        codec_ns: CODEC_NS.load(Ordering::Relaxed),
        queue_ns: QUEUE_NS.load(Ordering::Relaxed),
        aggregate_ns: AGGREGATE_NS.load(Ordering::Relaxed),
        wire_ns: WIRE_NS.load(Ordering::Relaxed),
    }
}

/// Publishes the current per-phase totals into the `ofl_trace::metrics`
/// registry as `hotpath.<phase>_ns` gauges, so a daemon's phase breakdown
/// is readable over the wire (`Frame::Stats`) alongside its session
/// counters. Call after a run (or periodically); gauges are last-write-wins.
pub fn publish_phase_metrics() {
    let snap = phase_snapshot();
    for (name, ns) in [
        ("hotpath.sign_ns", snap.sign_ns),
        ("hotpath.codec_ns", snap.codec_ns),
        ("hotpath.queue_ns", snap.queue_ns),
        ("hotpath.aggregate_ns", snap.aggregate_ns),
        ("hotpath.wire_ns", snap.wire_ns),
    ] {
        ofl_trace::metrics::gauge_set(name, ns.min(i64::MAX as u64) as i64);
    }
}

/// RAII guard that attributes the wall time between construction and drop
/// to one [`HotPhase`]. Construction is a no-op (no clock read) while
/// timing is disabled.
pub struct PhaseTimer {
    phase: HotPhase,
    started: Option<Instant>,
}

impl PhaseTimer {
    /// Starts timing `phase` if accounting is enabled.
    pub fn start(phase: HotPhase) -> Self {
        let started = phase_timing_enabled().then(Instant::now);
        PhaseTimer { phase, started }
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            record_phase_ns(self.phase, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters and the enable flag are process-wide, so the tests in
    // this module exercise disjoint phases and never reset globally.

    #[test]
    fn disabled_timer_records_nothing() {
        set_phase_timing(false);
        let before = phase_snapshot().queue_ns;
        {
            let _t = PhaseTimer::start(HotPhase::Queue);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(phase_snapshot().queue_ns, before);
    }

    #[test]
    fn direct_recording_accumulates() {
        let before = phase_snapshot().aggregate_ns;
        record_phase_ns(HotPhase::Aggregate, 17);
        record_phase_ns(HotPhase::Aggregate, 25);
        assert_eq!(phase_snapshot().aggregate_ns, before + 42);
    }

    #[test]
    fn enabled_timer_attributes_elapsed_time() {
        let before = phase_snapshot().wire_ns;
        set_phase_timing(true);
        {
            let _t = PhaseTimer::start(HotPhase::Wire);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_phase_timing(false);
        assert!(phase_snapshot().wire_ns >= before + 1_000_000);
    }
}
