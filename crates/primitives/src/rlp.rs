//! Recursive Length Prefix (RLP) encoding and decoding, per the Ethereum
//! Yellow Paper appendix B.
//!
//! RLP serializes transactions and blocks before hashing/signing; decoding is
//! used by the chain to accept raw signed transactions.

use crate::u256::U256;

/// An RLP item: either a byte string or a list of items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A byte string (possibly empty).
    Bytes(Vec<u8>),
    /// A (possibly empty) heterogeneous list.
    List(Vec<Item>),
}

impl Item {
    /// Byte-string constructor from anything byte-like.
    pub fn bytes(b: impl AsRef<[u8]>) -> Item {
        Item::Bytes(b.as_ref().to_vec())
    }

    /// Canonical integer item: big-endian with no leading zeros.
    pub fn uint(v: &U256) -> Item {
        Item::Bytes(v.to_be_bytes_trimmed())
    }

    /// Canonical integer item from a `u64`.
    pub fn u64(v: u64) -> Item {
        Item::uint(&U256::from_u64(v))
    }

    /// Extracts the byte string, if this is one.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Item::Bytes(b) => Some(b),
            Item::List(_) => None,
        }
    }

    /// Extracts the list, if this is one.
    pub fn as_list(&self) -> Option<&[Item]> {
        match self {
            Item::List(l) => Some(l),
            Item::Bytes(_) => None,
        }
    }

    /// Decodes the canonical integer form (empty = 0, no leading zeros).
    pub fn as_uint(&self) -> Result<U256, RlpError> {
        let b = self.as_bytes().ok_or(RlpError::ExpectedBytes)?;
        if b.len() > 32 {
            return Err(RlpError::IntegerTooLarge);
        }
        if !b.is_empty() && b[0] == 0 {
            return Err(RlpError::LeadingZero);
        }
        Ok(U256::from_be_slice(b))
    }

    /// Decodes the canonical integer form into a `u64`.
    pub fn as_u64(&self) -> Result<u64, RlpError> {
        self.as_uint()?.to_u64().ok_or(RlpError::IntegerTooLarge)
    }
}

/// Errors from RLP decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RlpError {
    /// Input ended before the announced payload.
    Truncated,
    /// A length prefix itself has leading zero bytes or a single byte that
    /// should have been encoded directly.
    NonCanonical,
    /// Decoded item left trailing bytes where none were expected.
    TrailingBytes,
    /// Expected a byte string, found a list (or vice versa).
    ExpectedBytes,
    /// Integer field exceeds the target width.
    IntegerTooLarge,
    /// Canonical integers must not have leading zeros.
    LeadingZero,
}

impl core::fmt::Display for RlpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            RlpError::Truncated => "truncated RLP input",
            RlpError::NonCanonical => "non-canonical RLP encoding",
            RlpError::TrailingBytes => "trailing bytes after RLP item",
            RlpError::ExpectedBytes => "expected byte string, found list",
            RlpError::IntegerTooLarge => "integer field too large",
            RlpError::LeadingZero => "integer has leading zero bytes",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for RlpError {}

/// Encodes an item to bytes.
pub fn encode(item: &Item) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(item, &mut out);
    out
}

/// Appends the encoding of `item` to `out`.
pub fn encode_into(item: &Item, out: &mut Vec<u8>) {
    match item {
        Item::Bytes(b) => {
            if b.len() == 1 && b[0] < 0x80 {
                out.push(b[0]);
            } else {
                encode_length(b.len(), 0x80, out);
                out.extend_from_slice(b);
            }
        }
        Item::List(items) => {
            let mut payload = Vec::new();
            for it in items {
                encode_into(it, &mut payload);
            }
            encode_length(payload.len(), 0xc0, out);
            out.extend_from_slice(&payload);
        }
    }
}

fn encode_length(len: usize, offset: u8, out: &mut Vec<u8>) {
    if len < 56 {
        out.push(offset + len as u8);
    } else {
        let len_bytes = U256::from(len).to_be_bytes_trimmed();
        out.push(offset + 55 + len_bytes.len() as u8);
        out.extend_from_slice(&len_bytes);
    }
}

/// Decodes a single item consuming the entire input.
pub fn decode(input: &[u8]) -> Result<Item, RlpError> {
    let (item, used) = decode_prefix(input)?;
    if used != input.len() {
        return Err(RlpError::TrailingBytes);
    }
    Ok(item)
}

/// Decodes one item from the front of `input`, returning it and the bytes
/// consumed.
pub fn decode_prefix(input: &[u8]) -> Result<(Item, usize), RlpError> {
    let &first = input.first().ok_or(RlpError::Truncated)?;
    match first {
        0x00..=0x7f => Ok((Item::Bytes(vec![first]), 1)),
        0x80..=0xb7 => {
            let len = (first - 0x80) as usize;
            let payload = input.get(1..1 + len).ok_or(RlpError::Truncated)?;
            if len == 1 && payload[0] < 0x80 {
                return Err(RlpError::NonCanonical);
            }
            Ok((Item::Bytes(payload.to_vec()), 1 + len))
        }
        0xb8..=0xbf => {
            let len_of_len = (first - 0xb7) as usize;
            let len = read_length(input, len_of_len)?;
            let start = 1 + len_of_len;
            let payload = input.get(start..start + len).ok_or(RlpError::Truncated)?;
            Ok((Item::Bytes(payload.to_vec()), start + len))
        }
        0xc0..=0xf7 => {
            let len = (first - 0xc0) as usize;
            let payload = input.get(1..1 + len).ok_or(RlpError::Truncated)?;
            Ok((Item::List(decode_list_payload(payload)?), 1 + len))
        }
        0xf8..=0xff => {
            let len_of_len = (first - 0xf7) as usize;
            let len = read_length(input, len_of_len)?;
            let start = 1 + len_of_len;
            let payload = input.get(start..start + len).ok_or(RlpError::Truncated)?;
            Ok((Item::List(decode_list_payload(payload)?), start + len))
        }
    }
}

fn read_length(input: &[u8], len_of_len: usize) -> Result<usize, RlpError> {
    let bytes = input.get(1..1 + len_of_len).ok_or(RlpError::Truncated)?;
    if bytes[0] == 0 {
        return Err(RlpError::NonCanonical);
    }
    if len_of_len > 8 {
        return Err(RlpError::NonCanonical);
    }
    let mut len: usize = 0;
    for &b in bytes {
        len = len.checked_mul(256).ok_or(RlpError::NonCanonical)? + b as usize;
    }
    if len < 56 {
        return Err(RlpError::NonCanonical);
    }
    Ok(len)
}

fn decode_list_payload(mut payload: &[u8]) -> Result<Vec<Item>, RlpError> {
    let mut items = Vec::new();
    while !payload.is_empty() {
        let (item, used) = decode_prefix(payload)?;
        items.push(item);
        payload = &payload[used..];
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc_bytes(b: &[u8]) -> Vec<u8> {
        encode(&Item::bytes(b))
    }

    #[test]
    fn canonical_vectors() {
        // From the Ethereum wiki RLP test suite.
        assert_eq!(enc_bytes(b"dog"), [&[0x83u8][..], b"dog"].concat());
        assert_eq!(
            encode(&Item::List(vec![Item::bytes(b"cat"), Item::bytes(b"dog")])),
            [&[0xc8u8, 0x83][..], b"cat", &[0x83], b"dog"].concat()
        );
        assert_eq!(enc_bytes(b""), vec![0x80]);
        assert_eq!(encode(&Item::List(vec![])), vec![0xc0]);
        assert_eq!(encode(&Item::u64(0)), vec![0x80]);
        assert_eq!(encode(&Item::u64(15)), vec![0x0f]);
        assert_eq!(encode(&Item::u64(1024)), vec![0x82, 0x04, 0x00]);
        // Set-theoretic nesting [ [], [[]], [ [], [[]] ] ]
        let nested = Item::List(vec![
            Item::List(vec![]),
            Item::List(vec![Item::List(vec![])]),
            Item::List(vec![
                Item::List(vec![]),
                Item::List(vec![Item::List(vec![])]),
            ]),
        ]);
        assert_eq!(
            encode(&nested),
            vec![0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0]
        );
    }

    #[test]
    fn long_string_vector() {
        let s = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit";
        let enc = enc_bytes(s);
        assert_eq!(enc[0], 0xb8);
        assert_eq!(enc[1], 0x38);
        assert_eq!(&enc[2..], s);
    }

    #[test]
    fn single_byte_below_0x80_is_itself() {
        assert_eq!(enc_bytes(&[0x00]), vec![0x00]);
        assert_eq!(enc_bytes(&[0x7f]), vec![0x7f]);
        assert_eq!(enc_bytes(&[0x80]), vec![0x81, 0x80]);
    }

    #[test]
    fn roundtrip_structures() {
        let item = Item::List(vec![
            Item::u64(1),
            Item::bytes(vec![0xffu8; 100]),
            Item::List(vec![Item::bytes(b"nested"), Item::u64(u64::MAX)]),
            Item::bytes(b""),
        ]);
        assert_eq!(decode(&encode(&item)).unwrap(), item);
    }

    #[test]
    fn roundtrip_large_list() {
        let item = Item::List((0..100).map(Item::u64).collect());
        let enc = encode(&item);
        assert!(enc.len() > 56);
        assert_eq!(decode(&enc).unwrap(), item);
    }

    #[test]
    fn rejects_noncanonical_single_byte() {
        // [0x81, 0x05] encodes byte 0x05 with an unnecessary prefix.
        assert_eq!(decode(&[0x81, 0x05]), Err(RlpError::NonCanonical));
    }

    #[test]
    fn rejects_noncanonical_length() {
        // Long form used for a payload under 56 bytes.
        let mut bad = vec![0xb8, 0x01];
        bad.push(0xaa);
        assert_eq!(decode(&bad), Err(RlpError::NonCanonical));
        // Length prefix with leading zero.
        let bad2 = [vec![0xb9, 0x00, 0x38], vec![0u8; 56]].concat();
        assert_eq!(decode(&bad2), Err(RlpError::NonCanonical));
    }

    #[test]
    fn rejects_truncation() {
        assert_eq!(decode(&[0x83, b'd', b'o']), Err(RlpError::Truncated));
        assert_eq!(decode(&[]), Err(RlpError::Truncated));
        assert_eq!(decode(&[0xb8]), Err(RlpError::Truncated));
    }

    #[test]
    fn rejects_trailing() {
        assert_eq!(decode(&[0x80, 0x00]), Err(RlpError::TrailingBytes));
    }

    #[test]
    fn uint_decoding_rules() {
        assert_eq!(Item::Bytes(vec![]).as_uint().unwrap(), U256::ZERO);
        assert_eq!(Item::Bytes(vec![0x04, 0x00]).as_u64().unwrap(), 1024);
        assert_eq!(
            Item::Bytes(vec![0x00, 0x01]).as_uint(),
            Err(RlpError::LeadingZero)
        );
        assert_eq!(
            Item::Bytes(vec![0xff; 33]).as_uint(),
            Err(RlpError::IntegerTooLarge)
        );
        assert_eq!(Item::List(vec![]).as_uint(), Err(RlpError::ExpectedBytes));
    }
}
