//! Unsigned LEB128 varints as used by multiformats (multihash, multicodec,
//! CIDv1 headers).

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// Input ended mid-varint.
    Truncated,
    /// More than 10 bytes / does not fit in u64.
    Overflow,
}

impl core::fmt::Display for VarintError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "truncated varint"),
            VarintError::Overflow => write!(f, "varint does not fit in u64"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends the LEB128 encoding of `value` to `out`.
pub fn encode_into(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Returns the LEB128 encoding of `value`.
pub fn encode(value: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    encode_into(value, &mut out);
    out
}

/// Decodes a varint from the front of `input`, returning the value and the
/// number of bytes consumed.
pub fn decode(input: &[u8]) -> Result<(u64, usize), VarintError> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i == 10 || (i == 9 && byte > 1) {
            return Err(VarintError::Overflow);
        }
        value |= ((byte & 0x7f) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    Err(VarintError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_single_byte() {
        for v in 0..128u64 {
            assert_eq!(encode(v), vec![v as u8]);
            assert_eq!(decode(&[v as u8]).unwrap(), (v, 1));
        }
    }

    #[test]
    fn multiformat_vectors() {
        assert_eq!(encode(0x12), vec![0x12]); // sha2-256 code
        assert_eq!(encode(128), vec![0x80, 0x01]);
        assert_eq!(encode(300), vec![0xac, 0x02]);
        assert_eq!(encode(0x70), vec![0x70]); // dag-pb codec
        assert_eq!(encode(0x0129), vec![0xa9, 0x02]); // dag-json codec
    }

    #[test]
    fn roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let enc = encode(v);
            let (dec, used) = decode(&enc).unwrap();
            assert_eq!(dec, v);
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn trailing_bytes_ignored() {
        let mut buf = encode(300);
        buf.extend_from_slice(&[0xff, 0xff]);
        assert_eq!(decode(&buf).unwrap(), (300, 2));
    }

    #[test]
    fn errors() {
        assert_eq!(decode(&[]), Err(VarintError::Truncated));
        assert_eq!(decode(&[0x80]), Err(VarintError::Truncated));
        assert_eq!(decode(&[0xff; 11]), Err(VarintError::Overflow));
        // 10th byte with more than 1 significant bit overflows u64.
        let mut bad = vec![0xff; 9];
        bad.push(0x02);
        assert_eq!(decode(&bad), Err(VarintError::Overflow));
    }
}
