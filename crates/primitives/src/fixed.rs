//! Fixed-size hash/address types: [`H256`] (32 bytes) and [`H160`]
//! (20 bytes, Ethereum addresses).

use crate::hex::{from_hex, to_hex, HexError};
use crate::u256::U256;
use core::fmt;
use serde::{Deserialize, Serialize};

macro_rules! fixed_hash {
    ($(#[$doc:meta])* $name:ident, $len:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
        pub struct $name(pub [u8; $len]);

        impl $name {
            /// All-zero value.
            pub const ZERO: $name = $name([0; $len]);

            /// Byte length of this hash type.
            pub const LEN: usize = $len;

            /// Constructs from a byte array.
            pub const fn from_bytes(b: [u8; $len]) -> Self {
                $name(b)
            }

            /// Constructs from a slice; panics if the length differs.
            pub fn from_slice(b: &[u8]) -> Self {
                let mut out = [0u8; $len];
                out.copy_from_slice(b);
                $name(out)
            }

            /// Borrow as a byte slice.
            pub fn as_bytes(&self) -> &[u8] {
                &self.0
            }

            /// True iff every byte is zero.
            pub fn is_zero(&self) -> bool {
                self.0 == [0; $len]
            }

            /// Parses a hex string (with or without `0x`).
            pub fn from_hex(s: &str) -> Result<Self, HexError> {
                let bytes = from_hex(s)?;
                if bytes.len() != $len {
                    return Err(HexError::OddLength);
                }
                Ok(Self::from_slice(&bytes))
            }

            /// `0x`-prefixed lowercase hex rendering.
            pub fn to_hex(&self) -> String {
                format!("0x{}", to_hex(&self.0))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.to_hex())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.to_hex())
            }
        }

        impl AsRef<[u8]> for $name {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }

        impl From<[u8; $len]> for $name {
            fn from(b: [u8; $len]) -> Self {
                $name(b)
            }
        }
    };
}

fixed_hash!(
    /// A 32-byte hash (Keccak-256 / SHA-256 digest, storage key, topic).
    H256,
    32
);
fixed_hash!(
    /// A 20-byte Ethereum account address.
    H160,
    20
);

impl H256 {
    /// Converts to a [`U256`] interpreting the bytes as big-endian.
    pub fn to_u256(&self) -> U256 {
        U256::from_be_bytes(&self.0)
    }

    /// Converts a [`U256`] to big-endian bytes.
    pub fn from_u256(v: &U256) -> H256 {
        H256(v.to_be_bytes())
    }
}

impl H160 {
    /// Zero-pads to a 32-byte word (ABI/EVM word form of an address).
    pub fn to_word(&self) -> H256 {
        let mut out = [0u8; 32];
        out[12..].copy_from_slice(&self.0);
        H256(out)
    }

    /// Truncates a 32-byte word to the low 20 bytes (EVM address coercion).
    pub fn from_word(w: &H256) -> H160 {
        H160::from_slice(&w.0[12..])
    }

    /// EIP-55 checksummed rendering (e.g. `0xbC43368F30...`), matching the
    /// wallet addresses printed in the paper's Table 1.
    pub fn to_checksum(&self) -> String {
        let lower = to_hex(&self.0);
        let digest = crate::keccak::keccak256(lower.as_bytes());
        let mut out = String::with_capacity(42);
        out.push_str("0x");
        for (i, c) in lower.chars().enumerate() {
            let nibble = (digest[i / 2] >> (4 * (1 - i % 2))) & 0xf;
            if c.is_ascii_alphabetic() && nibble >= 8 {
                out.push(c.to_ascii_uppercase());
            } else {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h256_u256_roundtrip() {
        let v = U256::from_u128(0xdeadbeef_cafebabe_u128);
        assert_eq!(H256::from_u256(&v).to_u256(), v);
    }

    #[test]
    fn h160_word_roundtrip() {
        let a = H160::from_hex("0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed").unwrap();
        let w = a.to_word();
        assert_eq!(&w.0[..12], &[0u8; 12]);
        assert_eq!(H160::from_word(&w), a);
    }

    #[test]
    fn eip55_checksum_vectors() {
        // Official EIP-55 test vectors.
        for addr in [
            "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed",
            "0xfB6916095ca1df60bB79Ce92cE3Ea74c37c5d359",
            "0xdbF03B407c01E7cD3CBea99509d93f8DDDC8C6FB",
            "0xD1220A0cf47c7B9Be7A2E6BA89F429762e7b9aDb",
        ] {
            let parsed = H160::from_hex(addr).unwrap();
            assert_eq!(parsed.to_checksum(), addr);
        }
    }

    #[test]
    fn hex_parse_and_display() {
        let h = H256::from_hex(&format!("0x{}", "ab".repeat(32))).unwrap();
        assert_eq!(h.to_hex(), format!("0x{}", "ab".repeat(32)));
        assert!(H256::from_hex("0x1234").is_err());
    }

    #[test]
    fn zero_checks() {
        assert!(H160::ZERO.is_zero());
        assert!(!H160::from_slice(&[1u8; 20]).is_zero());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = H256::from_slice(&[0u8; 32]);
        let mut b_bytes = [0u8; 32];
        b_bytes[0] = 1;
        let b = H256::from_slice(&b_bytes);
        assert!(a < b);
    }
}
