//! Fixed-width 256-bit and 512-bit unsigned integers.
//!
//! These back the EVM word type, wei balances, and the secp256k1 field and
//! scalar arithmetic in `ofl-eth`. Limbs are stored little-endian (`limbs[0]`
//! is least significant) which keeps carry propagation loops simple and lets
//! the widening multiply produce a [`U512`] without reallocation.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Not, Rem, Shl, Shr, Sub};

/// A 256-bit unsigned integer with wrapping two's-complement semantics where
/// noted and checked semantics elsewhere.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

/// A 512-bit unsigned integer, used as the intermediate type for widening
/// multiplication and modular reduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U512(pub [u64; 8]);

impl U256 {
    pub const ZERO: U256 = U256([0; 4]);
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Constructs from a `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Constructs from a `u128`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Little-endian limb accessor.
    #[inline]
    pub const fn limbs(&self) -> &[u64; 4] {
        &self.0
    }

    /// True iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Lowest 64 bits, truncating.
    #[inline]
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Lowest 128 bits, truncating.
    #[inline]
    pub const fn low_u128(&self) -> u128 {
        (self.0[0] as u128) | ((self.0[1] as u128) << 64)
    }

    /// Returns `Some(self as u64)` when the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Returns `Some(self as u128)` when the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.0[2] == 0 && self.0[3] == 0 {
            Some(self.low_u128())
        } else {
            None
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Value of bit `i` (little-endian bit order).
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 256);
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Big-endian 32-byte encoding.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.0[3 - i].to_be_bytes());
        }
        out
    }

    /// Parses a big-endian 32-byte encoding.
    pub fn from_be_bytes(b: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[i * 8..(i + 1) * 8]);
            limbs[3 - i] = u64::from_be_bytes(w);
        }
        U256(limbs)
    }

    /// Parses a big-endian slice of at most 32 bytes (shorter slices are
    /// zero-extended on the left, as in EVM calldata).
    pub fn from_be_slice(b: &[u8]) -> Self {
        assert!(b.len() <= 32, "slice too long for U256");
        let mut buf = [0u8; 32];
        buf[32 - b.len()..].copy_from_slice(b);
        Self::from_be_bytes(&buf)
    }

    /// Big-endian encoding with leading zero bytes stripped (empty for zero).
    /// This is the canonical RLP integer form.
    pub fn to_be_bytes_trimmed(&self) -> Vec<u8> {
        let full = self.to_be_bytes();
        let first = full.iter().position(|&b| b != 0).unwrap_or(32);
        full[first..].to_vec()
    }

    /// Checked addition.
    pub fn checked_add(&self, rhs: &U256) -> Option<U256> {
        let (v, overflow) = self.overflowing_add(rhs);
        if overflow {
            None
        } else {
            Some(v)
        }
    }

    /// Wrapping addition with overflow flag.
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *limb = s2;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    /// Wrapping (mod 2^256) addition — EVM `ADD` semantics.
    #[inline]
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        let (v, borrow) = self.overflowing_sub(rhs);
        if borrow {
            None
        } else {
            Some(v)
        }
    }

    /// Wrapping subtraction with borrow flag.
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            *limb = d2;
            borrow = b1 | b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping (mod 2^256) subtraction — EVM `SUB` semantics.
    #[inline]
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Full 256×256→512-bit multiplication.
    pub fn widening_mul(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        U512(out)
    }

    /// Wrapping (mod 2^256) multiplication — EVM `MUL` semantics.
    pub fn wrapping_mul(&self, rhs: &U256) -> U256 {
        let wide = self.widening_mul(rhs);
        U256([wide.0[0], wide.0[1], wide.0[2], wide.0[3]])
    }

    /// Checked multiplication.
    pub fn checked_mul(&self, rhs: &U256) -> Option<U256> {
        let wide = self.widening_mul(rhs);
        if wide.0[4..].iter().any(|&l| l != 0) {
            None
        } else {
            Some(U256([wide.0[0], wide.0[1], wide.0[2], wide.0[3]]))
        }
    }

    /// Simultaneous quotient and remainder. Division by zero yields
    /// `(0, 0)` to match EVM `DIV`/`MOD` conventions; checked wrappers reject
    /// zero divisors where Rust semantics are wanted.
    pub fn div_rem(&self, divisor: &U256) -> (U256, U256) {
        if divisor.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        if self < divisor {
            return (U256::ZERO, *self);
        }
        if divisor.bits() <= 64 {
            let d = divisor.0[0];
            let mut q = [0u64; 4];
            let mut rem: u64 = 0;
            for i in (0..4).rev() {
                let cur = ((rem as u128) << 64) | self.0[i] as u128;
                q[i] = (cur / d as u128) as u64;
                rem = (cur % d as u128) as u64;
            }
            return (U256(q), U256::from_u64(rem));
        }
        // Shift-subtract long division, processing one bit at a time from the
        // most significant set bit of the dividend.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let n = self.bits();
        for i in (0..n).rev() {
            remainder = remainder.shl_small(1);
            if self.bit(i as usize) {
                remainder.0[0] |= 1;
            }
            if remainder >= *divisor {
                remainder = remainder.wrapping_sub(divisor);
                quotient.0[(i / 64) as usize] |= 1 << (i % 64);
            }
        }
        (quotient, remainder)
    }

    /// Checked division (`None` on division by zero).
    pub fn checked_div(&self, rhs: &U256) -> Option<U256> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.div_rem(rhs).0)
        }
    }

    /// Checked remainder (`None` on division by zero).
    pub fn checked_rem(&self, rhs: &U256) -> Option<U256> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.div_rem(rhs).1)
        }
    }

    /// Left shift by fewer than 64 bits (internal fast path).
    fn shl_small(&self, s: u32) -> U256 {
        debug_assert!(s < 64);
        if s == 0 {
            return *self;
        }
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (i, limb) in out.iter_mut().enumerate() {
            *limb = (self.0[i] << s) | carry;
            carry = self.0[i] >> (64 - s);
        }
        U256(out)
    }

    /// Left shift by an arbitrary amount; shifts of ≥256 yield zero
    /// (EVM `SHL` semantics).
    pub fn shl(&self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        out[limb_shift..].copy_from_slice(&self.0[..4 - limb_shift]);
        U256(out).shl_small(bit_shift)
    }

    /// Right shift by an arbitrary amount; shifts of ≥256 yield zero
    /// (EVM `SHR` semantics).
    pub fn shr(&self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        out[..4 - limb_shift].copy_from_slice(&self.0[limb_shift..]);
        if bit_shift > 0 {
            let mut carry = 0u64;
            for i in (0..4).rev() {
                let new_carry = out[i] << (64 - bit_shift);
                out[i] = (out[i] >> bit_shift) | carry;
                carry = new_carry;
            }
        }
        U256(out)
    }

    /// Modular addition: `(self + rhs) mod m`. Requires `m != 0`.
    pub fn add_mod(&self, rhs: &U256, m: &U256) -> U256 {
        assert!(!m.is_zero(), "add_mod by zero modulus");
        let (sum, carry) = self.overflowing_add(rhs);
        if carry {
            // sum + 2^256 ≡ sum + (2^256 mod m)  — fold via U512 reduction.
            let mut wide = [0u64; 8];
            wide[..4].copy_from_slice(&sum.0);
            wide[4] = 1;
            U512(wide).rem_u256(m)
        } else {
            sum.div_rem(m).1
        }
    }

    /// Modular subtraction: `(self - rhs) mod m`. Requires `m != 0`.
    pub fn sub_mod(&self, rhs: &U256, m: &U256) -> U256 {
        assert!(!m.is_zero(), "sub_mod by zero modulus");
        let a = self.div_rem(m).1;
        let b = rhs.div_rem(m).1;
        if a >= b {
            a.wrapping_sub(&b)
        } else {
            m.wrapping_sub(&b).wrapping_add(&a)
        }
    }

    /// Modular multiplication via 512-bit intermediate: `(self * rhs) mod m`.
    pub fn mul_mod(&self, rhs: &U256, m: &U256) -> U256 {
        assert!(!m.is_zero(), "mul_mod by zero modulus");
        self.widening_mul(rhs).rem_u256(m)
    }

    /// Modular exponentiation by square-and-multiply.
    pub fn pow_mod(&self, exp: &U256, m: &U256) -> U256 {
        assert!(!m.is_zero(), "pow_mod by zero modulus");
        if *m == U256::ONE {
            return U256::ZERO;
        }
        let mut base = self.div_rem(m).1;
        let mut result = U256::ONE;
        let nbits = exp.bits();
        for i in 0..nbits {
            if exp.bit(i as usize) {
                result = result.mul_mod(&base, m);
            }
            base = base.mul_mod(&base, m);
        }
        result
    }

    /// Modular inverse via Fermat's little theorem (`m` must be prime and
    /// `self` nonzero mod `m`). Returns `None` when `self ≡ 0 (mod m)`.
    pub fn inv_mod_prime(&self, m: &U256) -> Option<U256> {
        let a = self.div_rem(m).1;
        if a.is_zero() {
            return None;
        }
        let exp = m.wrapping_sub(&U256::from_u64(2));
        Some(a.pow_mod(&exp, m))
    }

    /// Wrapping exponentiation (mod 2^256) — EVM `EXP` semantics.
    pub fn wrapping_pow(&self, exp: &U256) -> U256 {
        let mut base = *self;
        let mut result = U256::ONE;
        let nbits = exp.bits();
        for i in 0..nbits {
            if exp.bit(i as usize) {
                result = result.wrapping_mul(&base);
            }
            base = base.wrapping_mul(&base);
        }
        result
    }

    /// Parses a decimal string.
    pub fn from_dec_str(s: &str) -> Result<U256, U256ParseError> {
        if s.is_empty() {
            return Err(U256ParseError::Empty);
        }
        let mut acc = U256::ZERO;
        let ten = U256::from_u64(10);
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(U256ParseError::InvalidDigit(c))?;
            acc = acc
                .checked_mul(&ten)
                .and_then(|v| v.checked_add(&U256::from_u64(d as u64)))
                .ok_or(U256ParseError::Overflow)?;
        }
        Ok(acc)
    }

    /// Parses a hex string with optional `0x` prefix.
    pub fn from_hex_str(s: &str) -> Result<U256, U256ParseError> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() {
            return Err(U256ParseError::Empty);
        }
        if s.len() > 64 {
            return Err(U256ParseError::Overflow);
        }
        let mut acc = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(U256ParseError::InvalidDigit(c))?;
            acc = acc.shl(4);
            acc.0[0] |= d as u64;
        }
        Ok(acc)
    }

    /// Renders as a decimal string.
    pub fn to_dec_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = *self;
        let ten = U256::from_u64(10);
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&ten);
            digits.push(b'0' + r.low_u64() as u8);
            cur = q;
        }
        digits.reverse();
        String::from_utf8(digits).expect("digits are ASCII")
    }
}

/// Errors from parsing textual [`U256`] representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum U256ParseError {
    /// Empty input string.
    Empty,
    /// A character outside the radix.
    InvalidDigit(char),
    /// Value exceeds 2^256 - 1.
    Overflow,
}

impl fmt::Display for U256ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            U256ParseError::Empty => write!(f, "empty numeric string"),
            U256ParseError::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
            U256ParseError::Overflow => write!(f, "value does not fit in 256 bits"),
        }
    }
}

impl std::error::Error for U256ParseError {}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{self:x})")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dec_string())
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.to_be_bytes();
        let s: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        let trimmed = s.trim_start_matches('0');
        f.write_str(if trimmed.is_empty() { "0" } else { trimmed })
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<u8> for U256 {
    fn from(v: u8) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<usize> for U256 {
    fn from(v: usize) -> Self {
        U256::from_u64(v as u64)
    }
}

// Operator impls use the checked/wrapping primitives: `+`, `-`, `*` panic on
// overflow in debug spirit (they are checked always, since silent wraparound
// in wei accounting would be a consensus bug); EVM code paths call the
// wrapping_* methods explicitly.
impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: U256) -> U256 {
        self.checked_add(&rhs).expect("U256 addition overflow")
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        self.checked_sub(&rhs).expect("U256 subtraction underflow")
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: U256) -> U256 {
        self.checked_mul(&rhs)
            .expect("U256 multiplication overflow")
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.checked_div(&rhs).expect("U256 division by zero")
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: U256) -> U256 {
        self.checked_rem(&rhs).expect("U256 remainder by zero")
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, s: u32) -> U256 {
        U256::shl(&self, s)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, s: u32) -> U256 {
        U256::shr(&self, s)
    }
}

impl U512 {
    pub const ZERO: U512 = U512([0; 8]);

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 8]
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..8).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Value of bit `i`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 512);
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Widens a [`U256`] into the low half.
    pub fn from_u256(v: &U256) -> Self {
        let mut limbs = [0u64; 8];
        limbs[..4].copy_from_slice(&v.0);
        U512(limbs)
    }

    /// Truncates to the low 256 bits.
    pub fn low_u256(&self) -> U256 {
        U256([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// `self mod m` for a 256-bit modulus, by binary long division.
    ///
    /// This is the workhorse for `mul_mod`; it is O(512) shift-subtract steps
    /// which is plenty fast for the transaction volumes the simulator sees.
    pub fn rem_u256(&self, m: &U256) -> U256 {
        assert!(!m.is_zero(), "rem_u256 by zero modulus");
        let mut rem = U256::ZERO;
        let n = self.bits();
        for i in (0..n).rev() {
            // rem = rem * 2 + bit; rem stays < 2m < 2^257 so track the carry.
            let (shifted, carry) = rem.overflowing_add(&rem);
            rem = shifted;
            let mut ge = carry;
            if self.bit(i as usize) {
                let (r2, c2) = rem.overflowing_add(&U256::ONE);
                rem = r2;
                ge |= c2;
            }
            if ge || rem >= *m {
                rem = rem.wrapping_sub(m);
            }
        }
        rem
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(")?;
        for (i, limb) in self.0.iter().enumerate().rev() {
            if i == 7 {
                write!(f, "{limb:016x}")?;
            } else {
                write!(f, "_{limb:016x}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn add_basic_and_carry() {
        assert_eq!(u(2) + u(3), u(5));
        let max_limb = U256([u64::MAX, 0, 0, 0]);
        assert_eq!(max_limb + u(1), U256([0, 1, 0, 0]));
    }

    #[test]
    fn add_overflow_detected() {
        assert!(U256::MAX.checked_add(&U256::ONE).is_none());
        let (wrapped, carry) = U256::MAX.overflowing_add(&U256::ONE);
        assert!(carry);
        assert_eq!(wrapped, U256::ZERO);
    }

    #[test]
    fn sub_borrow_chain() {
        let a = U256([0, 0, 0, 1]);
        let b = U256::ONE;
        let expect = U256([u64::MAX, u64::MAX, u64::MAX, 0]);
        assert_eq!(a - b, expect);
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    fn mul_widening_cross_limb() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = U256([u64::MAX, 0, 0, 0]);
        let w = a.widening_mul(&a);
        let expect = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(w.low_u256().low_u128(), expect);
        assert!(w.0[2..].iter().all(|&l| l == 0));
    }

    #[test]
    fn mul_checked_overflow() {
        let big = U256::ONE.shl(200);
        assert!(big.checked_mul(&big).is_none());
        assert_eq!(big.checked_mul(&U256::ONE), Some(big));
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = U256::from_u128(1_000_000_000_000_000_007);
        let (q, r) = a.div_rem(&u(10));
        assert_eq!(q, U256::from_u128(100_000_000_000_000_000));
        assert_eq!(r, u(7));
    }

    #[test]
    fn div_rem_large_divisor() {
        let a = U256::ONE.shl(200) + u(12345);
        let b = U256::ONE.shl(100) + u(7);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q * b + r, a);
        assert!(r < b);
    }

    #[test]
    fn div_by_zero_evm_semantics() {
        assert_eq!(u(5).div_rem(&U256::ZERO), (U256::ZERO, U256::ZERO));
        assert!(u(5).checked_div(&U256::ZERO).is_none());
    }

    #[test]
    fn shifts() {
        assert_eq!(U256::ONE.shl(255).bits(), 256);
        assert_eq!(U256::ONE.shl(256), U256::ZERO);
        assert_eq!(U256::ONE.shl(64), U256([0, 1, 0, 0]));
        assert_eq!(U256([0, 1, 0, 0]).shr(64), U256::ONE);
        assert_eq!(U256::MAX.shr(255), U256::ONE);
        assert_eq!(U256::MAX.shr(256), U256::ZERO);
        assert_eq!(u(0b1010).shr(1), u(0b101));
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256([
            0x0123456789abcdef,
            0xfedcba9876543210,
            7,
            0x8000000000000000,
        ]);
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
        let bytes = v.to_be_bytes();
        assert_eq!(bytes[0], 0x80);
        assert_eq!(bytes[31], 0xef);
    }

    #[test]
    fn be_slice_zero_extends() {
        assert_eq!(U256::from_be_slice(&[0x12, 0x34]), u(0x1234));
        assert_eq!(U256::from_be_slice(&[]), U256::ZERO);
    }

    #[test]
    fn trimmed_bytes() {
        assert_eq!(U256::ZERO.to_be_bytes_trimmed(), Vec::<u8>::new());
        assert_eq!(u(0x1234).to_be_bytes_trimmed(), vec![0x12, 0x34]);
    }

    #[test]
    fn dec_string_roundtrip() {
        for s in [
            "0",
            "1",
            "10",
            "255",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            let v = U256::from_dec_str(s).unwrap();
            assert_eq!(v.to_dec_string(), s);
        }
        assert!(U256::from_dec_str("").is_err());
        assert!(U256::from_dec_str("12a").is_err());
    }

    #[test]
    fn hex_parse() {
        assert_eq!(U256::from_hex_str("0xff").unwrap(), u(255));
        assert_eq!(U256::from_hex_str("ff").unwrap(), u(255));
        assert!(U256::from_hex_str(&"f".repeat(65)).is_err());
    }

    #[test]
    fn dec_overflow_detected() {
        // 2^256 exactly
        let s = "115792089237316195423570985008687907853269984665640564039457584007913129639936";
        assert_eq!(U256::from_dec_str(s), Err(U256ParseError::Overflow));
        // 2^256 - 1 parses
        let s = "115792089237316195423570985008687907853269984665640564039457584007913129639935";
        assert_eq!(U256::from_dec_str(s).unwrap(), U256::MAX);
    }

    #[test]
    fn mod_arithmetic() {
        let m = u(97);
        assert_eq!(u(50).add_mod(&u(60), &m), u(13));
        assert_eq!(u(10).sub_mod(&u(20), &m), u(87));
        assert_eq!(u(50).mul_mod(&u(60), &m), u(3000 % 97));
        assert_eq!(u(5).pow_mod(&u(3), &m), u(125 % 97));
    }

    #[test]
    fn add_mod_with_carry_folding() {
        // a + b overflows 2^256; result must equal (a+b) mod m computed wide.
        let m = U256::ONE.shl(255) - u(19);
        let a = U256::MAX - u(5);
        let b = U256::MAX - u(7);
        let got = a.add_mod(&b, &m);
        // verify: got ≡ a+b (mod m) by checking (got - a mod m - b mod m) ≡ 0
        let check = got
            .sub_mod(&a.div_rem(&m).1, &m)
            .sub_mod(&b.div_rem(&m).1, &m);
        assert!(check.is_zero());
        assert!(got < m);
    }

    #[test]
    fn inv_mod_prime_works() {
        let p = u(101);
        for a in 1..100u64 {
            let inv = u(a).inv_mod_prime(&p).unwrap();
            assert_eq!(u(a).mul_mod(&inv, &p), U256::ONE, "a={a}");
        }
        assert!(U256::ZERO.inv_mod_prime(&p).is_none());
    }

    #[test]
    fn pow_mod_secp_prime_smoke() {
        // p = 2^256 - 2^32 - 977 (secp256k1 field prime); Fermat: a^(p-1) = 1.
        let p =
            U256::from_hex_str("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
                .unwrap();
        let a = u(123456789);
        let exp = p.wrapping_sub(&U256::ONE);
        assert_eq!(a.pow_mod(&exp, &p), U256::ONE);
    }

    #[test]
    fn wrapping_pow_matches_u128() {
        let r = u(3).wrapping_pow(&u(40));
        assert_eq!(r.low_u128(), 3u128.pow(40));
    }

    #[test]
    fn u512_rem() {
        let a = U256::MAX;
        let wide = a.widening_mul(&a);
        let m = u(1_000_000_007);
        let r = wide.rem_u256(&m);
        // (2^256-1)^2 mod m computed independently via pow_mod
        let expect = a.div_rem(&m).1.mul_mod(&a.div_rem(&m).1, &m);
        assert_eq!(r, expect);
    }

    #[test]
    fn ordering() {
        assert!(U256([0, 0, 0, 1]) > U256([u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(u(5) < u(6));
        assert_eq!(u(5).cmp(&u(5)), Ordering::Equal);
    }

    #[test]
    fn display_hex() {
        assert_eq!(format!("{:x}", u(255)), "ff");
        assert_eq!(format!("{:x}", U256::ZERO), "0");
        assert_eq!(format!("{}", u(1234)), "1234");
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(u(0b1100) & u(0b1010), u(0b1000));
        assert_eq!(u(0b1100) | u(0b1010), u(0b1110));
        assert_eq!(u(0b1100) ^ u(0b1010), u(0b0110));
        assert_eq!(!U256::ZERO, U256::MAX);
    }
}
