//! Base58btc (Bitcoin/IPFS alphabet) encoding.
//!
//! CIDv0 strings (`Qm...`) are base58btc-encoded multihashes; this module is
//! the `ofl-ipfs` dependency for rendering them.

const ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base58Error {
    /// A character outside the base58btc alphabet at the given position.
    InvalidChar { position: usize, ch: char },
}

impl core::fmt::Display for Base58Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Base58Error::InvalidChar { position, ch } => {
                write!(f, "invalid base58 character {ch:?} at position {position}")
            }
        }
    }
}

impl std::error::Error for Base58Error {}

/// Encodes bytes to a base58btc string.
pub fn encode(input: &[u8]) -> String {
    // Leading zero bytes map to '1' characters one-for-one.
    let zeros = input.iter().take_while(|&&b| b == 0).count();
    // Repeated division of the big-endian number by 58.
    let mut digits: Vec<u8> = Vec::with_capacity(input.len() * 138 / 100 + 1);
    for &byte in &input[zeros..] {
        let mut carry = byte as u32;
        for d in digits.iter_mut() {
            carry += (*d as u32) << 8;
            *d = (carry % 58) as u8;
            carry /= 58;
        }
        while carry > 0 {
            digits.push((carry % 58) as u8);
            carry /= 58;
        }
    }
    let mut out = String::with_capacity(zeros + digits.len());
    for _ in 0..zeros {
        out.push('1');
    }
    for &d in digits.iter().rev() {
        out.push(ALPHABET[d as usize] as char);
    }
    out
}

fn digit_value(c: u8) -> Option<u8> {
    ALPHABET.iter().position(|&a| a == c).map(|p| p as u8)
}

/// Decodes a base58btc string to bytes.
pub fn decode(input: &str) -> Result<Vec<u8>, Base58Error> {
    let bytes = input.as_bytes();
    let ones = bytes.iter().take_while(|&&b| b == b'1').count();
    let mut out: Vec<u8> = Vec::with_capacity(input.len());
    for (i, &c) in bytes[ones..].iter().enumerate() {
        let val = digit_value(c).ok_or(Base58Error::InvalidChar {
            position: ones + i,
            ch: c as char,
        })?;
        let mut carry = val as u32;
        for b in out.iter_mut() {
            carry += (*b as u32) * 58;
            *b = carry as u8;
            carry >>= 8;
        }
        while carry > 0 {
            out.push(carry as u8);
            carry >>= 8;
        }
    }
    let mut result = vec![0u8; ones];
    result.extend(out.iter().rev());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors from the Bitcoin reference suite.
        assert_eq!(encode(b""), "");
        assert_eq!(encode(&[0x61]), "2g");
        assert_eq!(encode(&[0x62, 0x62, 0x62]), "a3gV");
        assert_eq!(encode(&[0x63, 0x63, 0x63]), "aPEr");
        assert_eq!(
            encode(&crate::hex::from_hex("73696d706c792061206c6f6e6720737472696e67").unwrap()),
            "2cFupjhnEsSn59qHXstmK2ffpLv2"
        );
        assert_eq!(
            encode(
                &crate::hex::from_hex("00eb15231dfceb60925886b67d065299925915aeb172c06647")
                    .unwrap()
            ),
            "1NS17iag9jJgTHD1VXjvLCEnZuQ3rJDE9L"
        );
        assert_eq!(
            encode(&[0x00, 0x00, 0x00, 0x28, 0x7f, 0xb4, 0xcd]),
            "111233QC4"
        );
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
        assert_eq!(decode("2g").unwrap(), vec![0x61]);
        assert_eq!(decode("a3gV").unwrap(), vec![0x62, 0x62, 0x62]);
        assert_eq!(
            decode("111233QC4").unwrap(),
            vec![0x00, 0x00, 0x00, 0x28, 0x7f, 0xb4, 0xcd]
        );
    }

    #[test]
    fn rejects_invalid_chars() {
        // 0, O, I, l are excluded from the alphabet.
        for bad in ["0", "O", "I", "l", "Qm0"] {
            assert!(decode(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
        let zeros = vec![0u8; 7];
        assert_eq!(decode(&encode(&zeros)).unwrap(), zeros);
    }

    #[test]
    fn cidv0_shape() {
        // A CIDv0 is 0x12 0x20 || 32-byte digest → 46 chars starting "Qm".
        let mut mh = vec![0x12, 0x20];
        mh.extend(crate::sha256::sha256(b"hello ipfs"));
        let s = encode(&mh);
        assert!(s.starts_with("Qm"), "{s}");
        assert_eq!(s.len(), 46);
    }
}
