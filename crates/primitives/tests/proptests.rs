//! Property-based tests over the primitive types: algebraic laws for U256,
//! roundtrip laws for the encoders, and incremental-equals-oneshot laws for
//! the hashers.

use ofl_primitives::u256::U256;
use ofl_primitives::{base32, base58, hex, rlp, varint};
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    proptest::array::uniform4(any::<u64>()).prop_map(U256)
}

/// Nonzero U256 for divisor/modulus positions.
fn arb_u256_nonzero() -> impl Strategy<Value = U256> {
    arb_u256().prop_filter("nonzero", |v| !v.is_zero())
}

proptest! {
    #[test]
    fn add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    #[test]
    fn add_sub_inverse(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn mul_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_mul(&b), b.wrapping_mul(&a));
    }

    #[test]
    fn mul_distributes_over_add(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
        let lhs = a.wrapping_mul(&b.wrapping_add(&c));
        let rhs = a.wrapping_mul(&b).wrapping_add(&a.wrapping_mul(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn div_rem_reconstructs(a in arb_u256(), d in arb_u256_nonzero()) {
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q.wrapping_mul(&d).wrapping_add(&r), a);
    }

    #[test]
    fn mul_mod_matches_widening(a in arb_u256(), b in arb_u256(), m in arb_u256_nonzero()) {
        let got = a.mul_mod(&b, &m);
        prop_assert!(got < m);
        // Cross-check against div_rem on the 512-bit product for small moduli
        // where the product fits in 256 bits.
        if a.bits() + b.bits() <= 256 {
            let full = a.wrapping_mul(&b);
            prop_assert_eq!(got, full.div_rem(&m).1);
        }
    }

    #[test]
    fn shl_shr_inverse_when_no_loss(a in arb_u256(), s in 0u32..256) {
        let masked = a.shl(s).shr(s);
        // shl then shr clears the top s bits.
        let expect = if s == 0 { a } else { a & (U256::MAX.shr(s)) };
        prop_assert_eq!(masked, expect);
    }

    #[test]
    fn be_bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn dec_string_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_dec_str(&a.to_dec_string()).unwrap(), a);
    }

    #[test]
    fn cmp_consistent_with_sub(a in arb_u256(), b in arb_u256()) {
        let borrow = a.overflowing_sub(&b).1;
        prop_assert_eq!(borrow, a < b);
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(hex::from_hex(&hex::to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn base58_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(base58::decode(&base58::encode(&data)).unwrap(), data);
    }

    #[test]
    fn base32_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(base32::decode(&base32::encode(&data)).unwrap(), data);
    }

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let enc = varint::encode(v);
        let (dec, used) = varint::decode(&enc).unwrap();
        prop_assert_eq!(dec, v);
        prop_assert_eq!(used, enc.len());
        prop_assert!(enc.len() <= 10);
    }

    #[test]
    fn keccak_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048,
    ) {
        let split = split.min(data.len());
        let mut h = ofl_primitives::keccak::Keccak256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), ofl_primitives::keccak256(&data));
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048,
    ) {
        let split = split.min(data.len());
        let mut h = ofl_primitives::sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), ofl_primitives::sha256(&data));
    }
}

/// RLP item strategy with bounded depth and size.
fn arb_rlp_item() -> impl Strategy<Value = rlp::Item> {
    let leaf = proptest::collection::vec(any::<u8>(), 0..64).prop_map(rlp::Item::Bytes);
    leaf.prop_recursive(3, 64, 8, |inner| {
        proptest::collection::vec(inner, 0..8).prop_map(rlp::Item::List)
    })
}

proptest! {
    #[test]
    fn rlp_roundtrip(item in arb_rlp_item()) {
        let enc = rlp::encode(&item);
        prop_assert_eq!(rlp::decode(&enc).unwrap(), item);
    }

    #[test]
    fn rlp_uint_roundtrip(a in arb_u256()) {
        let item = rlp::Item::uint(&a);
        let enc = rlp::encode(&item);
        prop_assert_eq!(rlp::decode(&enc).unwrap().as_uint().unwrap(), a);
    }
}
