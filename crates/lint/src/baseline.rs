//! The checked-in violation baseline.
//!
//! `crates/lint/baseline.txt` enumerates pre-existing violations so the
//! gate can ratchet: `--deny-new` fails only on hits *not* in the
//! baseline, and fixing a baselined hit is a one-line deletion. Entries
//! are [`Violation::baseline_key`]s — `rule|path|normalized snippet` —
//! deliberately line-number-free so edits elsewhere in a file do not
//! churn the baseline.

use crate::rules::Violation;
use std::collections::BTreeSet;

/// A parsed baseline: the set of accepted violation keys.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

impl Baseline {
    /// Parses baseline text: one key per line, `#` comments and blank
    /// lines ignored.
    pub fn parse(text: &str) -> Baseline {
        let keys = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Baseline { keys }
    }

    /// Builds a baseline accepting exactly the given violations.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        Baseline {
            keys: violations.iter().map(Violation::baseline_key).collect(),
        }
    }

    /// Renders the baseline back to its file form (sorted, commented
    /// header), such that `parse(format(b)) == b`.
    pub fn format(&self) -> String {
        let mut out = String::from(
            "# ofl-lint baseline: accepted pre-existing violations, one\n\
             # `rule|path|normalized snippet` key per line. Regenerate with\n\
             # `cargo run -p ofl-lint -- --write-baseline`; shrink it by\n\
             # fixing the code and deleting the line.\n",
        );
        for key in &self.keys {
            out.push_str(key);
            out.push('\n');
        }
        out
    }

    pub fn contains(&self, v: &Violation) -> bool {
        self.keys.contains(&v.baseline_key())
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Splits `violations` into (new, baselined).
    pub fn partition<'a>(
        &self,
        violations: &'a [Violation],
    ) -> (Vec<&'a Violation>, Vec<&'a Violation>) {
        violations.iter().partition(|v| !self.contains(v))
    }

    /// Baseline keys that no longer match any current violation — stale
    /// entries the owner should delete (the hit was fixed).
    pub fn stale(&self, violations: &[Violation]) -> Vec<String> {
        let current: BTreeSet<String> = violations.iter().map(Violation::baseline_key).collect();
        self.keys.difference(&current).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, path: &str, snippet: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 42,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn round_trips_through_text() {
        let vs = vec![
            violation("D1", "crates/a/src/lib.rs", "let t = Instant::now();"),
            violation("R1", "crates/b/src/lib.rs", "x.unwrap()"),
        ];
        let b = Baseline::from_violations(&vs);
        let reparsed = Baseline::parse(&b.format());
        assert_eq!(b, reparsed);
        assert!(reparsed.contains(&vs[0]));
        assert!(reparsed.contains(&vs[1]));
    }

    #[test]
    fn partition_and_stale() {
        let old = violation("D1", "a.rs", "old hit");
        let new = violation("D2", "b.rs", "new hit");
        let b = Baseline::from_violations(std::slice::from_ref(&old));
        let current = vec![new.clone()];
        let (fresh, accepted) = b.partition(&current);
        assert_eq!(fresh.len(), 1);
        assert!(accepted.is_empty());
        assert_eq!(b.stale(&current).len(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\nD1|a.rs|x\n");
        assert_eq!(b.len(), 1);
    }
}
