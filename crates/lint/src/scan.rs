//! A lightweight Rust lexer/line scanner: the substrate every rule runs on.
//!
//! The scanner does three things a naive `grep` cannot:
//!
//! 1. **Blanks comments and literals.** String literals (including raw and
//!    byte strings), char literals, and comments (line, block, nested
//!    block) are replaced with spaces in the [`Line::code`] view, so a rule
//!    matching `Instant::now` never trips on a doc comment or an error
//!    message that merely *mentions* it. Columns are preserved.
//! 2. **Tracks test regions.** `#[cfg(test)]` and `#[test]` attach to the
//!    block that follows; every line inside that block is marked
//!    [`Line::in_test`], and files under a `tests/` directory are test code
//!    wholesale. Determinism rules only police non-test code — a test
//!    cannot perturb a digest.
//! 3. **Collects annotation escapes.** A comment of the form
//!    `// lint: <escape>(<reason>)` — e.g. `// lint: ordered-ok(commutative
//!    sum)` — attaches to its own line, or to the next code line when it
//!    stands alone. Rules honor their escape only when a non-empty reason
//!    is given, so every suppression is self-documenting.
//!
//! The lexer is a hand-rolled state machine over bytes; it understands
//! escapes in string/char literals, `r#"…"#` raw strings with any hash
//! count, lifetimes (`'a` is not a char literal), and nested `/* /* */ */`
//! comments. It does not parse Rust — rules work on the blanked line text
//! plus a few structural hints (brace depth, test regions), which is
//! exactly enough for the project invariants and keeps the pass
//! dependency-free and fast.

use std::path::Path;

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The raw source text of the line (without the trailing newline).
    pub raw: String,
    /// The code view: comments and string/char literal contents blanked
    /// with spaces (columns preserved, delimiters kept).
    pub code: String,
    /// The comment view: everything that is *not* comment text blanked.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]`/`#[test]` block or
    /// the whole file is test code (a `tests/` integration file).
    pub in_test: bool,
}

/// A `// lint: <escape>(<reason>)` annotation, resolved to the code line it
/// excuses.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// The escape keyword, e.g. `ordered-ok`.
    pub escape: String,
    /// The justification inside the parentheses.
    pub reason: String,
    /// The code line this annotation applies to (its own line, or the next
    /// code line for a standalone comment).
    pub applies_to: usize,
}

/// A fully scanned source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Path relative to the workspace root (normalized to `/` separators).
    pub path: String,
    /// The scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// All annotation escapes found in the file.
    pub annotations: Vec<Annotation>,
}

impl ScannedFile {
    /// Scans `text` as the contents of `path`. `whole_file_is_test` marks
    /// every line as test code (integration-test files).
    pub fn scan(path: &str, text: &str, whole_file_is_test: bool) -> ScannedFile {
        let (code_text, comment_text) = blank_non_code(text);
        let raw_lines: Vec<&str> = split_lines(text);
        let code_lines: Vec<&str> = split_lines(&code_text);
        let comment_lines: Vec<&str> = split_lines(&comment_text);
        let test_marks = mark_test_regions(&code_lines);

        let mut lines = Vec::with_capacity(raw_lines.len());
        for (i, raw) in raw_lines.iter().enumerate() {
            lines.push(Line {
                number: i + 1,
                raw: raw.to_string(),
                code: code_lines.get(i).copied().unwrap_or("").to_string(),
                comment: comment_lines.get(i).copied().unwrap_or("").to_string(),
                in_test: whole_file_is_test || test_marks.get(i).copied().unwrap_or(false),
            });
        }
        let annotations = collect_annotations(&lines);
        ScannedFile {
            path: path.to_string(),
            lines,
            annotations,
        }
    }

    /// Reads and scans a file on disk. `root` is the workspace root the
    /// reported path is made relative to.
    pub fn scan_path(root: &Path, absolute: &Path) -> std::io::Result<ScannedFile> {
        let text = std::fs::read_to_string(absolute)?;
        let rel = absolute
            .strip_prefix(root)
            .unwrap_or(absolute)
            .to_string_lossy()
            .replace('\\', "/");
        let is_test_file = rel.split('/').any(|part| part == "tests");
        Ok(ScannedFile::scan(&rel, &text, is_test_file))
    }

    /// True when `line_number` carries (or is covered by) an annotation
    /// with the given escape keyword *and* a non-empty reason.
    pub fn excused(&self, line_number: usize, escape: &str) -> bool {
        self.annotations
            .iter()
            .any(|a| a.applies_to == line_number && a.escape == escape && !a.reason.is_empty())
    }
}

/// Splits on `\n` without allocating per line (keeps `\r` stripped).
fn split_lines(text: &str) -> Vec<&str> {
    text.split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .collect()
}

/// Lexer states for [`blank_non_code`].
enum LexState {
    Code,
    LineComment,
    /// Nested depth of `/* … */`.
    BlockComment(u32),
    /// Inside `"…"`; bool = byte string (irrelevant to blanking).
    Str,
    /// Inside `r##"…"##` with the given hash count.
    RawStr(u32),
    /// Inside `'…'`.
    CharLit,
}

/// Produces two same-length views of `text`: one with all comments and
/// string/char literal contents blanked (the *code* view — delimiters like
/// the quotes themselves are kept so token boundaries survive), and one
/// with everything *except* comment text blanked (the *comment* view, for
/// annotation parsing).
fn blank_non_code(text: &str) -> (String, String) {
    let bytes = text.as_bytes();
    let mut code: Vec<u8> = bytes.to_vec();
    let mut comment: Vec<u8> = bytes.to_vec();
    let blank = |buf: &mut [u8], i: usize| {
        if buf[i] != b'\n' {
            buf[i] = b' ';
        }
    };
    let mut state = LexState::Code;
    let mut i = 0;
    while i < bytes.len() {
        match state {
            LexState::Code => {
                blank(&mut comment, i);
                match bytes[i] {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        state = LexState::LineComment;
                        blank(&mut code, i);
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        state = LexState::BlockComment(1);
                        blank(&mut code, i);
                    }
                    b'"' => state = LexState::Str,
                    b'r' | b'b' if is_raw_string_start(bytes, i) => {
                        // Consume up to and including the opening quote.
                        let (hashes, quote_at) = raw_string_open(bytes, i);
                        i = quote_at; // leave the quote itself un-blanked
                        state = LexState::RawStr(hashes);
                    }
                    b'\'' if is_char_literal(bytes, i) => state = LexState::CharLit,
                    _ => {}
                }
            }
            LexState::LineComment => {
                if bytes[i] == b'\n' {
                    state = LexState::Code;
                    blank(&mut comment, i);
                } else {
                    blank(&mut code, i);
                }
            }
            LexState::BlockComment(depth) => {
                blank(&mut code, i);
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = LexState::BlockComment(depth + 1);
                    i += 1;
                    blank(&mut code, i);
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    i += 1;
                    blank(&mut code, i);
                    state = if depth > 1 {
                        LexState::BlockComment(depth - 1)
                    } else {
                        LexState::Code
                    };
                }
            }
            LexState::Str => {
                blank(&mut comment, i);
                match bytes[i] {
                    b'\\' => {
                        blank(&mut code, i);
                        if i + 1 < bytes.len() {
                            i += 1;
                            blank(&mut code, i);
                            blank(&mut comment, i);
                        }
                    }
                    b'"' => state = LexState::Code, // keep the closing quote
                    _ => blank(&mut code, i),
                }
            }
            LexState::RawStr(hashes) => {
                blank(&mut comment, i);
                if bytes[i] == b'"' && raw_string_closes(bytes, i, hashes) {
                    // Keep the quote; skip (and keep) the trailing hashes.
                    i += hashes as usize;
                    state = LexState::Code;
                } else {
                    blank(&mut code, i);
                }
            }
            LexState::CharLit => {
                blank(&mut comment, i);
                match bytes[i] {
                    b'\\' => {
                        blank(&mut code, i);
                        if i + 1 < bytes.len() {
                            i += 1;
                            blank(&mut code, i);
                            blank(&mut comment, i);
                        }
                    }
                    b'\'' => state = LexState::Code,
                    _ => blank(&mut code, i),
                }
            }
        }
        i += 1;
    }
    // The buffers only ever have ASCII bytes replaced with spaces, so they
    // remain valid UTF-8.
    (
        String::from_utf8_lossy(&code).into_owned(),
        String::from_utf8_lossy(&comment).into_owned(),
    )
}

/// True when position `i` (an `r` or `b`) starts a raw string literal:
/// `r"`, `r#`, `br"`, `br#` — and is not part of a longer identifier.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) != Some(&b'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// For a confirmed raw-string start at `i`, returns (hash count, index of
/// the opening quote).
fn raw_string_open(bytes: &[u8], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j)
}

/// True when the `"` at `i` is followed by `hashes` hash marks.
fn raw_string_closes(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// Distinguishes a char literal from a lifetime: `'a'` vs `'a`. A quote
/// starts a char literal when the closing quote arrives within a few
/// bytes (escapes included), which lifetimes never have.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true, // '\n', '\'', '\u{…}'
        Some(&c) if c != b'\'' => bytes.get(i + 2) == Some(&b'\''),
        _ => false,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Marks, per line, whether it falls inside a `#[cfg(test)]`/`#[test]`
/// block. An attribute arms the *next* opening brace; the region runs
/// until brace depth returns to where it opened.
fn mark_test_regions(code_lines: &[&str]) -> Vec<bool> {
    let mut marks = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depth levels at which an armed test region opened.
    let mut region_stack: Vec<i64> = Vec::new();
    let mut armed = false;
    for (ln, line) in code_lines.iter().enumerate() {
        if !region_stack.is_empty() || armed {
            marks[ln] = true;
        }
        let trimmed = line.trim();
        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[test]") {
            armed = true;
            marks[ln] = true;
        }
        for b in line.bytes() {
            match b {
                b'{' => {
                    if armed {
                        region_stack.push(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if region_stack.last().is_some_and(|open| depth <= *open) {
                        region_stack.pop();
                    }
                }
                // `#[cfg(test)] use …;` — the attribute attached to a
                // braceless item; disarm at the statement end.
                b';' if armed && region_stack.is_empty() => armed = false,
                _ => {}
            }
        }
    }
    marks
}

/// Extracts `// lint: <escape>(<reason>)` annotations and resolves which
/// code line each applies to.
fn collect_annotations(lines: &[Line]) -> Vec<Annotation> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let comment = &line.comment;
        let Some(at) = comment.find("lint:") else {
            continue;
        };
        let rest = comment[at + "lint:".len()..].trim_start();
        let Some(open) = rest.find('(') else {
            continue;
        };
        let escape = rest[..open].trim().to_string();
        if escape.is_empty()
            || !escape
                .bytes()
                .all(|b| b == b'-' || b.is_ascii_alphanumeric())
        {
            continue;
        }
        let Some(close) = rest[open..].rfind(')') else {
            continue;
        };
        let reason = rest[open + 1..open + close].trim().to_string();
        // A standalone comment line annotates the next code line; a
        // trailing comment annotates its own line.
        let own_line_has_code = !line.code.trim().is_empty();
        let applies_to = if own_line_has_code {
            line.number
        } else {
            lines[i + 1..]
                .iter()
                .find(|l| !l.code.trim().is_empty())
                .map(|l| l.number)
                .unwrap_or(line.number)
        };
        out.push(Annotation {
            escape,
            reason,
            applies_to,
        });
    }
    out
}

/// Finds `needle` in `haystack` at identifier boundaries: the character
/// before the match (if any) must not be an identifier character, so
/// `Instant::now` does not match inside `SimInstant::now`. Returns byte
/// offsets of every boundary match.
pub fn find_word(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let ok_before = at == 0 || !is_ident_byte(haystack.as_bytes()[at - 1]);
        if ok_before {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = r#"
let x = "Instant::now inside a string";
// Instant::now inside a comment
/* Instant::now inside /* a nested */ block */
let y = Instant::now(); // trailing comment
"#;
        let f = ScannedFile::scan("x.rs", src, false);
        let hits: Vec<usize> = f
            .lines
            .iter()
            .filter(|l| !find_word(&l.code, "Instant::now").is_empty())
            .map(|l| l.number)
            .collect();
        assert_eq!(hits, vec![5]);
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let s = r#\"panic!(\"inner\")\"#;\nlet c = '\\'';\nlet lt: &'static str = \"x\";\npanic!(\"real\");\n";
        let f = ScannedFile::scan("x.rs", src, false);
        let hits: Vec<usize> = f
            .lines
            .iter()
            .filter(|l| l.code.contains("panic!"))
            .map(|l| l.number)
            .collect();
        assert_eq!(hits, vec![4]);
        // The lifetime did not eat the rest of the file.
        assert!(f.lines[2].code.contains("static"));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "fn live() { a(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b(); }\n}\nfn live2() { c(); }\n";
        let f = ScannedFile::scan("x.rs", src, false);
        let marks: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        // The trailing newline yields a final empty (non-test) line.
        assert_eq!(marks, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn annotations_attach_to_their_code_line() {
        let src = "let a = m.values(); // lint: ordered-ok(commutative)\n// lint: wall-clock-ok(bench only)\nlet b = now();\nlet c = 1;\n";
        let f = ScannedFile::scan("x.rs", src, false);
        assert!(f.excused(1, "ordered-ok"));
        assert!(f.excused(3, "wall-clock-ok"));
        assert!(!f.excused(4, "wall-clock-ok"));
        // Reason is mandatory.
        let g = ScannedFile::scan("y.rs", "let a = m.values(); // lint: ordered-ok()\n", false);
        assert!(!g.excused(1, "ordered-ok"));
    }

    #[test]
    fn word_boundaries_reject_longer_identifiers() {
        assert!(find_word("SimInstant::now()", "Instant::now").is_empty());
        assert_eq!(
            find_word("std::time::Instant::now()", "Instant::now").len(),
            1
        );
    }
}
