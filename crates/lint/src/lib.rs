//! `ofl-lint` — the workspace determinism & robustness analysis pass.
//!
//! The system's load-bearing guarantee is that serial/parallel and
//! in-process/socket runs produce bit-identical digests. That guarantee
//! is enforced dynamically by the regression tests, but nothing *stops*
//! a change from iterating a `HashMap` in a digest path, reading the
//! wall clock inside the engine, or panicking a daemon worker — each a
//! latent nondeterminism or crash bug the tests may miss for many PRs.
//!
//! This crate is an offline, dependency-free static pass that proves the
//! invariants file-by-file:
//!
//! - **D1 no-wall-clock** — `Instant::now`/`SystemTime` only on the
//!   allowlist (bench legs, the gated hotpath timer).
//! - **D2 no-unordered-iteration** — no `HashMap`/`HashSet` iteration in
//!   digest-bearing crates unless sorted or `ordered-ok`-annotated.
//! - **D3 no-ambient-randomness** — seeds flow from config, never from
//!   entropy.
//! - **R1 no-panic-in-daemon** — `unwrap`/`expect`/`panic!` banned in
//!   `rpcd` and `rpc::transport` non-test code.
//! - **W1 codec-exhaustiveness** — every wire-enum variant present in
//!   encode, decode, and a round-trip test.
//!
//! Violations check against `crates/lint/baseline.txt`; `--deny-new`
//! fails on any hit not already baselined, so the set can only shrink.
//! Run it with `cargo run -p ofl-lint -- [--deny-new] [--json]`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod codec;
pub mod config;
pub mod rules;
pub mod scan;

use crate::rules::Violation;
use crate::scan::ScannedFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The result of one full workspace pass.
#[derive(Debug)]
pub struct Report {
    /// Every violation found, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

/// Runs the full pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();

    let mut scanned: BTreeMap<String, ScannedFile> = BTreeMap::new();
    for absolute in &files {
        let file = ScannedFile::scan_path(root, absolute)?;
        scanned.insert(file.path.clone(), file);
    }

    let mut violations = Vec::new();
    for file in scanned.values() {
        if !config::path_in(&file.path, config::D1_ALLOW) {
            violations.extend(rules::d1_wall_clock(file));
        }
        if config::path_in(&file.path, config::D2_SCOPE) {
            violations.extend(rules::d2_unordered_iteration(file));
        }
        violations.extend(rules::d3_ambient_randomness(file));
        if config::path_in(&file.path, config::R1_SCOPE) {
            violations.extend(rules::r1_no_panic(file));
        }
    }
    for check in config::codec_checks() {
        violations.extend(codec::w1_codec_exhaustiveness(&check, &|path| {
            scanned.get(path).cloned()
        }));
    }

    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Report {
        violations,
        files_scanned: scanned.len(),
    })
}

/// Recursively collects `.rs` files under `dir`, honoring
/// [`config::SKIP_DIRS`] (matched against workspace-relative paths).
fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if config::SKIP_DIRS
            .iter()
            .any(|skip| rel == *skip || rel.starts_with(&format!("{skip}/")))
        {
            continue;
        }
        let kind = entry.file_type()?;
        if kind.is_dir() {
            collect_rust_files(root, &path, out)?;
        } else if kind.is_file() && rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root from a starting directory by walking up to
/// the first directory containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Renders violations as a JSON array (hand-rolled — the pass must stay
/// dependency-free). Stable field order, sorted input preserved.
pub fn to_json(report: &Report, new_count: usize, baselined_count: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"total\": {},\n", report.violations.len()));
    out.push_str(&format!("  \"new\": {new_count},\n"));
    out.push_str(&format!("  \"baselined\": {baselined_count},\n"));
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_string(v.rule)));
        out.push_str(&format!("\"path\": {}, ", json_string(&v.path)));
        out.push_str(&format!("\"line\": {}, ", v.line));
        out.push_str(&format!("\"snippet\": {}, ", json_string(&v.snippet)));
        out.push_str(&format!("\"message\": {}", json_string(&v.message)));
        out.push('}');
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_report_is_well_formed_when_empty() {
        let report = Report {
            violations: Vec::new(),
            files_scanned: 3,
        };
        let json = to_json(&report, 0, 0);
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains("\"files_scanned\": 3"));
    }
}
