//! CLI driver for `ofl-lint`.
//!
//! ```text
//! cargo run -p ofl-lint -- [--root PATH] [--deny-new] [--json] [--write-baseline]
//! ```
//!
//! Default mode reports every violation (baselined ones tagged) and
//! exits 0: an inventory, not a gate. `--deny-new` is the CI gate: exit
//! 1 if any violation is missing from `crates/lint/baseline.txt`.
//! `--json` emits the machine-readable report on stdout (human summary
//! moves to stderr). `--write-baseline` regenerates the baseline from
//! the current tree and exits.

#![forbid(unsafe_code)]

use ofl_lint::baseline::Baseline;
use ofl_lint::{find_workspace_root, run, to_json};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    deny_new: bool,
    json: bool,
    write_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: None,
        deny_new: false,
        json: false,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-new" => options.deny_new = true,
            "--json" => options.json = true,
            "--write-baseline" => options.write_baseline = true,
            "--root" => {
                let value = args.next().ok_or("--root needs a path")?;
                options.root = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                println!(
                    "ofl-lint: workspace determinism & robustness analysis\n\n\
                     usage: ofl-lint [--root PATH] [--deny-new] [--json] [--write-baseline]\n\n\
                     rules: D1 no-wall-clock, D2 no-unordered-iteration,\n\
                     D3 no-ambient-randomness, R1 no-panic-in-daemon,\n\
                     W1 codec-exhaustiveness"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("ofl-lint: {message}");
            return ExitCode::from(2);
        }
    };

    let root = match options.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("ofl-lint: could not locate the workspace root; pass --root");
            return ExitCode::from(2);
        }
    };

    let report = match run(&root) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("ofl-lint: scan failed: {error}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = root.join("crates/lint/baseline.txt");
    if options.write_baseline {
        let baseline = Baseline::from_violations(&report.violations);
        if let Err(error) = std::fs::write(&baseline_path, baseline.format()) {
            eprintln!(
                "ofl-lint: cannot write {}: {error}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "ofl-lint: wrote {} baseline entr{} to {}",
            baseline.len(),
            if baseline.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(),
    };
    let (new, baselined) = baseline.partition(&report.violations);

    if options.json {
        print!("{}", to_json(&report, new.len(), baselined.len()));
    }

    // Human report: stdout normally, stderr when stdout carries JSON.
    let mut human = String::new();
    for violation in &new {
        human.push_str(&format!(
            "{} {}:{} {}\n    {}\n",
            violation.rule, violation.path, violation.line, violation.snippet, violation.message
        ));
    }
    for violation in &baselined {
        human.push_str(&format!(
            "{} {}:{} {} [baselined]\n",
            violation.rule, violation.path, violation.line, violation.snippet
        ));
    }
    for stale in baseline.stale(&report.violations) {
        human.push_str(&format!(
            "note: stale baseline entry (hit was fixed — delete the line): {stale}\n"
        ));
    }
    human.push_str(&format!(
        "ofl-lint: {} files, {} violation{} ({} new, {} baselined)\n",
        report.files_scanned,
        report.violations.len(),
        if report.violations.len() == 1 {
            ""
        } else {
            "s"
        },
        new.len(),
        baselined.len()
    ));
    if options.json {
        eprint!("{human}");
    } else {
        print!("{human}");
    }

    if options.deny_new && !new.is_empty() {
        eprintln!(
            "ofl-lint: --deny-new: {} violation{} not in the baseline",
            new.len(),
            if new.len() == 1 { "" } else { "s" }
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
