//! Workspace scoping: which paths each rule polices.
//!
//! Rules are pure pattern logic; this module is the single place that
//! knows the shape of *this* workspace — which crates bear digests,
//! where wall-clock reads are legitimate, which enums ride the wire.
//! All paths are workspace-relative with `/` separators.

use crate::codec::CodecCheck;

/// Directories never scanned: vendored stand-ins, build output, and the
/// lint fixtures (which contain violations *on purpose*).
pub const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "crates/lint/tests/fixtures"];

/// D1 allowlist: paths where reading the wall clock is the point.
/// Benches meter real elapsed time by design, and `hotpath.rs` is the
/// runtime-gated phase timer whose output is explicitly non-digest.
pub const D1_ALLOW: &[&str] = &["crates/bench/", "crates/primitives/src/hotpath.rs"];

/// D2 scope: the digest-bearing crates. A nondeterministic iteration
/// order anywhere in these can surface in a state digest.
pub const D2_SCOPE: &[&str] = &[
    "crates/eth/",
    "crates/core/",
    "crates/fl/",
    "crates/incentive/",
];

/// R1 scope: the daemon and the transport layer it runs on. Worker
/// threads here face untrusted peers and must degrade, not panic.
pub const R1_SCOPE: &[&str] = &["crates/rpcd/src/", "crates/rpc/src/transport.rs"];

/// True when `path` starts with any prefix in `prefixes`.
pub fn path_in(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// The wire enums held to the encode/decode/round-trip-test triple.
pub fn codec_checks() -> Vec<CodecCheck> {
    const PROPTESTS: &[&str] = &["crates/rpc/tests/proptests.rs"];
    vec![
        CodecCheck {
            enum_name: "Frame",
            decl_path: "crates/rpc/src/frame.rs",
            codec_path: "crates/rpc/src/frame.rs",
            encode_fns: &["write_payload"],
            decode_fns: &["decode_payload_at"],
            test_paths: PROPTESTS,
        },
        CodecCheck {
            enum_name: "RpcMethod",
            decl_path: "crates/rpc/src/envelope.rs",
            codec_path: "crates/rpc/src/envelope.rs",
            encode_fns: &["write"],
            decode_fns: &["read"],
            test_paths: PROPTESTS,
        },
        CodecCheck {
            enum_name: "RpcResult",
            decl_path: "crates/rpc/src/envelope.rs",
            codec_path: "crates/rpc/src/envelope.rs",
            encode_fns: &["write"],
            decode_fns: &["read"],
            test_paths: PROPTESTS,
        },
        CodecCheck {
            enum_name: "BackstageOp",
            decl_path: "crates/rpc/src/backstage.rs",
            codec_path: "crates/rpc/src/frame.rs",
            encode_fns: &["write_backstage_op"],
            decode_fns: &["read_backstage_op"],
            test_paths: PROPTESTS,
        },
        CodecCheck {
            enum_name: "SubscriptionKind",
            decl_path: "crates/rpc/src/sub.rs",
            codec_path: "crates/rpc/src/frame.rs",
            encode_fns: &["write_sub_kind"],
            decode_fns: &["read_sub_kind"],
            test_paths: PROPTESTS,
        },
        CodecCheck {
            enum_name: "SubEvent",
            decl_path: "crates/rpc/src/sub.rs",
            codec_path: "crates/rpc/src/frame.rs",
            encode_fns: &["write_sub_event"],
            decode_fns: &["read_sub_event"],
            test_paths: PROPTESTS,
        },
        CodecCheck {
            enum_name: "BackstageReply",
            decl_path: "crates/rpc/src/backstage.rs",
            codec_path: "crates/rpc/src/frame.rs",
            encode_fns: &["write_backstage_reply"],
            decode_fns: &["read_backstage_reply"],
            test_paths: PROPTESTS,
        },
    ]
}
