//! W1 — codec exhaustiveness, checked structurally.
//!
//! The wire protocol's enums (`Frame`, `RpcMethod`, `RpcResult`,
//! `BackstageOp`, `BackstageReply`) each have a hand-written encoder and
//! decoder. Rust's `match` exhaustiveness protects the *encode* side, but
//! a decoder is a `u8 → variant` table where a forgotten arm is just a
//! runtime `CodecError` — and a variant missing from the round-trip tests
//! is a codec bug waiting for production traffic.
//!
//! This check parses the enum declaration for its variant names, extracts
//! the body text of the named encode and decode functions, and requires
//! every `Enum::Variant` token to appear in all three places: encode
//! region, decode region, and test code (the declaring/codec files' test
//! regions plus any listed integration-test files).

use crate::rules::Violation;
use crate::scan::{find_word, ScannedFile};

/// One enum to hold to the encode/decode/test triple.
pub struct CodecCheck {
    /// The enum's name, e.g. `Frame`.
    pub enum_name: &'static str,
    /// Workspace-relative path of the file declaring the enum.
    pub decl_path: &'static str,
    /// Workspace-relative path of the file holding the codec functions.
    pub codec_path: &'static str,
    /// Function names whose bodies form the encode region (same-named
    /// functions are unioned — `write` exists on both request and
    /// response impls).
    pub encode_fns: &'static [&'static str],
    /// Function names whose bodies form the decode region.
    pub decode_fns: &'static [&'static str],
    /// Additional integration-test files whose whole text counts as test
    /// coverage (the decl/codec files' `#[cfg(test)]` regions always do).
    pub test_paths: &'static [&'static str],
}

/// Runs one codec check. `lookup` resolves a workspace-relative path to
/// its scanned file; a missing file is itself a violation (the check is
/// misconfigured or the file moved).
pub fn w1_codec_exhaustiveness(
    check: &CodecCheck,
    lookup: &dyn Fn(&str) -> Option<ScannedFile>,
) -> Vec<Violation> {
    let missing_file = |path: &str| Violation {
        rule: "W1",
        path: path.to_string(),
        line: 1,
        snippet: format!("<file not found for codec check {}>", check.enum_name),
        message: format!(
            "codec check for {} points at {}, which is missing; update the \
             check in crates/lint/src/config.rs",
            check.enum_name, path
        ),
    };
    let Some(decl) = lookup(check.decl_path) else {
        return vec![missing_file(check.decl_path)];
    };
    let Some(codec) = lookup(check.codec_path) else {
        return vec![missing_file(check.codec_path)];
    };

    let variants = enum_variants(&decl, check.enum_name);
    if variants.is_empty() {
        return vec![Violation {
            rule: "W1",
            path: check.decl_path.to_string(),
            line: 1,
            snippet: format!("<enum {} not found>", check.enum_name),
            message: format!(
                "codec check could not locate `enum {}` in {}",
                check.enum_name, check.decl_path
            ),
        }];
    }

    let encode_text = fn_bodies(&codec, check.encode_fns);
    let decode_text = fn_bodies(&codec, check.decode_fns);
    let mut test_text = test_region_text(&decl);
    if check.codec_path != check.decl_path {
        test_text.push_str(&test_region_text(&codec));
    }
    for path in check.test_paths {
        if let Some(f) = lookup(path) {
            for line in &f.lines {
                test_text.push_str(&line.code);
                test_text.push('\n');
            }
        }
    }

    let mut out = Vec::new();
    for (variant, decl_line) in &variants {
        let mut missing = Vec::new();
        for (region, text) in [
            ("encode", &encode_text),
            ("decode", &decode_text),
            ("round-trip tests", &test_text),
        ] {
            if !mentions_variant(text, check.enum_name, variant) {
                missing.push(region);
            }
        }
        if !missing.is_empty() {
            out.push(Violation {
                rule: "W1",
                path: check.decl_path.to_string(),
                line: *decl_line,
                snippet: format!("{}::{}", check.enum_name, variant),
                message: format!(
                    "variant {}::{} is missing from: {}",
                    check.enum_name,
                    variant,
                    missing.join(", ")
                ),
            });
        }
    }
    out
}

/// True when `text` contains `Enum::Variant` (or `Self::Variant`) at an
/// identifier boundary on both sides of the variant name.
fn mentions_variant(text: &str, enum_name: &str, variant: &str) -> bool {
    for qualifier in [enum_name, "Self"] {
        let token = format!("{qualifier}::{variant}");
        for at in find_word(text, &token) {
            let after = text.as_bytes().get(at + token.len());
            let boundary = match after {
                Some(b) => !(b.is_ascii_alphanumeric() || *b == b'_'),
                None => true,
            };
            if boundary {
                return true;
            }
        }
    }
    false
}

/// Parses the declaration of `enum_name` in `file` and returns its
/// variant names with their 1-based declaration lines.
fn enum_variants(file: &ScannedFile, enum_name: &str) -> Vec<(String, usize)> {
    let decl_marker = format!("enum {enum_name}");
    let mut start_line = None;
    for line in &file.lines {
        for at in find_word(&line.code, &decl_marker) {
            let after = line.code.as_bytes().get(at + decl_marker.len());
            let boundary = !matches!(after, Some(b) if b.is_ascii_alphanumeric() || *b == b'_');
            if boundary {
                start_line = Some(line.number);
            }
        }
        if start_line.is_some() {
            break;
        }
    }
    let Some(start) = start_line else {
        return Vec::new();
    };

    // Walk characters from the declaration's opening brace; a variant
    // name is the identifier that starts a "variant slot": depth exactly
    // 1, immediately after the opening `{` or a top-level `,`, skipping
    // `#[…]` attributes.
    let mut variants = Vec::new();
    let mut depth: i32 = 0; // combined {}, (), [] depth once inside the enum
    let mut entered = false;
    let mut expecting_variant = false;
    let mut in_attr = 0i32; // bracket depth of a `#[…]` attribute at slot level
    'outer: for line in file.lines.iter().skip(start - 1) {
        let mut chars = line.code.chars().peekable();
        while let Some(c) = chars.next() {
            if !entered {
                if c == '{' {
                    entered = true;
                    depth = 1;
                    expecting_variant = true;
                }
                continue;
            }
            if in_attr > 0 {
                match c {
                    '[' => in_attr += 1,
                    ']' => in_attr -= 1,
                    _ => {}
                }
                continue;
            }
            match c {
                '{' | '(' | '[' => depth += 1,
                '}' | ')' | ']' => {
                    depth -= 1;
                    if depth == 0 {
                        break 'outer;
                    }
                }
                ',' if depth == 1 => expecting_variant = true,
                // `#[derive(…)]`-style attribute before a variant.
                '#' if depth == 1 && expecting_variant && chars.peek() == Some(&'[') => {
                    chars.next();
                    in_attr = 1;
                }
                c if depth == 1 && expecting_variant && (c.is_ascii_alphabetic() || c == '_') => {
                    let mut name = String::new();
                    name.push(c);
                    while let Some(&n) = chars.peek() {
                        if n.is_ascii_alphanumeric() || n == '_' {
                            name.push(n);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    variants.push((name, line.number));
                    expecting_variant = false;
                }
                _ => {}
            }
        }
    }
    variants
}

/// Concatenated body text of every function named in `names` (brace-matched
/// from each `fn <name>` signature line).
fn fn_bodies(file: &ScannedFile, names: &[&str]) -> String {
    let mut out = String::new();
    for name in names {
        let marker = format!("fn {name}");
        let mut i = 0;
        while i < file.lines.len() {
            let code = &file.lines[i].code;
            let is_sig = find_word(code, &marker).iter().any(|&at| {
                matches!(
                    code.as_bytes().get(at + marker.len()),
                    Some(b'(') | Some(b'<')
                )
            });
            if !is_sig {
                i += 1;
                continue;
            }
            // Found a signature: consume lines until braces balance.
            let mut depth = 0i32;
            let mut opened = false;
            while i < file.lines.len() {
                let line = &file.lines[i];
                out.push_str(&line.code);
                out.push('\n');
                for b in line.code.bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                i += 1;
                if opened && depth <= 0 {
                    break;
                }
            }
        }
    }
    out
}

/// All code text inside the file's `#[cfg(test)]`/`#[test]` regions.
fn test_region_text(file: &ScannedFile) -> String {
    let mut out = String::new();
    for line in &file.lines {
        if line.in_test {
            out.push_str(&line.code);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScannedFile;

    const DECL: &str = "\
pub enum Wire {
    Ping,
    #[allow(dead_code)]
    Pong { n: u64 },
    Data(Vec<u8>),
}

fn encode(w: &Wire) -> u8 {
    match w {
        Wire::Ping => 0,
        Wire::Pong { .. } => 1,
        Wire::Data(_) => 2,
    }
}

fn decode(tag: u8) -> Wire {
    match tag {
        0 => Wire::Ping,
        1 => Wire::Pong { n: 0 },
        _ => Wire::Data(vec![]),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        let all = [Wire::Ping, Wire::Pong { n: 7 }, Wire::Data(vec![1])];
    }
}
";

    fn check() -> CodecCheck {
        CodecCheck {
            enum_name: "Wire",
            decl_path: "src/wire.rs",
            codec_path: "src/wire.rs",
            encode_fns: &["encode"],
            decode_fns: &["decode"],
            test_paths: &[],
        }
    }

    #[test]
    fn extracts_variants_past_attributes_and_payloads() {
        let f = ScannedFile::scan("src/wire.rs", DECL, false);
        let names: Vec<String> = enum_variants(&f, "Wire")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["Ping", "Pong", "Data"]);
    }

    #[test]
    fn complete_codec_is_clean() {
        let f = ScannedFile::scan("src/wire.rs", DECL, false);
        let v = w1_codec_exhaustiveness(&check(), &|p| (p == "src/wire.rs").then(|| f.clone()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dropped_decode_arm_is_reported() {
        let broken = DECL.replace("1 => Wire::Pong { n: 0 },", "");
        let f = ScannedFile::scan("src/wire.rs", &broken, false);
        let v = w1_codec_exhaustiveness(&check(), &|p| (p == "src/wire.rs").then(|| f.clone()));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("decode"));
        assert!(v[0].snippet.contains("Wire::Pong"));
    }

    #[test]
    fn untested_variant_is_reported() {
        let broken = DECL.replace("Wire::Data(vec![1])", "/* gone */");
        let f = ScannedFile::scan("src/wire.rs", &broken, false);
        let v = w1_codec_exhaustiveness(&check(), &|p| (p == "src/wire.rs").then(|| f.clone()));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("round-trip tests"));
    }
}
