//! The named project invariants, one function per rule.
//!
//! Every rule takes a [`ScannedFile`] (comments/strings already blanked,
//! test regions marked) and returns [`Violation`]s. Scoping — which paths
//! a rule polices, which it allowlists — lives in [`crate::config`], so
//! the rule bodies stay pure pattern logic.
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1   | no wall-clock reads outside the bench/hotpath allowlist |
//! | D2   | no unordered `HashMap`/`HashSet` iteration in digest crates |
//! | D3   | no ambient (entropy-seeded) randomness anywhere |
//! | R1   | no panic paths in daemon/transport non-test code |
//! | W1   | codec enums exhaustive across encode, decode, and tests |

use crate::scan::{find_word, ScannedFile};

/// A single rule hit, reported as `rule path:line snippet`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Rule id: `D1`, `D2`, `D3`, `R1`, `W1`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number (best effort for structural rules).
    pub line: usize,
    /// The offending source line, trimmed — shown to the user and used
    /// (normalized) as the baseline key, so line drift does not churn
    /// the baseline.
    pub snippet: String,
    /// Human explanation of what to do instead.
    pub message: String,
}

impl Violation {
    fn at(rule: &'static str, file: &ScannedFile, line: usize, message: String) -> Violation {
        let snippet = file
            .lines
            .get(line.saturating_sub(1))
            .map(|l| l.raw.trim().to_string())
            .unwrap_or_default();
        Violation {
            rule,
            path: file.path.clone(),
            line,
            snippet,
            message,
        }
    }

    /// The baseline identity of this violation: rule, path, and the
    /// whitespace-normalized snippet. Deliberately excludes the line
    /// number so unrelated edits above a baselined hit do not invalidate
    /// the baseline.
    pub fn baseline_key(&self) -> String {
        let normalized: String = self
            .snippet
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        format!("{}|{}|{}", self.rule, self.path, normalized)
    }
}

/// D1 — no wall-clock. `Instant::now` / `SystemTime` read real time, which
/// differs across runs and machines; everything in the engine must take
/// time from the netsim virtual clock. Escape: `// lint: wall-clock-ok(reason)`.
pub fn d1_wall_clock(file: &ScannedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let hit = !find_word(&line.code, "Instant::now").is_empty()
            || !find_word(&line.code, "SystemTime").is_empty();
        if hit && !file.excused(line.number, "wall-clock-ok") {
            out.push(Violation::at(
                "D1",
                file,
                line.number,
                "wall-clock read; use netsim virtual time, or annotate \
                 `// lint: wall-clock-ok(reason)` for bench-only metering"
                    .to_string(),
            ));
        }
    }
    out
}

/// Methods that surface a map/set's nondeterministic iteration order.
const UNORDERED_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

/// D2 — no unordered iteration in digest-bearing crates. `HashMap` /
/// `HashSet` iteration order is randomized per process; iterating one
/// into a digest, a fee calculation, or an event log makes the result
/// run-dependent. The rule tracks identifiers bound or typed as hash
/// collections and flags iteration over them unless the result is sorted
/// within two lines or the site carries `// lint: ordered-ok(reason)`.
pub fn d2_unordered_iteration(file: &ScannedFile) -> Vec<Violation> {
    let idents = hash_collection_idents(file);
    if idents.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut flagged = false;
        for method in UNORDERED_METHODS {
            for at in occurrences(&line.code, method) {
                if let Some(ident) = ident_before_dot(&line.code, at) {
                    if idents.iter().any(|known| known == ident) {
                        flagged = true;
                    }
                }
            }
        }
        if !flagged {
            if let Some(ident) = for_in_target(&line.code) {
                if idents.iter().any(|known| known == ident) {
                    flagged = true;
                }
            }
        }
        if flagged && !file.excused(line.number, "ordered-ok") && !sorted_nearby(file, i) {
            out.push(Violation::at(
                "D2",
                file,
                line.number,
                "unordered HashMap/HashSet iteration in a digest-bearing crate; \
                 sort the items, use a BTreeMap/BTreeSet, or annotate \
                 `// lint: ordered-ok(reason)`"
                    .to_string(),
            ));
        }
    }
    out
}

/// Collects identifiers declared or typed as `HashMap`/`HashSet` in this
/// file: `let [mut] name = HashMap::…`, `name: HashMap<…>` (fields,
/// params, typed lets).
fn hash_collection_idents(file: &ScannedFile) -> Vec<String> {
    let mut idents = Vec::new();
    for line in &file.lines {
        let code = &line.code;
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        // `let [mut] name = HashMap::new()` / `HashSet::with_capacity(…)`
        if let Some(let_at) = code.find("let ") {
            let after = code[let_at + 4..].trim_start().trim_start_matches("mut ");
            let name: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty()
                && (code.contains("HashMap::")
                    || code.contains("HashSet::")
                    || code.contains(": HashMap<")
                    || code.contains(": HashSet<"))
            {
                idents.push(name);
            }
        }
        // `name: HashMap<…>` — struct fields and fn params, including
        // reference types (`name: &HashMap<…>`, `name: &mut HashMap<…>`).
        for marker in ["HashMap<", "HashSet<"] {
            for at in occurrences(code, marker) {
                // Walk back over `&`/`mut` and the `:` to the identifier.
                let mut head = code[..at].trim_end();
                loop {
                    let stripped = head
                        .strip_suffix('&')
                        .or_else(|| head.strip_suffix("mut"))
                        .map(str::trim_end);
                    match stripped {
                        Some(s) => head = s,
                        None => break,
                    }
                }
                let head = head.strip_suffix(':').unwrap_or(head).trim_end();
                let name: String = head
                    .chars()
                    .rev()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if !name.is_empty() && !name.chars().next().unwrap().is_ascii_digit() {
                    idents.push(name);
                }
            }
        }
    }
    idents.sort();
    idents.dedup();
    // Type names themselves are not bindings.
    idents.retain(|n| n != "HashMap" && n != "HashSet");
    idents
}

/// Byte offsets of every occurrence of `needle` in `haystack`.
fn occurrences(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

/// The identifier immediately before the `.` at byte offset `dot_at`
/// (the last path segment: `self.accounts.iter()` → `accounts`).
fn ident_before_dot(code: &str, dot_at: usize) -> Option<&str> {
    let head = &code[..dot_at];
    let start = head
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|p| p + 1)
        .unwrap_or(0);
    let ident = &head[start..];
    (!ident.is_empty()).then_some(ident)
}

/// For `for x in <expr> {`, the trailing identifier of `<expr>`
/// (`for (k, v) in &self.accounts {` → `accounts`).
fn for_in_target(code: &str) -> Option<&str> {
    let for_at = find_word(code, "for ").into_iter().next()?;
    let in_at = code[for_at..].find(" in ")? + for_at + 4;
    let expr = code[in_at..]
        .trim()
        .trim_end_matches(|c: char| c == '{' || c == '}' || c.is_whitespace());
    let start = expr
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|p| p + 1)
        .unwrap_or(0);
    let ident = &expr[start..];
    (!ident.is_empty()).then_some(ident)
}

/// True when the flagged line or the two lines after it impose an order
/// (`.sort…` call or collection into a BTree type).
fn sorted_nearby(file: &ScannedFile, index: usize) -> bool {
    file.lines[index..].iter().take(3).any(|l| {
        l.code.contains(".sort") || l.code.contains("BTreeMap") || l.code.contains("BTreeSet")
    })
}

/// D3 — no ambient randomness. Entropy-seeded RNGs make runs
/// unreproducible; every seed must flow from config so a run can be
/// replayed bit-for-bit. Escape: `// lint: ambient-rand-ok(reason)`.
pub fn d3_ambient_randomness(file: &ScannedFile) -> Vec<Violation> {
    const PATTERNS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let hit = PATTERNS
            .iter()
            .any(|p| !find_word(&line.code, p).is_empty());
        if hit && !file.excused(line.number, "ambient-rand-ok") {
            out.push(Violation::at(
                "D3",
                file,
                line.number,
                "ambient randomness; seed a deterministic RNG from config \
                 so runs replay bit-for-bit, or annotate \
                 `// lint: ambient-rand-ok(reason)`"
                    .to_string(),
            ));
        }
    }
    out
}

/// R1 — no panic paths in the daemon. A stalled or malicious client must
/// never take down a worker thread; daemon and transport code propagates
/// typed errors instead. Escape: `// lint: panic-ok(reason)`.
pub fn r1_no_panic(file: &ScannedFile) -> Vec<Violation> {
    const PATTERNS: &[&str] = &[
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
    ];
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let hit = PATTERNS.iter().any(|p| line.code.contains(p));
        if hit && !file.excused(line.number, "panic-ok") {
            out.push(Violation::at(
                "R1",
                file,
                line.number,
                "panic path in daemon/transport code; propagate a typed \
                 error (FrameError/io::Error) or recover, or annotate \
                 `// lint: panic-ok(reason)`"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScannedFile;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::scan("crates/x/src/lib.rs", src, false)
    }

    #[test]
    fn d1_flags_wall_clock_and_honors_escape() {
        let f = scan(
            "let t = std::time::Instant::now();\n\
             let ok = Instant::now(); // lint: wall-clock-ok(bench leg)\n",
        );
        let v = d1_wall_clock(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn d2_tracks_bindings_and_sorted_suppression() {
        let f = scan(
            "use std::collections::HashMap;\n\
             let mut accounts = HashMap::new();\n\
             let mut rows: Vec<_> = accounts.iter().collect();\n\
             rows.sort();\n\
             let sum: u64 = accounts.values().sum(); // lint: ordered-ok(commutative)\n\
             let vec_ok = vec![1].iter().count();\n\
             for (k, v) in &accounts {}\n",
        );
        let v = d2_unordered_iteration(&f);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 7);
    }

    #[test]
    fn d2_sees_reference_typed_params() {
        let f = scan(
            "pub fn digest(m: &HashMap<u64, u64>) -> u64 {\n\
             for (k, v) in m.iter() { let _ = k ^ v; }\n\
             0\n\
             }\n",
        );
        let v = d2_unordered_iteration(&f);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn d2_sees_struct_fields() {
        let f = scan(
            "struct S { table: HashMap<u64, u64> }\n\
             impl S { fn go(&self) { for k in self.table.keys() {} } }\n",
        );
        let v = d2_unordered_iteration(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn d3_flags_entropy_rng() {
        let f = scan("let mut rng = rand::thread_rng();\n");
        assert_eq!(d3_ambient_randomness(&f).len(), 1);
    }

    #[test]
    fn r1_flags_panics_but_not_unwrap_or() {
        let f = scan(
            "let a = x.unwrap();\n\
             let b = x.unwrap_or_else(|p| p.into_inner());\n\
             let c = x.unwrap_or_default();\n\
             let d = x.expect(\"boom\");\n",
        );
        let v = r1_no_panic(&f);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 4);
    }

    #[test]
    fn rules_skip_test_regions() {
        let f = scan(
            "#[cfg(test)]\nmod tests {\n    fn t() { let a = x.unwrap(); let t = Instant::now(); }\n}\n",
        );
        assert!(r1_no_panic(&f).is_empty());
        assert!(d1_wall_clock(&f).is_empty());
    }

    #[test]
    fn baseline_key_ignores_line_numbers() {
        let f1 = scan("let t = Instant::now();\n");
        let f2 = scan("\n\n\nlet t  =  Instant::now();\n");
        let k1 = d1_wall_clock(&f1)[0].baseline_key();
        let k2 = d1_wall_clock(&f2)[0].baseline_key();
        assert_eq!(k1, k2);
    }
}
