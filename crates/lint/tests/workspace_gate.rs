//! The gate, enforced by `cargo test` itself: the real workspace must
//! carry zero violations that are not in the checked-in baseline.
//!
//! This is the same check CI's `--deny-new` run performs, so a developer
//! who never touches CI still cannot land a new wall-clock read, an
//! unordered digest-path iteration, a daemon panic path, or a codec gap
//! without either fixing it or consciously annotating/baselining it.

use ofl_lint::baseline::Baseline;
use std::path::PathBuf;

#[test]
fn workspace_has_no_unbaselined_violations() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = ofl_lint::run(&root).expect("workspace scan succeeds");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — is the walker broken?",
        report.files_scanned
    );

    let baseline = std::fs::read_to_string(root.join("crates/lint/baseline.txt"))
        .map(|text| Baseline::parse(&text))
        .unwrap_or_default();
    let (new, _baselined) = baseline.partition(&report.violations);
    assert!(
        new.is_empty(),
        "new lint violations (fix them, annotate with a reasoned escape, \
         or — only for pre-existing debt — add to crates/lint/baseline.txt):\n{}",
        new.iter()
            .map(|v| format!("  {} {}:{} {}", v.rule, v.path, v.line, v.snippet))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
