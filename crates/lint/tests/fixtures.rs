//! Fixture tests: every rule proven against a known-bad snippet (tripping
//! exactly its own rule id) and a known-good twin (clean), plus a
//! baseline round-trip over real fixture violations.
//!
//! Fixtures live in `tests/fixtures/` — a directory the workspace pass
//! skips, because the bad twins contain violations on purpose. Each
//! fixture is scanned here under a *synthetic* workspace path so it gets
//! the same rule scoping the real tree would (`crates/eth/src/…` for the
//! determinism rules, `crates/rpcd/src/…` for R1).

use ofl_lint::baseline::Baseline;
use ofl_lint::codec::{w1_codec_exhaustiveness, CodecCheck};
use ofl_lint::rules::{
    d1_wall_clock, d2_unordered_iteration, d3_ambient_randomness, r1_no_panic, Violation,
};
use ofl_lint::scan::ScannedFile;
use std::path::PathBuf;

/// Loads a fixture and scans it as if it lived at `as_path` in the
/// workspace (not as test code — the fixtures model production files).
fn scan_fixture(name: &str, as_path: &str) -> ScannedFile {
    let on_disk = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&on_disk)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", on_disk.display()));
    ScannedFile::scan(as_path, &text, false)
}

/// Runs every line rule with the same scoping `ofl_lint::run` applies,
/// and returns the rule ids that fired.
fn fired_rules(file: &ScannedFile) -> Vec<&'static str> {
    let mut violations: Vec<Violation> = Vec::new();
    if !ofl_lint::config::path_in(&file.path, ofl_lint::config::D1_ALLOW) {
        violations.extend(d1_wall_clock(file));
    }
    if ofl_lint::config::path_in(&file.path, ofl_lint::config::D2_SCOPE) {
        violations.extend(d2_unordered_iteration(file));
    }
    violations.extend(d3_ambient_randomness(file));
    if ofl_lint::config::path_in(&file.path, ofl_lint::config::R1_SCOPE) {
        violations.extend(r1_no_panic(file));
    }
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn d1_bad_trips_exactly_d1() {
    let file = scan_fixture("d1_bad.rs", "crates/eth/src/fixture.rs");
    assert_eq!(fired_rules(&file), vec!["D1"]);
    assert_eq!(d1_wall_clock(&file).len(), 2, "Instant + SystemTime");
}

#[test]
fn d1_good_is_clean() {
    let file = scan_fixture("d1_good.rs", "crates/eth/src/fixture.rs");
    assert_eq!(fired_rules(&file), Vec::<&str>::new());
}

#[test]
fn d2_bad_trips_exactly_d2() {
    let file = scan_fixture("d2_bad.rs", "crates/eth/src/fixture.rs");
    assert_eq!(fired_rules(&file), vec!["D2"]);
    assert_eq!(d2_unordered_iteration(&file).len(), 2, ".iter() + .keys()");
}

#[test]
fn d2_good_is_clean() {
    let file = scan_fixture("d2_good.rs", "crates/eth/src/fixture.rs");
    assert_eq!(fired_rules(&file), Vec::<&str>::new());
}

#[test]
fn d2_is_scoped_to_digest_crates() {
    // The same bad code outside the digest-bearing crates is not D2's
    // business (it cannot reach a digest).
    let file = scan_fixture("d2_bad.rs", "crates/bench/src/fixture.rs");
    assert_eq!(fired_rules(&file), Vec::<&str>::new());
}

#[test]
fn d3_bad_trips_exactly_d3() {
    let file = scan_fixture("d3_bad.rs", "crates/eth/src/fixture.rs");
    assert_eq!(fired_rules(&file), vec!["D3"]);
    assert_eq!(d3_ambient_randomness(&file).len(), 2, "thread_rng + OsRng");
}

#[test]
fn d3_good_is_clean() {
    let file = scan_fixture("d3_good.rs", "crates/eth/src/fixture.rs");
    assert_eq!(fired_rules(&file), Vec::<&str>::new());
}

#[test]
fn r1_bad_trips_exactly_r1() {
    let file = scan_fixture("r1_bad.rs", "crates/rpcd/src/fixture.rs");
    assert_eq!(fired_rules(&file), vec!["R1"]);
    assert_eq!(r1_no_panic(&file).len(), 3, "expect + unwrap + panic!");
}

#[test]
fn r1_good_is_clean() {
    let file = scan_fixture("r1_good.rs", "crates/rpcd/src/fixture.rs");
    assert_eq!(fired_rules(&file), Vec::<&str>::new());
}

#[test]
fn r1_is_scoped_to_daemon_paths() {
    // Panic paths outside the daemon/transport are other crates' choice.
    let file = scan_fixture("r1_bad.rs", "crates/fl/src/fixture.rs");
    assert_eq!(fired_rules(&file), Vec::<&str>::new());
}

fn w1_check(path: &'static str) -> CodecCheck {
    CodecCheck {
        enum_name: "WireFrame",
        decl_path: path,
        codec_path: path,
        encode_fns: &["encode"],
        decode_fns: &["decode"],
        test_paths: &[],
    }
}

#[test]
fn w1_bad_reports_missing_decode_arm_and_missing_test() {
    let file = scan_fixture("w1_bad.rs", "crates/rpc/src/fixture.rs");
    let violations = w1_codec_exhaustiveness(&w1_check("crates/rpc/src/fixture.rs"), &|path| {
        (path == "crates/rpc/src/fixture.rs").then(|| file.clone())
    });
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations.iter().all(|v| v.rule == "W1"));
    let ack = violations
        .iter()
        .find(|v| v.snippet == "WireFrame::Ack")
        .expect("Ack reported");
    assert!(ack.message.contains("decode"));
    let blob = violations
        .iter()
        .find(|v| v.snippet == "WireFrame::Blob")
        .expect("Blob reported");
    assert!(blob.message.contains("round-trip tests"));
}

#[test]
fn w1_good_is_clean() {
    let file = scan_fixture("w1_good.rs", "crates/rpc/src/fixture.rs");
    let violations = w1_codec_exhaustiveness(&w1_check("crates/rpc/src/fixture.rs"), &|path| {
        (path == "crates/rpc/src/fixture.rs").then(|| file.clone())
    });
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn baseline_round_trips_real_fixture_violations() {
    let bad = scan_fixture("r1_bad.rs", "crates/rpcd/src/fixture.rs");
    let violations = r1_no_panic(&bad);
    assert!(!violations.is_empty());

    // Accept them all; a re-run is then all-baselined, nothing new.
    let baseline = Baseline::from_violations(&violations);
    let reparsed = Baseline::parse(&baseline.format());
    assert_eq!(baseline, reparsed);
    let (new, baselined) = reparsed.partition(&violations);
    assert!(new.is_empty());
    assert_eq!(baselined.len(), violations.len());

    // A fresh violation from another fixture is still new.
    let other = scan_fixture("d1_bad.rs", "crates/eth/src/fixture.rs");
    let fresh = d1_wall_clock(&other);
    let (new, _) = reparsed.partition(&fresh);
    assert_eq!(new.len(), fresh.len());
    // And fixing everything leaves only stale keys to delete.
    assert_eq!(reparsed.stale(&fresh).len(), reparsed.len());
}
