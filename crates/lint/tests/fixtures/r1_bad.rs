// Fixture: trips R1 (no-panic-in-daemon) three times.

pub fn dispatch(store: &std::sync::Mutex<u64>, frame: Option<u64>) -> u64 {
    let guard = store.lock().expect("store poisoned");
    let frame = frame.unwrap();
    if frame > *guard {
        panic!("frame from the future");
    }
    frame
}
