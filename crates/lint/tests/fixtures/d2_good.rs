// Fixture: the good twin of d2_bad — clean under D2.

use std::collections::{BTreeMap, HashMap};

pub struct Ledger {
    balances: HashMap<u64, u64>,
    ordered: BTreeMap<u64, u64>,
}

impl Ledger {
    pub fn digest(&self) -> u64 {
        // Sorted within the suppression window: order is pinned.
        let mut rows: Vec<(u64, u64)> = self.balances.iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort();
        rows.iter().fold(0u64, |acc, (owner, wei)| {
            acc.wrapping_mul(31).wrapping_add(owner ^ wei)
        })
    }

    pub fn total(&self) -> u64 {
        // lint: ordered-ok(wrapping_add is commutative; the sum is order-independent)
        self.balances.values().fold(0u64, |a, b| a.wrapping_add(*b))
    }

    pub fn first_owner(&self) -> Option<u64> {
        // BTreeMap iteration is ordered by definition.
        self.ordered.keys().next().copied()
    }
}
