// Fixture: trips D2 (no-unordered-iteration) twice in a digest crate.

use std::collections::HashMap;

pub struct Ledger {
    balances: HashMap<u64, u64>,
}

impl Ledger {
    pub fn digest(&self) -> u64 {
        let mut acc = 0u64;
        for (owner, wei) in self.balances.iter() {
            acc = acc.wrapping_mul(31).wrapping_add(owner ^ wei);
        }
        acc
    }

    pub fn owners(&self) -> Vec<u64> {
        self.balances.keys().copied().collect()
    }
}
