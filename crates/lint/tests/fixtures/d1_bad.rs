// Fixture: trips D1 (no-wall-clock) twice — Instant and SystemTime.

pub fn slot_deadline_ms() -> u128 {
    let started = std::time::Instant::now();
    started.elapsed().as_millis()
}

pub fn unix_now() -> u64 {
    let clock = std::time::SystemTime::now();
    clock
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
