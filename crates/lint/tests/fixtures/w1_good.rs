// Fixture: a complete wire enum — every variant in encode, decode, and a
// round-trip test. Clean under W1.

pub enum WireFrame {
    Ping,
    Ack { id: u64 },
    Blob(Vec<u8>),
}

pub fn encode(frame: &WireFrame, out: &mut Vec<u8>) {
    match frame {
        WireFrame::Ping => out.push(0),
        WireFrame::Ack { id } => {
            out.push(1);
            out.extend_from_slice(&id.to_le_bytes());
        }
        WireFrame::Blob(data) => {
            out.push(2);
            out.extend_from_slice(data);
        }
    }
}

pub fn decode(wire: &[u8]) -> Option<WireFrame> {
    match wire.first()? {
        0 => Some(WireFrame::Ping),
        1 => Some(WireFrame::Ack { id: 7 }),
        2 => Some(WireFrame::Blob(wire[1..].to_vec())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_variant() {
        let frames = [
            WireFrame::Ping,
            WireFrame::Ack { id: 7 },
            WireFrame::Blob(vec![1, 2]),
        ];
        for frame in frames {
            let mut wire = Vec::new();
            encode(&frame, &mut wire);
            assert!(decode(&wire).is_some());
        }
    }
}
