// Fixture: the good twin of r1_bad — clean under R1.
//
// Poison is recovered, absence is propagated, protocol violations come
// back as typed errors; a worker thread never panics.

pub fn dispatch(store: &std::sync::Mutex<u64>, frame: Option<u64>) -> Result<u64, String> {
    let guard = store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let frame = frame.ok_or_else(|| "missing frame".to_string())?;
    if frame > *guard {
        return Err(format!("frame {frame} from the future"));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
