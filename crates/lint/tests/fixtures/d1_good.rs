// Fixture: the good twin of d1_bad — clean under D1.
//
// Virtual time comes from the caller; the one legitimate wall-clock read
// carries the annotation escape with a reason.

pub fn slot_deadline_ms(virtual_now_ms: u128, slot_ms: u128) -> u128 {
    virtual_now_ms + slot_ms
}

pub fn bench_leg_seconds() -> f64 {
    // lint: wall-clock-ok(bench-only metering; never enters a digest)
    let started = std::time::Instant::now();
    started.elapsed().as_secs_f64()
}

// Mentions in comments (Instant::now) and strings do not count:
pub const HINT: &str = "do not call Instant::now here";
