// Fixture: trips D3 (no-ambient-randomness) twice.

pub fn shuffle_owners(owners: &mut [u64]) {
    let mut rng = rand::thread_rng();
    shuffle_with(owners, &mut rng);
}

pub fn fresh_key() -> [u8; 32] {
    let mut rng = rand::rngs::OsRng;
    key_from(&mut rng)
}
