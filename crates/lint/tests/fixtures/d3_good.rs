// Fixture: the good twin of d3_bad — clean under D3.
//
// Every seed flows from config, so a run replays bit-for-bit.

pub fn shuffle_owners(owners: &mut [u64], seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    shuffle_with(owners, &mut rng);
}

pub fn fresh_key(config_seed: u64) -> [u8; 32] {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config_seed);
    key_from(&mut rng)
}
