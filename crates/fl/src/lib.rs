//! # ofl-fl
//!
//! Federated-learning algorithms for the OFL-W3 reproduction:
//!
//! - [`client`]: local silo training (the paper's batch 64 / lr 0.001 /
//!   10-epoch setup).
//! - [`hungarian`]: the O(n³) assignment solver PFNM's matching rides on.
//! - [`pfnm`]: Probabilistic Federated Neural Matching — the one-shot
//!   aggregator OFL-W3 demonstrates (Step 7 of the workflow).
//! - [`baselines`]: naive weight averaging, one-shot ensembling +
//!   distillation, FedOV-lite confidence voting, and multi-round FedAvg.
//!
//! ## Example: one-shot PFNM over non-IID silos
//!
//! ```
//! use ofl_data::{mnist, partition};
//! use ofl_fl::baselines::train_all_silos;
//! use ofl_fl::client::TrainConfig;
//! use ofl_fl::pfnm::{aggregate, PfnmConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let (train, test) = mnist::generate(7, 800, 200);
//! let mut rng = StdRng::seed_from_u64(0);
//! let silos = partition::dirichlet(&train, 4, 10, 0.5, &mut rng);
//!
//! let config = TrainConfig { dims: vec![784, 32, 10], epochs: 2, ..TrainConfig::default() };
//! let trained = train_all_silos(&silos, &config);
//! let weights: Vec<usize> = trained.iter().map(|t| t.n_examples).collect();
//! let models: Vec<_> = trained.into_iter().map(|t| t.model).collect();
//!
//! let result = aggregate(&models, &weights, &PfnmConfig::default(), &mut rng).unwrap();
//! let acc = result.model.accuracy(&test.images, &test.labels);
//! assert!(acc > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod baselines;
pub mod client;
pub mod hungarian;
pub mod pfnm;

pub use baselines::{average_weights, fedavg, train_all_silos, Ensemble};
pub use client::{train_local, TrainConfig, TrainedModel};
pub use pfnm::{aggregate as pfnm_aggregate, PfnmConfig, PfnmResult};
