//! The Hungarian algorithm (Kuhn–Munkres, shortest-augmenting-path variant,
//! O(n²·m)): minimum-cost assignment of rows to columns.
//!
//! PFNM solves one such assignment per client per matching pass, matching
//! local neurons (rows) to global neurons or fresh slots (columns).

/// Solves the min-cost assignment for a `rows × cols` cost matrix with
/// `rows ≤ cols`. Returns `assignment[r] = c`.
///
/// Costs may be any finite f64 (negative allowed — PFNM maximizes by
/// negating its objective).
pub fn solve_min(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    assert!(
        n <= m,
        "solve_min requires rows ({n}) ≤ cols ({m}); pad the matrix"
    );
    for row in cost {
        assert_eq!(row.len(), m, "ragged cost matrix");
        assert!(row.iter().all(|c| c.is_finite()), "costs must be finite");
    }

    // 1-indexed potentials/packing, classic e-maxx formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[col] = row matched to col (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(assignment.iter().all(|&c| c != usize::MAX));
    assignment
}

/// Total cost of an assignment.
pub fn assignment_cost(cost: &[Vec<f64>], assignment: &[usize]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r][c])
        .sum()
}

/// Brute-force solver for small instances (test oracle).
#[cfg(test)]
pub fn solve_min_bruteforce(cost: &[Vec<f64>]) -> f64 {
    let n = cost.len();
    let m = cost[0].len();
    let mut cols: Vec<usize> = (0..m).collect();
    let mut best = f64::INFINITY;
    permute(&mut cols, 0, n, &mut |perm| {
        let total: f64 = (0..n).map(|r| cost[r][perm[r]]).sum();
        if total < best {
            best = total;
        }
    });
    best
}

#[cfg(test)]
fn permute(cols: &mut Vec<usize>, k: usize, n: usize, f: &mut impl FnMut(&[usize])) {
    if k == n {
        f(cols);
        return;
    }
    for i in k..cols.len() {
        cols.swap(k, i);
        permute(cols, k + 1, n, f);
        cols.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn known_square_instance() {
        // Classic 3×3 with optimum 5 (1+3+1? compute: choose (0,1)=1,(1,0)=2,(2,2)=2 → 5).
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = solve_min(&cost);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
    }

    #[test]
    fn identity_optimal() {
        // Diagonal is free, off-diagonal expensive.
        let n = 6;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { 10.0 }).collect())
            .collect();
        let a = solve_min(&cost);
        assert_eq!(a, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn rectangular_uses_cheapest_columns() {
        let cost = vec![vec![5.0, 1.0, 9.0, 2.0], vec![1.0, 5.0, 9.0, 9.0]];
        let a = solve_min(&cost);
        assert_eq!(assignment_cost(&cost, &a), 2.0); // (0→1)=1, (1→0)=1
                                                     // Distinct columns.
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn negative_costs_supported() {
        let cost = vec![vec![-5.0, 0.0], vec![0.0, -5.0]];
        let a = solve_min(&cost);
        assert_eq!(assignment_cost(&cost, &a), -10.0);
    }

    #[test]
    fn matches_bruteforce_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..50 {
            let n = rng.gen_range(1..=6);
            let m = rng.gen_range(n..=7);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect();
            let a = solve_min(&cost);
            // Valid: distinct columns.
            let distinct: std::collections::HashSet<_> = a.iter().collect();
            assert_eq!(distinct.len(), n, "trial {trial}");
            let got = assignment_cost(&cost, &a);
            let best = solve_min_bruteforce(&cost);
            assert!(
                (got - best).abs() < 1e-9,
                "trial {trial}: got {got}, optimum {best}"
            );
        }
    }

    #[test]
    fn empty_instance() {
        assert_eq!(solve_min(&[]), Vec::<usize>::new());
    }

    #[test]
    fn large_instance_fast_and_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..2 * n).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect();
        let a = solve_min(&cost);
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), n);
        // Optimal must not exceed greedy.
        let mut greedy_used = vec![false; 2 * n];
        let mut greedy_total = 0.0;
        for row in &cost {
            let mut best = f64::INFINITY;
            let mut best_j = 0;
            for (j, &used) in greedy_used.iter().enumerate() {
                if !used && row[j] < best {
                    best = row[j];
                    best_j = j;
                }
            }
            greedy_used[best_j] = true;
            greedy_total += best;
        }
        assert!(assignment_cost(&cost, &a) <= greedy_total + 1e-9);
    }
}
