//! Local training: what a model owner runs on its private silo before
//! participating in one-shot FL.

use ofl_data::dataset::Dataset;
use ofl_tensor::nn::Mlp;
use ofl_tensor::optim::{Adam, Optimizer, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which optimizer local training uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocalOptimizer {
    /// Adam (the paper's lr = 0.001 setting).
    Adam { lr: f32 },
    /// SGD with momentum.
    Sgd { lr: f32, momentum: f32 },
}

/// Local training configuration. Defaults match the paper's §4 setup:
/// batch 64, lr 0.001, 10 local epochs, MLP (784, 100, 10).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Layer dimensions.
    pub dims: Vec<usize>,
    /// Minibatch size.
    pub batch_size: usize,
    /// Local epochs.
    pub epochs: usize,
    /// Optimizer settings.
    pub optimizer: LocalOptimizer,
    /// Weight initialization / shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            dims: vec![784, 100, 10],
            batch_size: 64,
            epochs: 10,
            optimizer: LocalOptimizer::Adam { lr: 0.001 },
            seed: 0,
        }
    }
}

/// Outcome of a local training run.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The trained network.
    pub model: Mlp,
    /// Examples trained on (the FedAvg/PFNM weighting).
    pub n_examples: usize,
    /// Final epoch's mean training loss.
    pub final_loss: f32,
}

/// Trains a fresh model on a client's silo.
pub fn train_local(data: &Dataset, config: &TrainConfig) -> TrainedModel {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let model = Mlp::new(&config.dims, &mut rng);
    continue_training(model, data, config)
}

/// Continues training an existing model (FedAvg's per-round local step).
pub fn continue_training(mut model: Mlp, data: &Dataset, config: &TrainConfig) -> TrainedModel {
    let mut opt: Box<dyn Optimizer> = match config.optimizer {
        LocalOptimizer::Adam { lr } => Box::new(Adam::new(lr)),
        LocalOptimizer::Sgd { lr, momentum } => Box::new(Sgd::with_momentum(lr, momentum)),
    };
    let mut shuffled = data.clone();
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5eed));
    let mut final_loss = f32::NAN;
    for _ in 0..config.epochs {
        shuffled.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for (x, y) in shuffled.batches(config.batch_size) {
            let (loss, grads) = model.loss_and_grads(&x, y);
            opt.step(&mut model, &grads);
            epoch_loss += loss;
            batches += 1;
        }
        if batches > 0 {
            final_loss = epoch_loss / batches as f32;
        }
    }
    TrainedModel {
        model,
        n_examples: data.len(),
        final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_data::mnist;

    fn quick_config(seed: u64) -> TrainConfig {
        TrainConfig {
            dims: vec![784, 32, 10],
            batch_size: 64,
            epochs: 3,
            optimizer: LocalOptimizer::Adam { lr: 0.002 },
            seed,
        }
    }

    #[test]
    fn local_training_learns() {
        let (train, test) = mnist::generate(11, 500, 200);
        let trained = train_local(&train, &quick_config(1));
        let acc = trained.model.accuracy(&test.images, &test.labels);
        assert!(acc > 0.8, "accuracy {acc}");
        assert_eq!(trained.n_examples, 500);
        assert!(trained.final_loss.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, _) = mnist::generate(12, 200, 10);
        let a = train_local(&train, &quick_config(5));
        let b = train_local(&train, &quick_config(5));
        assert_eq!(a.model, b.model);
        let c = train_local(&train, &quick_config(6));
        assert_ne!(c.model, a.model);
    }

    #[test]
    fn continue_training_improves_over_start() {
        let (train, test) = mnist::generate(13, 400, 200);
        let cfg = quick_config(2);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let fresh = Mlp::new(&cfg.dims, &mut rng);
        let before = fresh.accuracy(&test.images, &test.labels);
        let after = continue_training(fresh, &train, &cfg)
            .model
            .accuracy(&test.images, &test.labels);
        assert!(after > before + 0.2, "{before} → {after}");
    }

    #[test]
    fn sgd_path_works() {
        let (train, test) = mnist::generate(14, 400, 100);
        let cfg = TrainConfig {
            optimizer: LocalOptimizer::Sgd {
                lr: 0.1,
                momentum: 0.9,
            },
            ..quick_config(3)
        };
        let trained = train_local(&train, &cfg);
        assert!(trained.model.accuracy(&test.images, &test.labels) > 0.6);
    }
}
