//! Baseline aggregators: naive one-shot weight averaging, one-shot
//! ensembling (with optional knowledge distillation, as in Guha et al.'s
//! original one-shot FL), FedOV-lite confidence voting, and the multi-round
//! FedAvg reference that motivates one-shot FL on Web 3.0 in the first
//! place.

use crate::client::{continue_training, train_local, TrainConfig, TrainedModel};
use ofl_data::dataset::Dataset;
use ofl_tensor::nn::Mlp;
use ofl_tensor::optim::{Adam, Optimizer};
use ofl_tensor::tensor::{softmax_rows, Tensor};

/// Errors from baseline aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregateError {
    /// No models supplied.
    NoModels,
    /// Architectures differ (naive averaging needs identical shapes).
    ShapeMismatch,
}

impl core::fmt::Display for AggregateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AggregateError::NoModels => write!(f, "no models to aggregate"),
            AggregateError::ShapeMismatch => write!(f, "models have different architectures"),
        }
    }
}

impl std::error::Error for AggregateError {}

/// Naive one-shot aggregation: coordinate-wise weighted average of
/// parameters. Ignores the permutation symmetry PFNM handles — the baseline
/// PFNM beats.
pub fn average_weights(models: &[Mlp], weights: &[usize]) -> Result<Mlp, AggregateError> {
    let first = models.first().ok_or(AggregateError::NoModels)?;
    for m in models {
        if m.dims() != first.dims() {
            return Err(AggregateError::ShapeMismatch);
        }
    }
    let w: Vec<f64> = if weights.len() == models.len() {
        weights.iter().map(|&x| x.max(1) as f64).collect()
    } else {
        vec![1.0; models.len()]
    };
    let total: f64 = w.iter().sum();
    let mut out = first.clone();
    for layer in &mut out.layers {
        layer.weight.scale(0.0);
        for b in layer.bias.iter_mut() {
            *b = 0.0;
        }
    }
    for (m, &wj) in models.iter().zip(&w) {
        let alpha = (wj / total) as f32;
        for (dst, src) in out.layers.iter_mut().zip(&m.layers) {
            dst.weight.axpy(alpha, &src.weight);
            for (db, &sb) in dst.bias.iter_mut().zip(&src.bias) {
                *db += alpha * sb;
            }
        }
    }
    Ok(out)
}

/// A one-shot ensemble: keeps every local model and averages their softmax
/// outputs at inference time.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// Member models.
    pub members: Vec<Mlp>,
    /// Member weights (typically example counts).
    pub weights: Vec<f64>,
}

impl Ensemble {
    /// Builds an ensemble from local models.
    pub fn new(models: Vec<Mlp>, weights: &[usize]) -> Result<Ensemble, AggregateError> {
        if models.is_empty() {
            return Err(AggregateError::NoModels);
        }
        let weights = if weights.len() == models.len() {
            weights.iter().map(|&w| w.max(1) as f64).collect()
        } else {
            vec![1.0; models.len()]
        };
        Ok(Ensemble {
            members: models,
            weights,
        })
    }

    /// Weighted average of member softmax probabilities.
    pub fn predict_proba(&self, x: &Tensor) -> Tensor {
        let total: f64 = self.weights.iter().sum();
        let mut acc = Tensor::zeros(x.rows(), self.members[0].dims().last().copied().unwrap());
        for (m, &w) in self.members.iter().zip(&self.weights) {
            let p = m.predict_proba(x);
            acc.axpy((w / total) as f32, &p);
        }
        acc
    }

    /// Hard predictions.
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.predict_proba(x).argmax_rows()
    }

    /// Accuracy on a test set.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f64 {
        let preds = self.predict(x);
        preds.iter().zip(labels).filter(|(p, y)| p == y).count() as f64 / labels.len().max(1) as f64
    }

    /// FedOV-lite voting: each member votes with its max-softmax confidence;
    /// members unsure about an input (low max probability) contribute
    /// little. A lightweight stand-in for FedOV's open-set "unknown" class.
    pub fn predict_confidence_vote(&self, x: &Tensor) -> Vec<usize> {
        let classes = self.members[0].dims().last().copied().unwrap();
        let mut scores = Tensor::zeros(x.rows(), classes);
        for m in &self.members {
            let p = m.predict_proba(x);
            for r in 0..x.rows() {
                let row = p.row(r);
                let mut best = 0usize;
                for (c, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = c;
                    }
                }
                let confidence = row[best];
                // Squared confidence sharpens the gap between sure and
                // unsure voters (FedOV's unknown class plays this role).
                let v = scores.get(r, best) + confidence * confidence;
                scores.set(r, best, v);
            }
        }
        scores.argmax_rows()
    }

    /// Accuracy under confidence voting.
    pub fn accuracy_confidence_vote(&self, x: &Tensor, labels: &[usize]) -> f64 {
        let preds = self.predict_confidence_vote(x);
        preds.iter().zip(labels).filter(|(p, y)| p == y).count() as f64 / labels.len().max(1) as f64
    }

    /// Knowledge distillation (Guha et al. 2019): trains a single student
    /// on `public_data` (unlabeled) to mimic the ensemble's soft labels.
    pub fn distill(
        &self,
        public_data: &Tensor,
        student_dims: &[usize],
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> Mlp {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut student = Mlp::new(student_dims, &mut rng);
        let targets = self.predict_proba(public_data);
        let mut opt = Adam::new(lr);
        let batch = 64;
        for _ in 0..epochs {
            for start in (0..public_data.rows()).step_by(batch) {
                let end = (start + batch).min(public_data.rows());
                let rows = end - start;
                let d = public_data.cols();
                let mut xb = Vec::with_capacity(rows * d);
                for r in start..end {
                    xb.extend_from_slice(public_data.row(r));
                }
                let x = Tensor::from_vec(rows, d, xb);
                let cache = student.forward_cached(&x);
                // Soft-target cross-entropy gradient: softmax(student) − target.
                let probs = softmax_rows(&cache.logits);
                let mut grad = probs;
                for r in 0..rows {
                    for c in 0..grad.cols() {
                        let t = targets.get(start + r, c);
                        let v = grad.get(r, c) - t;
                        grad.set(r, c, v / rows as f32);
                    }
                }
                let grads = student.backward(&cache, &grad);
                opt.step(&mut student, &grads);
            }
        }
        student
    }
}

/// FedAvg (McMahan et al. 2017): the multi-round baseline. Each round the
/// server broadcasts the global model, every client trains locally, and the
/// server takes the data-weighted parameter average.
pub fn fedavg(
    silos: &[Dataset],
    config: &TrainConfig,
    rounds: usize,
) -> Result<Mlp, AggregateError> {
    if silos.is_empty() {
        return Err(AggregateError::NoModels);
    }
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut global = Mlp::new(&config.dims, &mut rng);
    for round in 0..rounds {
        let mut locals = Vec::with_capacity(silos.len());
        let mut weights = Vec::with_capacity(silos.len());
        for (j, silo) in silos.iter().enumerate() {
            if silo.is_empty() {
                continue;
            }
            let cfg = TrainConfig {
                seed: config.seed.wrapping_add(1 + round as u64 * 1000 + j as u64),
                ..config.clone()
            };
            let trained = continue_training(global.clone(), silo, &cfg);
            weights.push(trained.n_examples);
            locals.push(trained.model);
        }
        global = average_weights(&locals, &weights)?;
    }
    Ok(global)
}

/// Trains every silo locally (the shared first step of all one-shot
/// methods). Returns the trained models in silo order, skipping empty silos.
pub fn train_all_silos(silos: &[Dataset], config: &TrainConfig) -> Vec<TrainedModel> {
    silos
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(j, silo)| {
            let cfg = TrainConfig {
                seed: config.seed.wrapping_add(j as u64 * 7919),
                ..config.clone()
            };
            train_local(silo, &cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_data::{mnist, partition};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            dims: vec![784, 32, 10],
            epochs: 3,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn average_of_identical_models_is_identity() {
        let (train, test) = mnist::generate(30, 300, 100);
        let m = train_local(&train, &quick_config()).model;
        let avg = average_weights(&[m.clone(), m.clone()], &[1, 1]).unwrap();
        // Averaging identical models changes nothing.
        assert_eq!(avg.predict(&test.images), m.predict(&test.images));
    }

    #[test]
    fn average_weights_weighted() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mlp::new(&[2, 3, 2], &mut rng);
        let b = Mlp::new(&[2, 3, 2], &mut rng);
        let avg = average_weights(&[a.clone(), b.clone()], &[3, 1]).unwrap();
        let expect = 0.75 * a.layers[0].weight.get(0, 0) + 0.25 * b.layers[0].weight.get(0, 0);
        assert!((avg.layers[0].weight.get(0, 0) - expect).abs() < 1e-6);
    }

    #[test]
    fn average_rejects_mismatched() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mlp::new(&[2, 3, 2], &mut rng);
        let b = Mlp::new(&[2, 4, 2], &mut rng);
        assert_eq!(
            average_weights(&[a, b], &[1, 1]).unwrap_err(),
            AggregateError::ShapeMismatch
        );
        assert_eq!(
            average_weights(&[], &[]).unwrap_err(),
            AggregateError::NoModels
        );
    }

    #[test]
    fn ensemble_beats_weak_members_under_skew() {
        let (train, test) = mnist::generate(31, 1500, 300);
        let mut rng = StdRng::seed_from_u64(3);
        let silos = partition::label_skew(&train, 5, 10, 2, &mut rng);
        let trained = train_all_silos(&silos, &quick_config());
        let weights: Vec<usize> = trained.iter().map(|t| t.n_examples).collect();
        let accs: Vec<f64> = trained
            .iter()
            .map(|t| t.model.accuracy(&test.images, &test.labels))
            .collect();
        let models: Vec<Mlp> = trained.into_iter().map(|t| t.model).collect();
        let ensemble = Ensemble::new(models, &weights).unwrap();
        let ens_acc = ensemble.accuracy(&test.images, &test.labels);
        let worst = accs.iter().cloned().fold(1.0, f64::min);
        assert!(
            ens_acc > worst + 0.15,
            "ensemble {ens_acc} vs worst member {worst}"
        );
    }

    #[test]
    fn confidence_vote_close_to_soft_vote() {
        let (train, test) = mnist::generate(32, 1000, 200);
        let mut rng = StdRng::seed_from_u64(4);
        let silos = partition::iid(&train, 4, &mut rng);
        let trained = train_all_silos(&silos, &quick_config());
        let weights: Vec<usize> = trained.iter().map(|t| t.n_examples).collect();
        let ensemble =
            Ensemble::new(trained.into_iter().map(|t| t.model).collect(), &weights).unwrap();
        let soft = ensemble.accuracy(&test.images, &test.labels);
        let vote = ensemble.accuracy_confidence_vote(&test.images, &test.labels);
        assert!((soft - vote).abs() < 0.15, "soft {soft} vs vote {vote}");
        assert!(vote > 0.6);
    }

    #[test]
    fn distillation_recovers_most_of_ensemble() {
        let (train, test) = mnist::generate(33, 1200, 300);
        let mut rng = StdRng::seed_from_u64(5);
        let silos = partition::iid(&train, 4, &mut rng);
        let trained = train_all_silos(&silos, &quick_config());
        let weights: Vec<usize> = trained.iter().map(|t| t.n_examples).collect();
        let ensemble =
            Ensemble::new(trained.into_iter().map(|t| t.model).collect(), &weights).unwrap();
        let ens_acc = ensemble.accuracy(&test.images, &test.labels);
        // Public unlabeled pool from the same distribution.
        let gen = mnist::SyntheticMnist::new(33);
        let mut rng2 = StdRng::seed_from_u64(6);
        let public = gen.sample(800, &mut rng2);
        let student = ensemble.distill(&public.images, &[784, 32, 10], 8, 0.002, 7);
        let student_acc = student.accuracy(&test.images, &test.labels);
        assert!(
            student_acc > ens_acc - 0.15,
            "student {student_acc} vs ensemble {ens_acc}"
        );
    }

    #[test]
    fn fedavg_improves_with_rounds() {
        let (train, test) = mnist::generate(34, 1200, 300);
        let mut rng = StdRng::seed_from_u64(8);
        let silos = partition::dirichlet(&train, 5, 10, 1.0, &mut rng);
        let cfg = TrainConfig {
            epochs: 1,
            ..quick_config()
        };
        let one_round = fedavg(&silos, &cfg, 1).unwrap();
        let five_rounds = fedavg(&silos, &cfg, 5).unwrap();
        let acc1 = one_round.accuracy(&test.images, &test.labels);
        let acc5 = five_rounds.accuracy(&test.images, &test.labels);
        assert!(acc5 > acc1, "round 5 ({acc5}) must beat round 1 ({acc1})");
    }

    #[test]
    fn train_all_silos_skips_empty() {
        let (train, _) = mnist::generate(35, 100, 10);
        let empty = train.subset(&[]);
        let silos = vec![train.clone(), empty, train];
        let trained = train_all_silos(&silos, &quick_config());
        assert_eq!(trained.len(), 2);
    }
}
