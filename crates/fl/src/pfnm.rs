//! PFNM — Probabilistic Federated Neural Matching (Yurochkin et al.,
//! ICML 2019), the one-shot aggregation algorithm OFL-W3 demonstrates.
//!
//! Local MLPs trained on different silos have permutation-symmetric hidden
//! units: neuron 17 of client A may play the role of neuron 4 of client B.
//! Naive weight averaging destroys such models. PFNM instead posits a
//! Beta–Bernoulli-process model over *global* neurons and computes a MAP
//! matching: for each client, a Hungarian assignment matches its hidden
//! neurons to global atoms (or spawns new atoms), maximizing the Gaussian
//! posterior of matched weights plus an Indian-buffet-process popularity
//! prior. The aggregated network's hidden layer is the set of posterior-mean
//! atoms.
//!
//! This implementation covers single-hidden-layer MLPs — the paper's
//! experimental network (784, 100, 10). Each neuron is represented by its
//! concatenated input weights, bias, and output weights, as in the reference
//! implementation.

use crate::hungarian::solve_min;
use ofl_tensor::nn::{Linear, Mlp};
use ofl_tensor::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// PFNM hyperparameters.
#[derive(Debug, Clone)]
pub struct PfnmConfig {
    /// Likelihood std σ of a local neuron around its global atom.
    pub sigma: f64,
    /// Prior std σ₀ of global atoms around zero.
    pub sigma0: f64,
    /// IBP rate γ₀ controlling how readily new atoms spawn.
    pub gamma: f64,
    /// Refinement passes after the initial greedy sweep.
    pub iterations: usize,
}

impl Default for PfnmConfig {
    fn default() -> Self {
        // Reference-implementation defaults: with σ = σ₀ the attach-vs-spawn
        // margin for two identical neurons is ‖v‖²/3 + ln(J−1)/… > 0, so
        // permutation-equivalent neurons merge, while orthogonal neurons
        // prefer fresh atoms.
        PfnmConfig {
            sigma: 1.0,
            sigma0: 1.0,
            gamma: 1.0,
            iterations: 2,
        }
    }
}

/// Errors from PFNM aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfnmError {
    /// No models supplied.
    NoModels,
    /// A model is not a single-hidden-layer MLP.
    UnsupportedArchitecture,
    /// Models have mismatched input/output dimensions.
    DimensionMismatch,
}

impl core::fmt::Display for PfnmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PfnmError::NoModels => write!(f, "no local models to aggregate"),
            PfnmError::UnsupportedArchitecture => {
                write!(f, "PFNM requires single-hidden-layer MLPs")
            }
            PfnmError::DimensionMismatch => write!(f, "local models disagree on in/out dims"),
        }
    }
}

impl std::error::Error for PfnmError {}

/// Outcome of PFNM aggregation.
#[derive(Debug, Clone)]
pub struct PfnmResult {
    /// The aggregated global model.
    pub model: Mlp,
    /// Number of global atoms (hidden width of the global model).
    pub global_neurons: usize,
    /// Per-client assignment: `assignments[j][l]` = global atom of client
    /// j's neuron l.
    pub assignments: Vec<Vec<usize>>,
}

/// One global atom's sufficient statistics.
#[derive(Clone)]
struct Atom {
    /// Σ v/σ² over matched neuron vectors (μ₀ = 0).
    weighted_sum: Vec<f64>,
    /// Number of matched clients.
    count: usize,
}

struct Problem {
    /// Per-client neuron matrices, row = [w_in ‖ b ‖ w_out].
    client_neurons: Vec<Vec<Vec<f64>>>,
    /// Per-client output biases and example counts (for the output bias).
    output_biases: Vec<Vec<f32>>,
    weights: Vec<f64>,
    in_dim: usize,
    hidden_total_dim: usize, // D + 1 + C
    out_dim: usize,
}

/// Aggregates local models with PFNM. `weights[j]` is client j's example
/// count (used for the output-bias average).
pub fn aggregate(
    models: &[Mlp],
    weights: &[usize],
    config: &PfnmConfig,
    rng: &mut impl Rng,
) -> Result<PfnmResult, PfnmError> {
    let problem = prepare(models, weights)?;
    let j_total = problem.client_neurons.len();

    // Initial sweep over a random client order, then refinement passes that
    // unassign one client at a time and re-match it.
    let mut order: Vec<usize> = (0..j_total).collect();
    order.shuffle(rng);

    let mut atoms: Vec<Atom> = Vec::new();
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); j_total];

    for &j in &order {
        let assignment = match_client(&problem.client_neurons[j], &atoms, j_total, config);
        apply_assignment(&problem.client_neurons[j], &assignment, &mut atoms, config);
        assignments[j] = assignment;
    }

    for _ in 0..config.iterations {
        order.shuffle(rng);
        for &j in &order {
            remove_client(
                &problem.client_neurons[j],
                &assignments[j],
                &mut atoms,
                config,
            );
            // Dropping empty atoms requires renumbering everyone.
            compact_atoms(&mut atoms, &mut assignments);
            let assignment = match_client(&problem.client_neurons[j], &atoms, j_total, config);
            apply_assignment(&problem.client_neurons[j], &assignment, &mut atoms, config);
            assignments[j] = assignment;
        }
    }

    let model = build_global(&problem, &atoms, config);
    Ok(PfnmResult {
        global_neurons: atoms.len(),
        model,
        assignments,
    })
}

fn prepare(models: &[Mlp], weights: &[usize]) -> Result<Problem, PfnmError> {
    if models.is_empty() {
        return Err(PfnmError::NoModels);
    }
    if models.iter().any(|m| m.layers.len() != 2) {
        return Err(PfnmError::UnsupportedArchitecture);
    }
    let in_dim = models[0].layers[0].in_dim();
    let out_dim = models[0].layers[1].out_dim();
    for m in models {
        if m.layers[0].in_dim() != in_dim || m.layers[1].out_dim() != out_dim {
            return Err(PfnmError::DimensionMismatch);
        }
    }
    let total_dim = in_dim + 1 + out_dim;
    let client_neurons = models
        .iter()
        .map(|m| {
            let hidden = &m.layers[0];
            let output = &m.layers[1];
            (0..hidden.out_dim())
                .map(|l| {
                    let mut v = Vec::with_capacity(total_dim);
                    v.extend(hidden.weight.row(l).iter().map(|&w| w as f64));
                    v.push(hidden.bias[l] as f64);
                    // Column l of the output matrix: weights leaving neuron l.
                    v.extend((0..out_dim).map(|c| output.weight.get(c, l) as f64));
                    v
                })
                .collect()
        })
        .collect();
    let output_biases = models.iter().map(|m| m.layers[1].bias.clone()).collect();
    let weights = if weights.len() == models.len() {
        weights.iter().map(|&w| w.max(1) as f64).collect()
    } else {
        vec![1.0; models.len()]
    };
    Ok(Problem {
        client_neurons,
        output_biases,
        weights,
        in_dim,
        hidden_total_dim: total_dim,
        out_dim,
    })
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

/// Log-posterior gain of adding `v` to an atom with statistics
/// (`weighted_sum`, `count`).
fn attach_benefit(v: &[f64], atom: &Atom, j_total: usize, cfg: &PfnmConfig) -> f64 {
    let s2 = cfg.sigma * cfg.sigma;
    let s02 = cfg.sigma0 * cfg.sigma0;
    let denom_with = 1.0 / s02 + (atom.count as f64 + 1.0) / s2;
    let denom_without = 1.0 / s02 + atom.count as f64 / s2;
    let mut with_sum = 0.0;
    for (i, &x) in v.iter().enumerate() {
        let s = atom.weighted_sum[i] + x / s2;
        with_sum += s * s;
    }
    let param = with_sum / denom_with - norm2(&atom.weighted_sum) / denom_without;
    // IBP popularity: atoms matched by many clients attract more.
    let c = (atom.count as f64).clamp(1e-10, j_total as f64 - 1e-10);
    let popularity = (c / (j_total as f64 - c)).ln();
    param + popularity
}

/// Log-posterior gain of spawning a fresh atom from `v`.
fn new_atom_benefit(v: &[f64], j_total: usize, cfg: &PfnmConfig) -> f64 {
    let s2 = cfg.sigma * cfg.sigma;
    let s02 = cfg.sigma0 * cfg.sigma0;
    let denom = 1.0 / s02 + 1.0 / s2;
    let param = v.iter().map(|x| (x / s2) * (x / s2)).sum::<f64>() / denom;
    let penalty = (cfg.gamma / j_total as f64).ln();
    param + penalty
}

/// Solves the max-benefit matching of one client's neurons to atoms or
/// fresh slots.
fn match_client(
    neurons: &[Vec<f64>],
    atoms: &[Atom],
    j_total: usize,
    cfg: &PfnmConfig,
) -> Vec<usize> {
    let l_local = neurons.len();
    let l_global = atoms.len();
    if l_local == 0 {
        return Vec::new();
    }
    // Columns: existing atoms then one private "new atom" slot per neuron.
    const FORBIDDEN: f64 = 1e12;
    let cost: Vec<Vec<f64>> = neurons
        .iter()
        .enumerate()
        .map(|(l, v)| {
            let mut row = Vec::with_capacity(l_global + l_local);
            for atom in atoms {
                row.push(-attach_benefit(v, atom, j_total, cfg));
            }
            let new_benefit = new_atom_benefit(v, j_total, cfg);
            for l2 in 0..l_local {
                row.push(if l2 == l { -new_benefit } else { FORBIDDEN });
            }
            row
        })
        .collect();
    let assignment = solve_min(&cost);
    // Renumber fresh-slot columns into new atom ids (appended in order).
    let mut next_new = l_global;
    assignment
        .into_iter()
        .map(|c| {
            if c < l_global {
                c
            } else {
                let id = next_new;
                next_new += 1;
                id
            }
        })
        .collect()
}

fn apply_assignment(
    neurons: &[Vec<f64>],
    assignment: &[usize],
    atoms: &mut Vec<Atom>,
    cfg: &PfnmConfig,
) {
    let s2 = cfg.sigma * cfg.sigma;
    for (l, &atom_id) in assignment.iter().enumerate() {
        if atom_id >= atoms.len() {
            debug_assert_eq!(atom_id, atoms.len(), "new atoms append in order");
            atoms.push(Atom {
                weighted_sum: vec![0.0; neurons[l].len()],
                count: 0,
            });
        }
        let atom = &mut atoms[atom_id];
        for (s, &x) in atom.weighted_sum.iter_mut().zip(&neurons[l]) {
            *s += x / s2;
        }
        atom.count += 1;
    }
}

fn remove_client(neurons: &[Vec<f64>], assignment: &[usize], atoms: &mut [Atom], cfg: &PfnmConfig) {
    let s2 = cfg.sigma * cfg.sigma;
    for (l, &atom_id) in assignment.iter().enumerate() {
        let atom = &mut atoms[atom_id];
        for (s, &x) in atom.weighted_sum.iter_mut().zip(&neurons[l]) {
            *s -= x / s2;
        }
        atom.count -= 1;
    }
}

/// Drops zero-count atoms and renumbers every client's assignment.
fn compact_atoms(atoms: &mut Vec<Atom>, assignments: &mut [Vec<usize>]) {
    let mut remap = vec![usize::MAX; atoms.len()];
    let mut kept = 0usize;
    for (i, atom) in atoms.iter().enumerate() {
        if atom.count > 0 {
            remap[i] = kept;
            kept += 1;
        }
    }
    atoms.retain(|a| a.count > 0);
    for assignment in assignments.iter_mut() {
        for a in assignment.iter_mut() {
            if *a < remap.len() && remap[*a] != usize::MAX {
                *a = remap[*a];
            }
            // Atoms belonging to the client being re-matched are handled by
            // the caller (its assignment is overwritten immediately after).
        }
    }
}

/// Builds the global MLP from atom posterior means.
fn build_global(problem: &Problem, atoms: &[Atom], cfg: &PfnmConfig) -> Mlp {
    let s2 = cfg.sigma * cfg.sigma;
    let s02 = cfg.sigma0 * cfg.sigma0;
    let h = atoms.len();
    let d = problem.in_dim;
    let c = problem.out_dim;
    let mut hidden_w = Tensor::zeros(h, d);
    let mut hidden_b = vec![0.0f32; h];
    let mut output_w = Tensor::zeros(c, h);
    for (i, atom) in atoms.iter().enumerate() {
        let precision = 1.0 / s02 + atom.count as f64 / s2;
        for (k, &s) in atom.weighted_sum.iter().enumerate() {
            let mean = (s / precision) as f32;
            if k < d {
                hidden_w.set(i, k, mean);
            } else if k == d {
                hidden_b[i] = mean;
            } else {
                output_w.set(k - d - 1, i, mean);
            }
        }
    }
    debug_assert_eq!(problem.hidden_total_dim, d + 1 + c);
    // Output bias: data-weighted average of local output biases.
    let total_weight: f64 = problem.weights.iter().sum();
    let mut output_b = vec![0.0f32; c];
    for (biases, &w) in problem.output_biases.iter().zip(&problem.weights) {
        for (o, &b) in output_b.iter_mut().zip(biases) {
            *o += (b as f64 * w / total_weight) as f32;
        }
    }
    Mlp {
        layers: vec![
            Linear {
                weight: hidden_w,
                bias: hidden_b,
            },
            Linear {
                weight: output_w,
                bias: output_b,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{train_local, TrainConfig};
    use ofl_data::{mnist, partition};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_train_config(seed: u64) -> TrainConfig {
        TrainConfig {
            dims: vec![784, 50, 10],
            batch_size: 64,
            epochs: 4,
            seed,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn identical_models_collapse_to_same_width() {
        // J copies of one model must match neuron-for-neuron: global width
        // equals local width.
        let (train, _) = mnist::generate(20, 300, 10);
        let trained = train_local(&train, &small_train_config(1));
        let models = vec![trained.model.clone(); 5];
        let mut rng = StdRng::seed_from_u64(0);
        let result = aggregate(&models, &[300; 5], &PfnmConfig::default(), &mut rng).unwrap();
        assert_eq!(result.global_neurons, 50);
        // All clients share the same assignment pattern.
        for j in 1..5 {
            assert_eq!(result.assignments[j], result.assignments[0]);
        }
    }

    #[test]
    fn identical_models_roundtrip_accuracy() {
        // Aggregating J identical models must preserve their predictions
        // (posterior mean shrinks weights slightly toward 0; with σ₀ ≫ σ the
        // effect is negligible).
        let (train, test) = mnist::generate(21, 400, 200);
        let trained = train_local(&train, &small_train_config(2));
        let base_acc = trained.model.accuracy(&test.images, &test.labels);
        let models = vec![trained.model.clone(); 4];
        let mut rng = StdRng::seed_from_u64(1);
        let result = aggregate(&models, &[400; 4], &PfnmConfig::default(), &mut rng).unwrap();
        let agg_acc = result.model.accuracy(&test.images, &test.labels);
        assert!(
            (agg_acc - base_acc).abs() < 0.05,
            "base {base_acc} vs aggregated {agg_acc}"
        );
    }

    #[test]
    fn permuted_model_matches_original() {
        // A hidden-permuted clone is functionally identical; PFNM must align
        // it back onto the original's atoms (width stays ~local width).
        let (train, test) = mnist::generate(22, 300, 150);
        let trained = train_local(&train, &small_train_config(3));
        let original = trained.model.clone();
        // Permute hidden neurons.
        let h = original.layers[0].out_dim();
        let perm: Vec<usize> = (0..h).rev().collect();
        let mut permuted = original.clone();
        for (new_i, &old_i) in perm.iter().enumerate() {
            for k in 0..original.layers[0].in_dim() {
                let v = original.layers[0].weight.get(old_i, k);
                permuted.layers[0].weight.set(new_i, k, v);
            }
            permuted.layers[0].bias[new_i] = original.layers[0].bias[old_i];
            for c in 0..original.layers[1].out_dim() {
                let v = original.layers[1].weight.get(c, old_i);
                permuted.layers[1].weight.set(c, new_i, v);
            }
        }
        // Sanity: same function.
        assert_eq!(
            original.predict(&test.images),
            permuted.predict(&test.images)
        );
        let mut rng = StdRng::seed_from_u64(2);
        let result = aggregate(
            &[original.clone(), permuted],
            &[300, 300],
            &PfnmConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(result.global_neurons, h, "permutation must be recovered");
        let agg_acc = result.model.accuracy(&test.images, &test.labels);
        let base_acc = original.accuracy(&test.images, &test.labels);
        assert!((agg_acc - base_acc).abs() < 0.05);
    }

    #[test]
    fn heterogeneous_aggregation_beats_worst_local() {
        // The Fig 4 shape: PFNM's aggregate outperforms the weakest local
        // model by a wide margin under non-IID data.
        let (train, test) = mnist::generate(23, 2000, 400);
        let mut rng = StdRng::seed_from_u64(3);
        let silos = partition::dirichlet(&train, 5, 10, 0.5, &mut rng);
        let mut models = Vec::new();
        let mut weights = Vec::new();
        let mut local_accs = Vec::new();
        for (i, silo) in silos.iter().enumerate() {
            if silo.is_empty() {
                continue;
            }
            let trained = train_local(silo, &small_train_config(10 + i as u64));
            local_accs.push(trained.model.accuracy(&test.images, &test.labels));
            weights.push(trained.n_examples);
            models.push(trained.model);
        }
        let result = aggregate(&models, &weights, &PfnmConfig::default(), &mut rng).unwrap();
        let agg = result.model.accuracy(&test.images, &test.labels);
        let worst = local_accs.iter().cloned().fold(1.0f64, f64::min);
        let best = local_accs.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            agg > worst + 0.1,
            "aggregate {agg} vs worst local {worst} (best {best})"
        );
    }

    #[test]
    fn global_width_bounded_and_gamma_controls_it() {
        // Width lies in [H, J·H]; shrinking the IBP rate γ forces merging
        // (fewer atoms), growing it allows more. Independently initialized
        // local models have mostly dissimilar neurons, so at γ = 1 the width
        // sits near the J·H ceiling — the PFNM paper reports the same
        // roughly-linear growth with J for MNIST MLPs.
        let (train, _) = mnist::generate(24, 1500, 10);
        let mut rng = StdRng::seed_from_u64(4);
        let silos = partition::iid(&train, 6, &mut rng);
        let models: Vec<Mlp> = silos
            .iter()
            .enumerate()
            .map(|(i, s)| train_local(s, &small_train_config(30 + i as u64)).model)
            .collect();
        let weights: Vec<usize> = silos.iter().map(|s| s.len()).collect();
        let default = aggregate(&models, &weights, &PfnmConfig::default(), &mut rng).unwrap();
        assert!(default.global_neurons >= 50);
        assert!(default.global_neurons <= 6 * 50);
        // A strong merge prior collapses the width substantially.
        let merging = PfnmConfig {
            gamma: 1e-12,
            ..PfnmConfig::default()
        };
        let merged = aggregate(&models, &weights, &merging, &mut rng).unwrap();
        assert!(
            merged.global_neurons < default.global_neurons,
            "γ→0 width {} !< default width {}",
            merged.global_neurons,
            default.global_neurons
        );
        assert!(merged.global_neurons >= 50);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            aggregate(&[], &[], &PfnmConfig::default(), &mut rng).unwrap_err(),
            PfnmError::NoModels
        );
        let deep = Mlp::new(&[10, 8, 8, 2], &mut rng);
        assert_eq!(
            aggregate(&[deep], &[1], &PfnmConfig::default(), &mut rng).unwrap_err(),
            PfnmError::UnsupportedArchitecture
        );
        let a = Mlp::new(&[10, 8, 2], &mut rng);
        let b = Mlp::new(&[12, 8, 2], &mut rng);
        assert_eq!(
            aggregate(&[a, b], &[1, 1], &PfnmConfig::default(), &mut rng).unwrap_err(),
            PfnmError::DimensionMismatch
        );
    }

    #[test]
    fn assignments_are_valid_permutation_fragments() {
        let (train, _) = mnist::generate(25, 600, 10);
        let mut rng = StdRng::seed_from_u64(6);
        let silos = partition::iid(&train, 3, &mut rng);
        let models: Vec<Mlp> = silos
            .iter()
            .enumerate()
            .map(|(i, s)| train_local(s, &small_train_config(40 + i as u64)).model)
            .collect();
        let result = aggregate(&models, &[200; 3], &PfnmConfig::default(), &mut rng).unwrap();
        for assignment in &result.assignments {
            assert_eq!(assignment.len(), 50);
            // No client maps two neurons to the same atom.
            let distinct: std::collections::HashSet<_> = assignment.iter().collect();
            assert_eq!(distinct.len(), assignment.len());
            for &a in assignment {
                assert!(a < result.global_neurons);
            }
        }
    }
}
