//! Property-based tests for the FL algorithms: Hungarian optimality against
//! a brute-force oracle, PFNM assignment validity, and aggregation algebra.

use ofl_fl::baselines::average_weights;
use ofl_fl::hungarian::{assignment_cost, solve_min};
use ofl_fl::pfnm::{aggregate, PfnmConfig};
use ofl_tensor::nn::Mlp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
    fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
        if row == cost.len() {
            if acc < *best {
                *best = acc;
            }
            return;
        }
        // No pruning: with negative costs a partial sum above `best` can
        // still lead to the optimum.
        for c in 0..cost[0].len() {
            if !used[c] {
                used[c] = true;
                rec(cost, row + 1, used, acc + cost[row][c], best);
                used[c] = false;
            }
        }
    }
    let mut best = f64::INFINITY;
    rec(cost, 0, &mut vec![false; cost[0].len()], 0.0, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn hungarian_is_optimal(
        n in 1usize..6,
        extra in 0usize..3,
        values in proptest::collection::vec(-100.0f64..100.0, 48),
    ) {
        let m = n + extra;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|r| (0..m).map(|c| values[(r * m + c) % values.len()]).collect())
            .collect();
        let assignment = solve_min(&cost);
        // Valid: distinct columns in range.
        let distinct: std::collections::HashSet<_> = assignment.iter().collect();
        prop_assert_eq!(distinct.len(), n);
        prop_assert!(assignment.iter().all(|&c| c < m));
        // Optimal.
        let got = assignment_cost(&cost, &assignment);
        let best = brute_force_min(&cost);
        prop_assert!((got - best).abs() < 1e-6, "got {got}, best {best}");
    }

    #[test]
    fn hungarian_invariant_under_row_offsets(
        n in 2usize..5,
        values in proptest::collection::vec(0.0f64..50.0, 25),
        offsets in proptest::collection::vec(-20.0f64..20.0, 5),
    ) {
        // Adding a constant to a row changes the total but not the argmin.
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|r| (0..n).map(|c| values[(r * n + c) % values.len()]).collect())
            .collect();
        let shifted: Vec<Vec<f64>> = cost
            .iter()
            .enumerate()
            .map(|(r, row)| row.iter().map(|v| v + offsets[r % offsets.len()]).collect())
            .collect();
        let a1 = solve_min(&cost);
        let a2 = solve_min(&shifted);
        let c1 = assignment_cost(&cost, &a1);
        let c2 = assignment_cost(&cost, &a2);
        prop_assert!((c1 - c2).abs() < 1e-6, "offsets changed the optimum: {c1} vs {c2}");
    }

    #[test]
    fn pfnm_assignments_always_valid(
        n_models in 2usize..4,
        hidden in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let models: Vec<Mlp> = (0..n_models)
            .map(|_| Mlp::new(&[8, hidden, 3], &mut rng))
            .collect();
        let weights = vec![10usize; n_models];
        let result = aggregate(&models, &weights, &PfnmConfig::default(), &mut rng).unwrap();
        prop_assert!(result.global_neurons >= hidden);
        prop_assert!(result.global_neurons <= n_models * hidden);
        // Every neuron assigned, injectively per client, to a live atom.
        for assignment in &result.assignments {
            prop_assert_eq!(assignment.len(), hidden);
            let distinct: std::collections::HashSet<_> = assignment.iter().collect();
            prop_assert_eq!(distinct.len(), hidden);
            prop_assert!(assignment.iter().all(|&a| a < result.global_neurons));
        }
        // The aggregated model has the right shape.
        prop_assert_eq!(result.model.dims(), vec![8, result.global_neurons, 3]);
        // And produces finite outputs.
        let x = ofl_tensor::tensor::Tensor::zeros(2, 8);
        prop_assert!(result.model.forward(&x).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn naive_average_is_convex_combination(
        seed in any::<u64>(),
        w1 in 1usize..100,
        w2 in 1usize..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mlp::new(&[4, 5, 2], &mut rng);
        let b = Mlp::new(&[4, 5, 2], &mut rng);
        let avg = average_weights(&[a.clone(), b.clone()], &[w1, w2]).unwrap();
        // Every coordinate lies between the inputs' coordinates.
        for li in 0..avg.layers.len() {
            for (i, &v) in avg.layers[li].weight.data().iter().enumerate() {
                let x = a.layers[li].weight.data()[i];
                let y = b.layers[li].weight.data()[i];
                let (lo, hi) = if x < y { (x, y) } else { (y, x) };
                prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
            }
        }
    }
}
