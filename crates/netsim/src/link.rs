//! Link models: latency + bandwidth cost of moving bytes, with profiles for
//! the paper's "unified campus area network" and a wide-area alternative.

use crate::clock::SimDuration;

/// A point-to-point link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes/second.
    pub bandwidth_bps: f64,
}

impl Link {
    /// Builds a link.
    pub fn new(latency: SimDuration, bandwidth_bps: f64) -> Link {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        Link {
            latency,
            bandwidth_bps,
        }
    }

    /// Time to move `bytes` in one request: latency + serialization.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let serialize = SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps);
        self.latency.saturating_add(serialize)
    }

    /// Time for one request/response round trip moving `request_bytes` out
    /// and `response_bytes` back — the JSON-RPC call pattern a provider
    /// decorator prices with.
    pub fn rpc_round_trip(&self, request_bytes: u64, response_bytes: u64) -> SimDuration {
        self.transfer_time(request_bytes)
            .saturating_add(self.transfer_time(response_bytes))
    }

    /// Time for an exchange of `rounds` request/response round trips moving
    /// `bytes` total (the bitswap fetch pattern).
    pub fn exchange_time(&self, bytes: u64, rounds: usize) -> SimDuration {
        let rtt = SimDuration(self.latency.0 * 2);
        let mut total = SimDuration::ZERO;
        for _ in 0..rounds {
            total = total.saturating_add(rtt);
        }
        total.saturating_add(SimDuration::from_secs_f64(
            bytes as f64 / self.bandwidth_bps,
        ))
    }
}

/// Named network profiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// LAN link between owners/buyers and the IPFS swarm / backend.
    pub lan: Link,
    /// Link to the (remote) blockchain RPC endpoint.
    pub rpc: Link,
}

impl NetworkProfile {
    /// The paper's setting: everything on one campus network (§4.4),
    /// ~0.5 ms LAN latency, 1 Gbit/s; RPC slightly farther (public Sepolia
    /// endpoint), ~50 ms.
    pub fn campus() -> NetworkProfile {
        NetworkProfile {
            lan: Link::new(SimDuration::from_micros(500), 125_000_000.0),
            rpc: Link::new(SimDuration::from_millis(50), 12_500_000.0),
        }
    }

    /// A wide-area profile (owners at home): 30 ms, 50 Mbit/s down.
    pub fn wan() -> NetworkProfile {
        NetworkProfile {
            lan: Link::new(SimDuration::from_millis(30), 6_250_000.0),
            rpc: Link::new(SimDuration::from_millis(80), 6_250_000.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = Link::new(SimDuration::from_millis(1), 1_000_000.0); // 1 MB/s
        let t1 = link.transfer_time(1_000_000);
        assert!((t1.as_secs_f64() - 1.001).abs() < 1e-6);
        let t2 = link.transfer_time(2_000_000);
        assert!(t2 > t1);
        // Latency floor for empty payloads.
        assert_eq!(link.transfer_time(0), SimDuration::from_millis(1));
    }

    #[test]
    fn rpc_round_trip_sums_both_legs() {
        let link = Link::new(SimDuration::from_millis(10), 1_000_000.0); // 1 MB/s
        let t = link.rpc_round_trip(1_000_000, 500_000);
        // 2 × 10 ms latency + 1.5 s serialization.
        assert!((t.as_secs_f64() - 1.52).abs() < 1e-6);
        // A bigger response never makes the round trip faster.
        assert!(link.rpc_round_trip(1_000_000, 600_000) > t);
    }

    #[test]
    fn exchange_counts_round_trips() {
        let link = Link::new(SimDuration::from_millis(10), 1e9);
        let one = link.exchange_time(0, 1);
        let three = link.exchange_time(0, 3);
        assert_eq!(one, SimDuration::from_millis(20));
        assert_eq!(three, SimDuration::from_millis(60));
    }

    #[test]
    fn campus_faster_than_wan() {
        let campus = NetworkProfile::campus();
        let wan = NetworkProfile::wan();
        let model_bytes = 318_064; // the paper's 317 KB model
        assert!(campus.lan.transfer_time(model_bytes) < wan.lan.transfer_time(model_bytes));
        // Campus upload of a model takes a few ms.
        assert!(campus.lan.transfer_time(model_bytes).as_secs_f64() < 0.01);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Link::new(SimDuration::ZERO, 0.0);
    }
}
