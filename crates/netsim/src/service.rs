//! A Flask-like routed service abstraction.
//!
//! The paper's backend is a Flask app the DApp calls for heavy lifting
//! (model aggregation on the buyer's GPU workstation). [`Service`] models
//! that: named routes with handlers, invoked through a [`crate::link::Link`]
//! that charges request/response transfer time to the virtual clock, plus an
//! access log for inspection.

use crate::clock::{SimClock, SimDuration};
use crate::link::Link;
use std::collections::HashMap;

/// A request to a service route.
#[derive(Debug, Clone)]
pub struct Request {
    /// Route path, e.g. `/aggregate`.
    pub path: String,
    /// Opaque payload.
    pub body: Vec<u8>,
}

/// A response from a handler.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP-ish status (200 = ok).
    pub status: u16,
    /// Opaque payload.
    pub body: Vec<u8>,
    /// Simulated server-side processing time (e.g. GPU aggregation).
    pub processing: SimDuration,
}

impl Response {
    /// A 200 response with no processing delay.
    pub fn ok(body: Vec<u8>) -> Response {
        Response {
            status: 200,
            body,
            processing: SimDuration::ZERO,
        }
    }

    /// Attaches a processing time.
    pub fn with_processing(mut self, d: SimDuration) -> Response {
        self.processing = d;
        self
    }

    /// A 404 response.
    pub fn not_found() -> Response {
        Response {
            status: 404,
            body: b"not found".to_vec(),
            processing: SimDuration::ZERO,
        }
    }
}

/// One access-log entry.
#[derive(Debug, Clone)]
pub struct AccessLogEntry {
    /// Route requested.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Total virtual time the call took (network + processing).
    pub duration: SimDuration,
}

type Handler = Box<dyn FnMut(&Request) -> Response>;

/// A routed service reachable over a link.
pub struct Service {
    name: String,
    routes: HashMap<String, Handler>,
    log: Vec<AccessLogEntry>,
}

impl Service {
    /// Creates an empty service.
    pub fn new(name: impl Into<String>) -> Service {
        Service {
            name: name.into(),
            routes: HashMap::new(),
            log: Vec::new(),
        }
    }

    /// Service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a route handler (replacing any previous one).
    pub fn route(
        &mut self,
        path: impl Into<String>,
        handler: impl FnMut(&Request) -> Response + 'static,
    ) {
        self.routes.insert(path.into(), Box::new(handler));
    }

    /// Calls a route through `link`, advancing `clock` by request transfer +
    /// processing + response transfer. Returns the response.
    pub fn call(&mut self, clock: &SimClock, link: &Link, path: &str, body: Vec<u8>) -> Response {
        let started = clock.now();
        let request = Request {
            path: path.to_string(),
            body,
        };
        clock.advance(link.transfer_time(request.body.len() as u64));
        let response = match self.routes.get_mut(path) {
            Some(handler) => handler(&request),
            None => Response::not_found(),
        };
        clock.advance(response.processing);
        clock.advance(link.transfer_time(response.body.len() as u64));
        self.log.push(AccessLogEntry {
            path: path.to_string(),
            status: response.status,
            duration: clock.now().since(started),
        });
        response
    }

    /// The access log.
    pub fn access_log(&self) -> &[AccessLogEntry] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    fn test_link() -> Link {
        Link::new(SimDuration::from_millis(1), 1_000_000.0)
    }

    #[test]
    fn routes_dispatch_and_log() {
        let clock = SimClock::new();
        let mut svc = Service::new("backend");
        svc.route("/ping", |_req| Response::ok(b"pong".to_vec()));
        let resp = svc.call(&clock, &test_link(), "/ping", vec![]);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"pong");
        assert_eq!(svc.access_log().len(), 1);
        assert_eq!(svc.access_log()[0].path, "/ping");
        // Two 1 ms latencies + 4 bytes of payload.
        assert!(clock.elapsed_secs() >= 0.002);
    }

    #[test]
    fn unknown_route_404s() {
        let clock = SimClock::new();
        let mut svc = Service::new("backend");
        let resp = svc.call(&clock, &test_link(), "/nope", vec![]);
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn processing_time_charged() {
        let clock = SimClock::new();
        let mut svc = Service::new("backend");
        svc.route("/slow", |_req| {
            Response::ok(vec![]).with_processing(SimDuration::from_secs(3))
        });
        svc.call(&clock, &test_link(), "/slow", vec![]);
        assert!(clock.elapsed_secs() >= 3.002);
        assert!(svc.access_log()[0].duration >= SimDuration::from_secs(3));
    }

    #[test]
    fn handler_state_mutates() {
        let clock = SimClock::new();
        let mut svc = Service::new("counter");
        let mut count = 0u32;
        svc.route("/inc", move |_req| {
            count += 1;
            Response::ok(count.to_be_bytes().to_vec())
        });
        svc.call(&clock, &test_link(), "/inc", vec![]);
        let resp = svc.call(&clock, &test_link(), "/inc", vec![]);
        assert_eq!(resp.body, 2u32.to_be_bytes());
    }

    #[test]
    fn payload_size_affects_duration() {
        let clock = SimClock::new();
        let mut svc = Service::new("upload");
        svc.route("/put", |_req| Response::ok(vec![]));
        svc.call(&clock, &test_link(), "/put", vec![0u8; 1_000_000]);
        // 1 MB over 1 MB/s plus latencies ≈ 1 s.
        assert!(clock.elapsed_secs() > 1.0);
    }
}
