//! # ofl-netsim
//!
//! Virtual-time infrastructure for the OFL-W3 reproduction:
//!
//! - [`clock`]: a shared microsecond-resolution simulation clock.
//! - [`link`]: latency/bandwidth models with the paper's campus-LAN profile.
//! - [`par`]: a deterministic fork/join executor for per-shard work —
//!   results merge in item order, so parallel runs are bit-identical to
//!   serial ones.
//! - [`sched`]: a discrete-event queue and per-participant timelines — the
//!   substrate of the concurrent session engine.
//! - [`service`]: a Flask-like routed service charged through a link — the
//!   paper's backend-server role.
//! - [`timing`]: phase recorders (the Fig 7 breakdown) and compute models
//!   (the 2×RTX A5000 server as a throughput estimate).
//!
//! Everything runs on virtual time, so minutes of simulated blockchain
//! waiting cost microseconds of real time and results are deterministic.

#![forbid(unsafe_code)]

pub mod clock;
pub mod link;
pub mod par;
pub mod sched;
pub mod service;
pub mod timing;

pub use clock::{SimClock, SimDuration, SimInstant};
pub use link::{Link, NetworkProfile};
pub use par::{fork_join_mut, parallel_enabled, set_parallel};
pub use sched::{EventQueue, Timeline};
pub use service::{Request, Response, Service};
pub use timing::{ComputeModel, PhaseRecorder};
