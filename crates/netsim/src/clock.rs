//! A virtual clock with microsecond resolution.
//!
//! All timing in the OFL-W3 simulator — block intervals, network transfers,
//! GPU-training estimates — advances this clock rather than real time, so a
//! full Fig 7 experiment (minutes of simulated wall clock) runs in
//! milliseconds and is perfectly reproducible.

use std::cell::Cell;
use std::rc::Rc;

/// A duration in virtual microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// From fractional seconds (clamped at zero).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As whole microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl core::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl core::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl core::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

/// An instant on the virtual timeline (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimInstant(pub u64);

impl SimInstant {
    /// Duration since an earlier instant.
    pub fn since(&self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.checked_sub(earlier.0).expect("instant ordering"))
    }
}

/// A shared virtual clock. Cheap to clone; all clones observe the same time.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Rc<Cell<u64>>,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current instant.
    pub fn now(&self) -> SimInstant {
        SimInstant(self.now.get())
    }

    /// Advances time by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.now.set(
            self.now
                .get()
                .checked_add(d.0)
                .expect("virtual clock overflow"),
        );
        ofl_trace::set_vtime(self.now.get());
    }

    /// Advances to an absolute instant (no-op if already past it).
    pub fn advance_to(&self, t: SimInstant) {
        if t.0 > self.now.get() {
            self.now.set(t.0);
        }
        ofl_trace::set_vtime(self.now.get());
    }

    /// Seconds since simulation start.
    pub fn elapsed_secs(&self) -> f64 {
        self.now.get() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimInstant(0));
        clock.advance(SimDuration::from_secs(12));
        assert_eq!(clock.now(), SimInstant(12_000_000));
        clock.advance(SimDuration::from_millis(500));
        assert_eq!(clock.elapsed_secs(), 12.5);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_secs(1));
        assert_eq!(b.now(), SimInstant(1_000_000));
    }

    #[test]
    fn advance_to_never_goes_backward() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(10));
        clock.advance_to(SimInstant(5_000_000));
        assert_eq!(clock.now(), SimInstant(10_000_000));
        clock.advance_to(SimInstant(15_000_000));
        assert_eq!(clock.now(), SimInstant(15_000_000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(2);
        let b = SimDuration::from_millis(500);
        assert_eq!((a + b).as_secs_f64(), 2.5);
        assert_eq!((a - b).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn instant_since() {
        let t0 = SimInstant(100);
        let t1 = SimInstant(350);
        assert_eq!(t1.since(t0), SimDuration(250));
    }
}
