//! Phase timing: the recorder behind the paper's Fig 7 execution-time
//! distribution (owners: train / upload / send-CID; buyers: deploy /
//! download-CIDs / retrieve / aggregate+pay).

use crate::clock::{SimClock, SimDuration, SimInstant};
use std::collections::BTreeMap;

/// Accumulates named phase durations on a virtual clock.
#[derive(Debug, Clone, Default)]
pub struct PhaseRecorder {
    phases: BTreeMap<String, SimDuration>,
    order: Vec<String>,
}

impl PhaseRecorder {
    /// An empty recorder.
    pub fn new() -> PhaseRecorder {
        PhaseRecorder::default()
    }

    /// Adds `duration` to a phase (creating it on first use).
    pub fn add(&mut self, phase: &str, duration: SimDuration) {
        if !self.phases.contains_key(phase) {
            self.order.push(phase.to_string());
        }
        let entry = self.phases.entry(phase.to_string()).or_default();
        *entry = entry.saturating_add(duration);
    }

    /// Runs `f`, charging the elapsed virtual time to `phase`.
    pub fn measure<T>(&mut self, clock: &SimClock, phase: &str, f: impl FnOnce() -> T) -> T {
        let start: SimInstant = clock.now();
        let out = f();
        self.add(phase, clock.now().since(start));
        out
    }

    /// Duration of one phase (zero if absent).
    pub fn get(&self, phase: &str) -> SimDuration {
        self.phases.get(phase).copied().unwrap_or_default()
    }

    /// Total across phases.
    pub fn total(&self) -> SimDuration {
        self.phases
            .values()
            .fold(SimDuration::ZERO, |acc, &d| acc.saturating_add(d))
    }

    /// `(phase, duration, share)` rows in first-use order — the pie chart of
    /// Fig 7.
    pub fn breakdown(&self) -> Vec<(String, SimDuration, f64)> {
        let total = self.total().as_secs_f64().max(1e-12);
        self.order
            .iter()
            .map(|p| {
                let d = self.get(p);
                (p.clone(), d, d.as_secs_f64() / total)
            })
            .collect()
    }

    /// Renders an ASCII table of the breakdown.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("{title}\n");
        for (phase, duration, share) in self.breakdown() {
            out.push_str(&format!(
                "  {:<28} {:>10.3} s  {:>5.1} %\n",
                phase,
                duration.as_secs_f64(),
                share * 100.0
            ));
        }
        out.push_str(&format!(
            "  {:<28} {:>10.3} s  100.0 %\n",
            "total",
            self.total().as_secs_f64()
        ));
        out
    }
}

/// A GPU/CPU compute model: converts work units into virtual time.
/// Calibrated to the paper's 2×RTX A5000 server for local MLP training.
#[derive(Debug, Clone, Copy)]
pub struct ComputeModel {
    /// Training throughput in examples/second (forward+backward, batch 64).
    pub train_examples_per_sec: f64,
    /// Inference throughput in examples/second.
    pub infer_examples_per_sec: f64,
}

impl ComputeModel {
    /// An RTX A5000-class accelerator running the paper's small MLP.
    pub fn rtx_a5000() -> ComputeModel {
        ComputeModel {
            train_examples_per_sec: 250_000.0,
            infer_examples_per_sec: 2_000_000.0,
        }
    }

    /// A laptop-class CPU (model owners without GPUs).
    pub fn laptop_cpu() -> ComputeModel {
        ComputeModel {
            train_examples_per_sec: 25_000.0,
            infer_examples_per_sec: 250_000.0,
        }
    }

    /// Virtual time to train `examples × epochs`.
    pub fn training_time(&self, examples: usize, epochs: usize) -> SimDuration {
        SimDuration::from_secs_f64(examples as f64 * epochs as f64 / self.train_examples_per_sec)
    }

    /// Virtual time to run inference over `examples`.
    pub fn inference_time(&self, examples: usize) -> SimDuration {
        SimDuration::from_secs_f64(examples as f64 / self.infer_examples_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_phases() {
        let mut rec = PhaseRecorder::new();
        rec.add("train", SimDuration::from_secs(3));
        rec.add("upload", SimDuration::from_secs(1));
        rec.add("train", SimDuration::from_secs(2));
        assert_eq!(rec.get("train"), SimDuration::from_secs(5));
        assert_eq!(rec.total(), SimDuration::from_secs(6));
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let mut rec = PhaseRecorder::new();
        rec.add("a", SimDuration::from_secs(1));
        rec.add("b", SimDuration::from_secs(3));
        let rows = rec.breakdown();
        let total_share: f64 = rows.iter().map(|(_, _, s)| s).sum();
        assert!((total_share - 1.0).abs() < 1e-9);
        assert_eq!(rows[0].0, "a"); // first-use order preserved
        assert!((rows[1].2 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn measure_charges_clock_delta() {
        let clock = SimClock::new();
        let mut rec = PhaseRecorder::new();
        let out = rec.measure(&clock, "work", || {
            clock.advance(SimDuration::from_secs(7));
            42
        });
        assert_eq!(out, 42);
        assert_eq!(rec.get("work"), SimDuration::from_secs(7));
    }

    #[test]
    fn render_contains_phases() {
        let mut rec = PhaseRecorder::new();
        rec.add("blockchain wait", SimDuration::from_secs(24));
        let text = rec.render("Owner");
        assert!(text.contains("blockchain wait"));
        assert!(text.contains("100.0 %"));
    }

    #[test]
    fn compute_model_scales() {
        let gpu = ComputeModel::rtx_a5000();
        let cpu = ComputeModel::laptop_cpu();
        // Paper's setup: 6 000 samples × 10 epochs.
        let gpu_t = gpu.training_time(6_000, 10);
        let cpu_t = cpu.training_time(6_000, 10);
        assert!(gpu_t < cpu_t);
        assert!((gpu_t.as_secs_f64() - 0.24).abs() < 0.01);
        assert!(gpu.inference_time(10_000) < SimDuration::from_secs(1));
    }
}
