//! Deterministic fork/join execution for per-shard work.
//!
//! Between slot barriers, each shard of a sharded world is independent:
//! mining, receipt polling, and batched RPC fan-out touch one endpoint's
//! chain and decorators only. [`fork_join_mut`] spreads the items over
//! scoped worker threads and hands every result back **in item order**, so
//! a caller that merges results by index observes exactly what the serial
//! loop produced — the merge order, not the completion order, defines the
//! output. That is the whole determinism contract: a parallel run is
//! bit-identical to a serial run because nothing about thread scheduling
//! can reach the results.
//!
//! Worker count is capped by [`std::thread::available_parallelism`]: the
//! items are split into one contiguous chunk per available core, and a
//! single-core host (or a single-item list) runs inline with no spawns at
//! all — parallelism can never cost more than the serial loop by more than
//! a few spawns per call.
//!
//! Parallelism is a process-wide toggle ([`set_parallel`]) so a bench or a
//! CI job can drive the *same* binary serial and parallel and assert the
//! digests match.
//!
//! ## Safe splitting — why this module needs no `unsafe`
//!
//! The workspace forbids `unsafe` (`#![forbid(unsafe_code)]` on every
//! crate root), and fork/join is the one place that temptation would
//! arise. It never does: items are handed to workers through
//! [`slice::chunks_mut`], which partitions the input into disjoint
//! `&mut` chunks the borrow checker can verify, and
//! [`std::thread::scope`] proves every worker borrow ends before the
//! call returns. Each worker fills its own result slot; the join then
//! drains the slots in item order. Disjointness, lifetime, and ordering
//! are all compiler-checked — no raw pointers, no `split_at_mut`
//! juggling, no `unsafe` escape hatch required.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Process-wide parallelism toggle; workers are used when `true` (the
/// default) and every fork/join degenerates to the serial loop when
/// `false`.
static PARALLEL: AtomicBool = AtomicBool::new(true);

/// Enables or disables worker threads process-wide. Results are
/// bit-identical either way; only wall-clock time changes.
pub fn set_parallel(enabled: bool) {
    PARALLEL.store(enabled, Ordering::SeqCst);
}

/// True when [`fork_join_mut`] may spawn worker threads.
pub fn parallel_enabled() -> bool {
    PARALLEL.load(Ordering::Relaxed)
}

/// Cached [`std::thread::available_parallelism`] (0 = not yet probed).
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The worker cap: the host's available parallelism, probed once.
pub fn max_workers() -> usize {
    match WORKERS.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WORKERS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Runs `f` once per item — on scoped worker threads when parallelism is
/// enabled, the host has more than one core, and there is more than one
/// item; serially inline otherwise — and returns the results **in item
/// order**.
///
/// `f` gets the item's index and exclusive access to the item, so
/// per-shard state (a provider stack, a chain) can be mutated freely;
/// nothing is shared between workers. Items are split into at most
/// [`max_workers`] contiguous chunks, one worker thread per chunk, so a
/// call spawns a bounded number of threads no matter how long the work
/// list is. Worker panics propagate to the caller when the scope joins.
pub fn fork_join_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let workers = max_workers().min(items.len());
    if workers <= 1 || !parallel_enabled() {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    // One pre-sized slot per item: each worker fills the slots of its own
    // chunk, and collection by slot index restores item order no matter
    // how the threads interleave.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (c, (item_chunk, slot_chunk)) in items
            .chunks_mut(chunk)
            .zip(slots.chunks_mut(chunk))
            .enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                for (o, (item, slot)) in item_chunk.iter_mut().zip(slot_chunk).enumerate() {
                    *slot = Some(f(c * chunk + o, item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every worker fills its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order_not_completion_order() {
        // Later items finish first (they sleep less); the merge must still
        // be in item order.
        let mut items: Vec<u64> = (0..8).collect();
        let results = fork_join_mut(&mut items, |i, item| {
            std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
            *item *= 10;
            (i, *item)
        });
        assert_eq!(
            results,
            (0..8).map(|i| (i as usize, i * 10)).collect::<Vec<_>>()
        );
        assert_eq!(items, (0..8).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize, item: &mut u64| -> u64 {
            *item = item
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64);
            *item
        };
        let mut a: Vec<u64> = (0..16).collect();
        let mut b = a.clone();
        // NOTE: drives the executor through both code paths directly
        // instead of flipping the global toggle (other tests run
        // concurrently under the same process-wide switch).
        let serial: Vec<u64> = a.iter_mut().enumerate().map(|(i, x)| work(i, x)).collect();
        let parallel = fork_join_mut(&mut b, work);
        assert_eq!(serial, parallel);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_single_item_lists_run_inline() {
        let mut none: Vec<u8> = Vec::new();
        assert!(fork_join_mut(&mut none, |_, x| *x).is_empty());
        let mut one = vec![7u8];
        assert_eq!(fork_join_mut(&mut one, |i, x| (i, *x)), vec![(0, 7)]);
    }
}
