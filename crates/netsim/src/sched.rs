//! Discrete-event scheduling: the substrate of the concurrent session
//! engine.
//!
//! The serial workflow advanced one global
//! [`SimClock`](crate::clock::SimClock) through every
//! participant's actions in turn, so a 20-owner session took 20× the
//! blockchain time it should. The event queue here lets each actor accrue
//! its own local time on a [`Timeline`] and the world advance to the
//! *earliest pending event* instead: owners train, upload, and submit
//! transactions in overlapping windows, and their transactions land in
//! shared 12-second blocks.
//!
//! Determinism: events firing at the same instant are delivered in the
//! order they were scheduled (a monotone sequence number breaks ties), so
//! a run is a pure function of its inputs.

use crate::clock::{SimDuration, SimInstant};
use ofl_primitives::hotpath::{HotPhase, PhaseTimer};
use std::collections::BinaryHeap;

/// An event queue ordered by firing instant, then by scheduling order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    last_popped: SimInstant,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimInstant,
    seq: u64,
    event: E,
}

// `BinaryHeap` is a max-heap; reverse the ordering so the earliest instant
// (and, at equal instants, the earliest scheduled) pops first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            last_popped: SimInstant(0),
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Schedules `event` to fire at `at`. Scheduling into the past (before
    /// the last popped event) is a logic error and panics, because it would
    /// make virtual time non-monotone.
    pub fn schedule(&mut self, at: SimInstant, event: E) {
        let _t = PhaseTimer::start(HotPhase::Queue);
        assert!(
            at >= self.last_popped,
            "scheduled event at {:?} before current time {:?}",
            at,
            self.last_popped
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, now: SimInstant, delay: SimDuration, event: E) {
        self.schedule(SimInstant(now.0 + delay.0), event);
    }

    /// Removes and returns the earliest event with its firing instant.
    pub fn pop(&mut self) -> Option<(SimInstant, E)> {
        let _t = PhaseTimer::start(HotPhase::Queue);
        let entry = self.heap.pop()?;
        self.last_popped = entry.at;
        Some((entry.at, entry.event))
    }

    /// Firing instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimInstant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One participant's local time. A timeline only moves forward; it tracks
/// when the participant becomes free, independent of the global clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timeline {
    now: SimInstant,
}

impl Timeline {
    /// A timeline starting at `start`.
    pub fn starting_at(start: SimInstant) -> Timeline {
        Timeline { now: start }
    }

    /// The participant's local time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Charges `d` of local work; returns the completion instant.
    pub fn advance(&mut self, d: SimDuration) -> SimInstant {
        self.now = SimInstant(self.now.0 + d.0);
        self.now
    }

    /// Moves local time forward to `t` (no-op if already past it) — e.g.
    /// when the participant was blocked waiting for a shared resource.
    pub fn advance_to(&mut self, t: SimInstant) -> SimInstant {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant(30), "c");
        q.schedule(SimInstant(10), "a");
        q.schedule(SimInstant(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimInstant(10), "a")));
        assert_eq!(q.pop(), Some((SimInstant(20), "b")));
        assert_eq!(q.pop(), Some((SimInstant(30), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_keep_schedule_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimInstant(5), label);
        }
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn ten_thousand_same_instant_events_pop_in_schedule_order() {
        // Fleet-scale slot barriers put thousands of owner events on the
        // same SimInstant; tie-breaking by sequence number must hold at
        // that density, not just for three events.
        let mut q = EventQueue::new();
        for i in 0..10_000u32 {
            q.schedule(SimInstant(42), i);
        }
        assert_eq!(q.len(), 10_000);
        for expect in 0..10_000u32 {
            let (at, got) = q.pop().unwrap();
            assert_eq!(at, SimInstant(42));
            assert_eq!(got, expect);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimInstant(100), SimDuration(50), "x");
        assert_eq!(q.peek_time(), Some(SimInstant(150)));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant(10), "a");
        q.pop();
        q.schedule(SimInstant(5), "late");
    }

    #[test]
    fn timeline_accrues_local_time() {
        let mut t = Timeline::default();
        assert_eq!(t.now(), SimInstant(0));
        assert_eq!(t.advance(SimDuration::from_secs(3)), SimInstant(3_000_000));
        // Blocked until t=10s.
        assert_eq!(t.advance_to(SimInstant(10_000_000)), SimInstant(10_000_000));
        // advance_to never rewinds.
        assert_eq!(t.advance_to(SimInstant(1)), SimInstant(10_000_000));
    }

    #[test]
    fn timelines_are_independent() {
        let mut a = Timeline::default();
        let mut b = Timeline::starting_at(SimInstant(500));
        a.advance(SimDuration(100));
        assert_eq!(a.now(), SimInstant(100));
        assert_eq!(b.now(), SimInstant(500));
        b.advance(SimDuration(1));
        assert_eq!(b.now(), SimInstant(501));
    }
}
