//! Property-based tests for the virtual-time substrate: the clock only
//! moves forward, link timing is ordered the way physics says it must be,
//! services respond deterministically, and phase accounting balances.

use ofl_netsim::clock::{SimClock, SimDuration, SimInstant};
use ofl_netsim::link::{Link, NetworkProfile};
use ofl_netsim::sched::EventQueue;
use ofl_netsim::service::{Response, Service};
use ofl_netsim::timing::{ComputeModel, PhaseRecorder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clock_is_monotone_under_any_advance_sequence(
        steps in proptest::collection::vec(0u64..10_000_000, 1..40),
    ) {
        let clock = SimClock::new();
        let mut last = clock.now();
        let mut total = 0u64;
        for &us in &steps {
            clock.advance(SimDuration::from_micros(us));
            total += us;
            let now = clock.now();
            prop_assert!(now >= last, "clock went backwards");
            last = now;
        }
        prop_assert_eq!(last, SimInstant(total));
        prop_assert!((clock.elapsed_secs() - total as f64 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn advance_to_is_a_lower_bound_only(
        forward in 0u64..1_000_000,
        target in 0u64..2_000_000,
    ) {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_micros(forward));
        clock.advance_to(SimInstant(target));
        prop_assert_eq!(clock.now(), SimInstant(forward.max(target)));
    }

    #[test]
    fn clock_clones_observe_the_same_time(
        a_steps in proptest::collection::vec(0u64..100_000, 0..10),
        b_steps in proptest::collection::vec(0u64..100_000, 0..10),
    ) {
        let a = SimClock::new();
        let b = a.clone();
        for &us in &a_steps {
            a.advance(SimDuration::from_micros(us));
        }
        for &us in &b_steps {
            b.advance(SimDuration::from_micros(us));
        }
        prop_assert_eq!(a.now(), b.now());
    }

    #[test]
    fn duration_seconds_roundtrip(us in 0u64..u64::MAX / 2) {
        let d = SimDuration::from_micros(us);
        let rebuilt = SimDuration::from_secs_f64(d.as_secs_f64());
        // from_secs_f64 goes through f64; tolerate its quantization.
        let err = rebuilt.as_micros().abs_diff(us);
        prop_assert!(err as f64 <= 1.0 + us as f64 * 1e-9, "err {err} at {us}");
    }

    #[test]
    fn transfer_time_monotone_in_bytes_and_latency(
        latency_us in 0u64..1_000_000,
        extra_latency_us in 1u64..1_000_000,
        bandwidth in 1_000.0f64..1e10,
        bytes in 0u64..100_000_000,
        extra_bytes in 1u64..100_000_000,
    ) {
        let link = Link::new(SimDuration::from_micros(latency_us), bandwidth);
        let slower = Link::new(
            SimDuration::from_micros(latency_us + extra_latency_us),
            bandwidth,
        );
        // More bytes on the same link never arrive sooner.
        prop_assert!(link.transfer_time(bytes + extra_bytes) >= link.transfer_time(bytes));
        // Same payload over higher latency never arrives sooner.
        prop_assert!(slower.transfer_time(bytes) >= link.transfer_time(bytes));
        // Latency is a hard floor.
        prop_assert!(link.transfer_time(bytes) >= SimDuration::from_micros(latency_us));
    }

    #[test]
    fn exchange_time_monotone_in_rounds(
        latency_us in 1u64..100_000,
        bandwidth in 1_000.0f64..1e9,
        bytes in 0u64..1_000_000,
        rounds in 1usize..20,
    ) {
        let link = Link::new(SimDuration::from_micros(latency_us), bandwidth);
        let t1 = link.exchange_time(bytes, rounds);
        let t2 = link.exchange_time(bytes, rounds + 1);
        // One more round trip costs exactly one more RTT.
        prop_assert_eq!(
            t2 - t1,
            SimDuration::from_micros(2 * latency_us)
        );
        prop_assert!(t1 >= link.transfer_time(bytes) || latency_us == 0);
    }

    #[test]
    fn campus_beats_wan_for_any_payload(bytes in 0u64..10_000_000) {
        let campus = NetworkProfile::campus();
        let wan = NetworkProfile::wan();
        prop_assert!(campus.lan.transfer_time(bytes) <= wan.lan.transfer_time(bytes));
    }

    #[test]
    fn service_responses_and_timing_are_deterministic(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        processing_us in 0u64..5_000_000,
        latency_us in 1u64..100_000,
    ) {
        let run = || {
            let clock = SimClock::new();
            let link = Link::new(SimDuration::from_micros(latency_us), 1e6);
            let mut service = Service::new("backend");
            let processing = SimDuration::from_micros(processing_us);
            service.route("/echo", move |req| {
                Response::ok(req.body.clone()).with_processing(processing)
            });
            let response = service.call(&clock, &link, "/echo", payload.clone());
            (response.status, response.body, clock.now(), service.access_log().len())
        };
        let (status_a, body_a, t_a, log_a) = run();
        let (status_b, body_b, t_b, log_b) = run();
        prop_assert_eq!(status_a, 200u16);
        prop_assert_eq!(&body_a, &payload);
        prop_assert_eq!(status_a, status_b);
        prop_assert_eq!(body_a, body_b);
        prop_assert_eq!(t_a, t_b);
        prop_assert_eq!(log_a, log_b);
        // Two link traversals plus processing are all charged.
        prop_assert!(
            t_a >= SimInstant(2 * latency_us + processing_us),
            "call under-charged the clock"
        );
    }

    #[test]
    fn unknown_routes_404_without_processing_charge(
        path in "/[a-z]{1,12}",
        latency_us in 1u64..10_000,
    ) {
        let clock = SimClock::new();
        let link = Link::new(SimDuration::from_micros(latency_us), 1e9);
        let mut service = Service::new("empty");
        let response = service.call(&clock, &link, &path, vec![]);
        prop_assert_eq!(response.status, 404u16);
        prop_assert_eq!(service.access_log().len(), 1);
    }

    #[test]
    fn phase_recorder_breakdown_is_a_distribution(
        durations in proptest::collection::vec((0usize..4, 1u64..1_000_000), 1..30),
    ) {
        let phases = ["train", "upload", "send", "wait"];
        let mut recorder = PhaseRecorder::new();
        let mut total = 0u64;
        for &(which, us) in &durations {
            recorder.add(phases[which], SimDuration::from_micros(us));
            total += us;
        }
        prop_assert_eq!(recorder.total(), SimDuration::from_micros(total));
        let rows = recorder.breakdown();
        let share_sum: f64 = rows.iter().map(|(_, _, share)| share).sum();
        prop_assert!((share_sum - 1.0).abs() < 1e-9);
        // Per-phase sums match a straight fold.
        for (index, name) in phases.iter().enumerate() {
            let expect: u64 = durations
                .iter()
                .filter(|&&(w, _)| w == index)
                .map(|&(_, us)| us)
                .sum();
            prop_assert_eq!(recorder.get(name), SimDuration::from_micros(expect));
        }
    }

    #[test]
    fn event_queue_matches_a_model_stable_sort(
        delays in proptest::collection::vec(0u64..16, 1..400),
    ) {
        // Model: a stable sort by firing instant. The tight delay range
        // forces dense same-instant collisions so the tie-break (schedule
        // order) is what's actually under test. Instants are cumulative
        // maxima so nothing schedules into the popped past.
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, usize)> = Vec::new();
        let mut at = 0u64;
        for (i, &d) in delays.iter().enumerate() {
            at += d;
            q.schedule(SimInstant(at), i);
            model.push((at, i));
        }
        model.sort_by_key(|&(at, _)| at); // stable: preserves schedule order
        for &(expect_at, expect_event) in &model {
            let (got_at, got_event) = q.pop().expect("queue drained early");
            prop_assert_eq!(got_at, SimInstant(expect_at));
            prop_assert_eq!(got_event, expect_event);
        }
        prop_assert!(q.is_empty());
    }

    #[test]
    fn compute_time_scales_with_work(
        examples in 1usize..1_000_000,
        extra in 1usize..1_000_000,
        epochs in 1usize..50,
    ) {
        for model in [ComputeModel::rtx_a5000(), ComputeModel::laptop_cpu()] {
            let base = model.training_time(examples, epochs);
            prop_assert!(model.training_time(examples + extra, epochs) >= base);
            prop_assert!(model.training_time(examples, epochs + 1) >= base);
            prop_assert!(model.inference_time(examples) <= base);
        }
    }
}
