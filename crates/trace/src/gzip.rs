//! Minimal, dependency-free gzip writer/reader for trace artifacts.
//!
//! Writes RFC 1952 gzip around RFC 1951 *stored* (uncompressed) DEFLATE
//! blocks, with `MTIME = 0` so the artifact is byte-deterministic — the
//! same JSONL always gzips to the same bytes. The reader inflates only
//! stored blocks (all this workspace ever writes); Huffman-coded input is
//! rejected with an error rather than misparsed. Standard tools (`gunzip`,
//! Python's `gzip`) read these files fine.

/// CRC-32 (IEEE 802.3, the gzip polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for (n, slot) in table.iter_mut().enumerate() {
        let mut c = n as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *slot = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Wraps `data` in a deterministic gzip container (stored blocks,
/// `MTIME = 0`, unknown OS).
pub fn gzip_stored(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 64);
    // Header: magic, CM=deflate, FLG=0, MTIME=0 (determinism), XFL=0, OS=255.
    out.extend_from_slice(&[0x1F, 0x8B, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xFF]);
    let mut chunks = data.chunks(0xFFFF).peekable();
    if data.is_empty() {
        // A final empty stored block keeps the stream well-formed.
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xFF, 0xFF]);
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = if chunks.peek().is_none() { 1u8 } else { 0u8 };
        out.push(bfinal); // BTYPE=00 (stored) in bits 1-2
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

fn take<'a>(data: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], String> {
    let end = at.checked_add(n).filter(|&e| e <= data.len());
    match end {
        Some(end) => {
            let slice = &data[*at..end];
            *at = end;
            Ok(slice)
        }
        None => Err(format!("gzip: truncated at byte {at}")),
    }
}

/// Decompresses a gzip stream produced by [`gzip_stored`] (or any gzip
/// stream that uses only stored DEFLATE blocks). Verifies CRC and length.
pub fn gunzip_stored(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut at = 0usize;
    let header = take(data, &mut at, 10)?;
    if header[0] != 0x1F || header[1] != 0x8B {
        return Err("gzip: bad magic".into());
    }
    if header[2] != 0x08 {
        return Err(format!(
            "gzip: unsupported compression method {}",
            header[2]
        ));
    }
    let flg = header[3];
    if flg & 0x04 != 0 {
        // FEXTRA
        let xlen = take(data, &mut at, 2)?;
        let xlen = u16::from_le_bytes([xlen[0], xlen[1]]) as usize;
        take(data, &mut at, xlen)?;
    }
    for bit in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings
        if flg & bit != 0 {
            while *take(data, &mut at, 1)?.first().unwrap_or(&0) != 0 {}
        }
    }
    if flg & 0x02 != 0 {
        take(data, &mut at, 2)?; // FHCRC
    }
    let mut out = Vec::new();
    loop {
        let block = take(data, &mut at, 1)?[0];
        if block >> 1 & 0x03 != 0 {
            return Err("gzip: Huffman-coded block; only stored blocks supported".into());
        }
        let lens = take(data, &mut at, 4)?;
        let len = u16::from_le_bytes([lens[0], lens[1]]);
        let nlen = u16::from_le_bytes([lens[2], lens[3]]);
        if len != !nlen {
            return Err("gzip: stored-block length check failed".into());
        }
        out.extend_from_slice(take(data, &mut at, len as usize)?);
        if block & 1 != 0 {
            break;
        }
    }
    let footer = take(data, &mut at, 8)?;
    let crc = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
    let isize_ = u32::from_le_bytes([footer[4], footer[5], footer[6], footer[7]]);
    if crc != crc32(&out) {
        return Err("gzip: CRC mismatch".into());
    }
    if isize_ != out.len() as u32 {
        return Err("gzip: ISIZE mismatch".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_is_deterministic() {
        for payload in [
            b"".to_vec(),
            b"hello trace\n".to_vec(),
            vec![0xABu8; 200_000], // spans multiple stored blocks
        ] {
            let gz = gzip_stored(&payload);
            assert_eq!(
                gz,
                gzip_stored(&payload),
                "gzip output must be deterministic"
            );
            assert_eq!(gunzip_stored(&gz).expect("round trip"), payload);
        }
    }

    #[test]
    fn known_crc_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn rejects_corruption() {
        let mut gz = gzip_stored(b"payload");
        let last = gz.len() - 9; // a payload byte, not the footer
        gz[last] ^= 0xFF;
        assert!(gunzip_stored(&gz).unwrap_err().contains("CRC"));
        assert!(gunzip_stored(b"\x1f\x8b")
            .unwrap_err()
            .contains("truncated"));
        assert!(gunzip_stored(b"no magic here!")
            .unwrap_err()
            .contains("magic"));
    }

    #[test]
    fn rejects_huffman_blocks() {
        // Header + a block byte with BTYPE=01 (fixed Huffman).
        let mut gz = vec![0x1F, 0x8B, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xFF];
        gz.push(0x03); // BFINAL=1, BTYPE=01
        assert!(gunzip_stored(&gz).unwrap_err().contains("Huffman"));
    }
}
