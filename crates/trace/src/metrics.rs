//! Process-wide metrics registry: counters, gauges, and fixed-bucket
//! histograms, iterated in name order.
//!
//! Unlike the tracer (installed per run), the registry is always on —
//! updates are a mutex + `BTreeMap` probe, cheap at the call rates of the
//! instrumented sites (slot boundaries, session lifecycle, queue drains;
//! never per-byte loops). Name ordering makes every snapshot
//! deterministic, so metrics can ride the wire (`Frame::StatsReply`)
//! without a canonicalization step. Metrics are *observability* state:
//! nothing in a digest or report may read them back.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// One registered metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Monotonic counter.
    Counter(u64),
    /// Last-write-wins signed gauge.
    Gauge(i64),
    /// Histogram over fixed bucket upper bounds (first registration of a
    /// name wins the bounds; `counts` has one extra overflow slot).
    Histogram {
        /// Inclusive upper bounds, ascending.
        bounds: Vec<u64>,
        /// Observation counts per bound, plus a final +inf slot.
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
    },
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn registry() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Adds `delta` to counter `name`, creating it at zero first.
pub fn counter_add(name: &str, delta: u64) {
    let mut reg = registry();
    match reg.get_mut(name) {
        Some(Metric::Counter(v)) => *v = v.saturating_add(delta),
        Some(_) => {} // name registered as another kind: first kind wins
        None => {
            reg.insert(name.to_string(), Metric::Counter(delta));
        }
    }
}

/// Sets gauge `name` to `value`.
pub fn gauge_set(name: &str, value: i64) {
    let mut reg = registry();
    match reg.get_mut(name) {
        Some(Metric::Gauge(v)) => *v = value,
        Some(_) => {}
        None => {
            reg.insert(name.to_string(), Metric::Gauge(value));
        }
    }
}

/// Adds `delta` (may be negative) to gauge `name`.
pub fn gauge_add(name: &str, delta: i64) {
    let mut reg = registry();
    match reg.get_mut(name) {
        Some(Metric::Gauge(v)) => *v = v.saturating_add(delta),
        Some(_) => {}
        None => {
            reg.insert(name.to_string(), Metric::Gauge(delta));
        }
    }
}

/// Records `value` into histogram `name` with the given bucket upper
/// bounds (used only on first registration).
pub fn observe(name: &str, value: u64, bounds: &[u64]) {
    let mut reg = registry();
    let metric = reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        });
    if let Metric::Histogram {
        bounds,
        counts,
        count,
        sum,
    } = metric
    {
        let slot = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        counts[slot] += 1;
        *count += 1;
        *sum = sum.saturating_add(value);
    }
}

/// A name-ordered copy of every metric.
pub fn snapshot() -> Vec<(String, Metric)> {
    registry()
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// A name-ordered flat `(name, u64)` view, the shape `Frame::StatsReply`
/// carries: counters verbatim, gauges clamped at zero, histograms
/// exploded into `name.count` / `name.sum` / `name.le_<bound>` /
/// `name.le_inf` rows.
pub fn snapshot_flat() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (name, metric) in registry().iter() {
        match metric {
            Metric::Counter(v) => out.push((name.clone(), *v)),
            Metric::Gauge(v) => out.push((name.clone(), (*v).max(0) as u64)),
            Metric::Histogram {
                bounds,
                counts,
                count,
                sum,
            } => {
                out.push((format!("{name}.count"), *count));
                out.push((format!("{name}.sum"), *sum));
                for (b, c) in bounds.iter().zip(counts.iter()) {
                    out.push((format!("{name}.le_{b}"), *c));
                }
                out.push((format!("{name}.le_inf"), counts[bounds.len()]));
            }
        }
    }
    out
}

/// Reads one metric (tests and in-process consumers).
pub fn get(name: &str) -> Option<Metric> {
    registry().get(name).cloned()
}

/// Clears the registry. Sequential runs in one process (benches, tests)
/// call this between runs so snapshots don't bleed across.
pub fn reset() {
    registry().clear();
}

/// Removes metrics whose name starts with `prefix` (a run tearing down
/// its own instruments without clobbering unrelated subsystems).
pub fn reset_prefix(prefix: &str) {
    registry().retain(|k, _| !k.starts_with(prefix));
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialize tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_gauges_and_order() {
        let _g = LOCK.lock().unwrap();
        reset();
        counter_add("z.frames", 2);
        counter_add("z.frames", 3);
        gauge_set("a.depth", 7);
        gauge_add("a.depth", -2);
        gauge_add("a.fresh", -4);
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.depth", "a.fresh", "z.frames"], "name order");
        assert_eq!(get("z.frames"), Some(Metric::Counter(5)));
        assert_eq!(get("a.depth"), Some(Metric::Gauge(5)));
        assert_eq!(get("a.fresh"), Some(Metric::Gauge(-4)));
        reset();
    }

    #[test]
    fn histogram_buckets_and_flat_view() {
        let _g = LOCK.lock().unwrap();
        reset();
        for v in [1, 5, 5, 6, 100] {
            observe("h.lat", v, &[5, 50]);
        }
        gauge_set("neg", -3);
        let flat = snapshot_flat();
        assert_eq!(
            flat,
            vec![
                ("h.lat.count".to_string(), 5),
                ("h.lat.sum".to_string(), 117),
                ("h.lat.le_5".to_string(), 3),
                ("h.lat.le_50".to_string(), 1),
                ("h.lat.le_inf".to_string(), 1),
                ("neg".to_string(), 0),
            ]
        );
        reset();
    }

    #[test]
    fn kind_conflicts_keep_first_registration() {
        let _g = LOCK.lock().unwrap();
        reset();
        counter_add("k", 1);
        gauge_set("k", 99);
        gauge_add("k", 1);
        assert_eq!(get("k"), Some(Metric::Counter(1)));
        reset();
    }

    #[test]
    fn reset_prefix_is_scoped() {
        let _g = LOCK.lock().unwrap();
        reset();
        counter_add("sub.a", 1);
        counter_add("sub.b", 1);
        counter_add("other", 1);
        reset_prefix("sub.");
        let names: Vec<String> = snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["other"]);
        reset();
    }
}
