//! Trace alignment: turns "the digests differ" into "the first divergent
//! event is …". Backs the `ofl-trace-diff` binary and the determinism
//! regression tests.
//!
//! Two JSONL traces from same-seed runs must be byte-identical; when they
//! are not, the interesting datum is the *first* line where they part ways
//! — everything after it is cascade. Alignment skips `{"meta":…}` header
//! lines (their event counts differ trivially once streams diverge) and
//! compares event lines positionally.

use crate::gzip::gunzip_stored;

/// Where two traces first part ways.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based line number in the left file (original, pre-filter).
    pub line_a: usize,
    /// 1-based line number in the right file.
    pub line_b: usize,
    /// The left line, or `"<end of trace>"` when the left file ran out.
    pub a: String,
    /// The right line, or `"<end of trace>"`.
    pub b: String,
}

/// Result of aligning two traces: `None` means identical event streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffReport {
    /// First divergent event pair, if any.
    pub divergence: Option<Divergence>,
    /// Event lines compared (excludes meta lines).
    pub compared: usize,
}

fn is_meta(line: &str) -> bool {
    line.starts_with("{\"meta\":")
}

/// Aligns two JSONL traces and reports the first divergent event line.
pub fn diff_jsonl(a: &str, b: &str) -> DiffReport {
    let left = a
        .lines()
        .enumerate()
        .filter(|(_, l)| !is_meta(l) && !l.is_empty());
    let mut right = b
        .lines()
        .enumerate()
        .filter(|(_, l)| !is_meta(l) && !l.is_empty());
    let mut compared = 0usize;
    for (la, eva) in left {
        match right.next() {
            Some((lb, evb)) => {
                if eva != evb {
                    return DiffReport {
                        divergence: Some(Divergence {
                            line_a: la + 1,
                            line_b: lb + 1,
                            a: eva.to_string(),
                            b: evb.to_string(),
                        }),
                        compared,
                    };
                }
                compared += 1;
            }
            None => {
                return DiffReport {
                    divergence: Some(Divergence {
                        line_a: la + 1,
                        line_b: b.lines().count() + 1,
                        a: eva.to_string(),
                        b: "<end of trace>".to_string(),
                    }),
                    compared,
                };
            }
        }
    }
    if let Some((lb, evb)) = right.next() {
        return DiffReport {
            divergence: Some(Divergence {
                line_a: a.lines().count() + 1,
                line_b: lb + 1,
                a: "<end of trace>".to_string(),
                b: evb.to_string(),
            }),
            compared,
        };
    }
    DiffReport {
        divergence: None,
        compared,
    }
}

/// Decodes trace file bytes: transparently gunzips `.jsonl.gz` artifacts
/// (detected by magic, not extension) and validates UTF-8.
pub fn decode_trace_bytes(raw: &[u8]) -> Result<String, String> {
    let plain = if raw.starts_with(&[0x1F, 0x8B]) {
        gunzip_stored(raw)?
    } else {
        raw.to_vec()
    };
    String::from_utf8(plain).map_err(|e| format!("trace is not UTF-8: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gzip::gzip_stored;

    const META: &str = "{\"meta\":{\"format\":\"ofl-trace/1\",\"events\":2,\"dropped\":0}}\n";

    #[test]
    fn identical_traces_have_no_divergence() {
        let t = format!("{META}{{\"ts\":1}}\n{{\"ts\":2}}\n");
        let report = diff_jsonl(&t, &t);
        assert_eq!(report.divergence, None);
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn meta_lines_are_ignored_in_alignment() {
        let a = format!("{META}{{\"ts\":1}}\n");
        let b = "{\"meta\":{\"format\":\"ofl-trace/1\",\"events\":1,\"dropped\":7}}\n{\"ts\":1}\n";
        assert_eq!(diff_jsonl(&a, b).divergence, None);
    }

    #[test]
    fn first_divergent_line_is_reported() {
        let a = format!("{META}{{\"ts\":1}}\n{{\"ts\":2}}\n{{\"ts\":9}}\n");
        let b = format!("{META}{{\"ts\":1}}\n{{\"ts\":3}}\n{{\"ts\":9}}\n");
        let report = diff_jsonl(&a, &b);
        let d = report.divergence.expect("diverges");
        assert_eq!((d.line_a, d.line_b), (3, 3));
        assert_eq!(d.a, "{\"ts\":2}");
        assert_eq!(d.b, "{\"ts\":3}");
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn truncation_is_a_divergence() {
        let a = format!("{META}{{\"ts\":1}}\n{{\"ts\":2}}\n");
        let b = format!("{META}{{\"ts\":1}}\n");
        let d = diff_jsonl(&a, &b).divergence.expect("diverges");
        assert_eq!(d.b, "<end of trace>");
        let d = diff_jsonl(&b, &a).divergence.expect("diverges");
        assert_eq!(d.a, "<end of trace>");
    }

    #[test]
    fn decode_handles_plain_and_gzipped() {
        let text = "{\"ts\":1}\n";
        assert_eq!(decode_trace_bytes(text.as_bytes()).unwrap(), text);
        let gz = gzip_stored(text.as_bytes());
        assert_eq!(decode_trace_bytes(&gz).unwrap(), text);
        assert!(decode_trace_bytes(&[0x1F, 0x8B, 0xFF]).is_err());
    }
}
