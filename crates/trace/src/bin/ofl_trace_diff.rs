//! `ofl-trace-diff` — align two trace files and report the first divergent
//! event.
//!
//! ```text
//! ofl-trace-diff <left.jsonl[.gz]> <right.jsonl[.gz]>
//! ```
//!
//! Exit codes: `0` identical event streams, `1` divergence found (the
//! first divergent pair is printed), `2` usage or I/O error. Gzip'd
//! traces (as written by `bench_fleet --trace`) are decoded transparently.

#![forbid(unsafe_code)]

use ofl_trace::diff::{decode_trace_bytes, diff_jsonl};
use std::process::ExitCode;

fn load(path: &str) -> Result<String, String> {
    let raw = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    decode_trace_bytes(&raw).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [left_path, right_path] = match args.as_slice() {
        [a, b] => [a.clone(), b.clone()],
        _ => {
            eprintln!("usage: ofl-trace-diff <left.jsonl[.gz]> <right.jsonl[.gz]>");
            return ExitCode::from(2);
        }
    };
    let (left, right) = match (load(&left_path), load(&right_path)) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("ofl-trace-diff: {e}");
            return ExitCode::from(2);
        }
    };
    let report = diff_jsonl(&left, &right);
    match report.divergence {
        None => {
            println!("traces identical: {} events compared", report.compared);
            ExitCode::SUCCESS
        }
        Some(d) => {
            println!("traces diverge after {} matching events:", report.compared);
            println!("  {left_path}:{}", d.line_a);
            println!("    {}", d.a);
            println!("  {right_path}:{}", d.line_b);
            println!("    {}", d.b);
            ExitCode::from(1)
        }
    }
}
