//! Trace exporters: deterministic JSONL (the byte-reproducible format the
//! regression tests pin) and Chrome-trace JSON (`chrome://tracing` /
//! Perfetto).
//!
//! The JSONL exporter contains **no wall-clock data** — its output is a
//! pure function of the event stream, so two same-seed runs produce
//! byte-identical files. The Chrome exporter stamps export metadata with
//! the real time (it is a human-facing visualization artifact, not a
//! determinism surface); that stamp is this workspace's single sanctioned
//! wall-clock read outside bench code.

use crate::{EventKind, FieldValue, TraceEvent};

/// A finished, merged, `(ts, source, seq)`-ordered trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in deterministic order.
    pub events: Vec<TraceEvent>,
    /// Events lost to lane-ring overflow (0 in any healthy run; the
    /// determinism tests assert on it).
    pub dropped: u64,
}

/// Renders a merged trace to one of the export formats.
pub trait TraceSink {
    /// Serializes the trace.
    fn export(&self, trace: &Trace) -> String;
}

/// The deterministic JSONL format: one meta line, then one event per line.
pub struct JsonlSink;

/// The Chrome-trace format (open via `chrome://tracing` or
/// <https://ui.perfetto.dev>).
pub struct ChromeSink;

impl TraceSink for JsonlSink {
    fn export(&self, trace: &Trace) -> String {
        trace.to_jsonl()
    }
}

impl TraceSink for ChromeSink {
    fn export(&self, trace: &Trace) -> String {
        trace.to_chrome_trace()
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_fields(fields: &[(&'static str, FieldValue)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape(k, out);
        out.push(':');
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::I64(n) => out.push_str(&n.to_string()),
            FieldValue::Str(s) => json_escape(s, out),
        }
    }
    out.push('}');
}

impl Trace {
    /// Deterministic JSONL: line 1 is a `{"meta":...}` header (format tag,
    /// event count, drop count — all seed-determined), each further line
    /// one event. Byte-identical across same-seed runs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str(&format!(
            "{{\"meta\":{{\"format\":\"ofl-trace/1\",\"events\":{},\"dropped\":{}}}}}\n",
            self.events.len(),
            self.dropped
        ));
        for ev in &self.events {
            out.push_str(&format!(
                "{{\"ts\":{},\"src\":{},\"seq\":{},\"cat\":\"{}\",\"kind\":\"{}\",\"name\":",
                ev.ts_us,
                ev.source,
                ev.seq,
                ev.cat.label(),
                ev.kind.code()
            ));
            json_escape(ev.name, &mut out);
            out.push_str(",\"fields\":");
            push_fields(&ev.fields, &mut out);
            out.push_str("}\n");
        }
        out
    }

    /// Chrome-trace JSON. Spans map to `B`/`E` phase pairs, instants to
    /// `i`; `tid` is the stable source id, `ts` is virtual microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let exported_unix_ms = std::time::SystemTime::now() // lint: wall-clock-ok(export-metadata stamp on the human-facing Chrome artifact; never emitted into JSONL)
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut out = String::with_capacity(64 + self.events.len() * 128);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ph = match ev.kind {
                EventKind::Instant => "i",
                EventKind::Begin => "B",
                EventKind::End => "E",
            };
            out.push_str("{\"name\":");
            json_escape(ev.name, &mut out);
            out.push_str(&format!(
                ",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                ev.cat.label(),
                ph,
                ev.ts_us,
                ev.source
            ));
            if ev.kind == EventKind::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"args\":");
            push_fields(&ev.fields, &mut out);
            out.push('}');
        }
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"metadata\":{{\"exporter\":\"ofl-trace/1\",\"clock\":\"virtual-us\",\"exported_unix_ms\":{exported_unix_ms}}}}}"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Category;

    fn sample() -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    ts_us: 1,
                    source: 0,
                    seq: 0,
                    cat: Category::Engine,
                    kind: EventKind::Begin,
                    name: "dispatch",
                    fields: vec![
                        ("m", FieldValue::U64(2)),
                        ("tag", FieldValue::Str("a\"b".into())),
                    ],
                },
                TraceEvent {
                    ts_us: 3,
                    source: 1,
                    seq: 0,
                    cat: Category::Provider,
                    kind: EventKind::Instant,
                    name: "flaky.drop",
                    fields: vec![("delta", FieldValue::I64(-4))],
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn jsonl_is_deterministic_and_escaped() {
        let t = sample();
        let a = t.to_jsonl();
        let b = t.to_jsonl();
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"meta\":{\"format\":\"ofl-trace/1\",\"events\":2,\"dropped\":0}}"
        );
        assert!(lines[1].contains("\"tag\":\"a\\\"b\""));
        assert!(lines[2].contains("\"delta\":-4"));
        assert!(lines[2].contains("\"cat\":\"provider\""));
    }

    #[test]
    fn chrome_trace_has_span_pairs_and_metadata() {
        let out = sample().to_chrome_trace();
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"B\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"clock\":\"virtual-us\""));
        assert!(out.contains("\"exported_unix_ms\":"));
    }

    #[test]
    fn sinks_delegate_to_the_formats() {
        let t = sample();
        assert_eq!(JsonlSink.export(&t), t.to_jsonl());
        // Chrome export stamps wall time; compare the deterministic prefix.
        let a = ChromeSink.export(&t);
        assert!(a.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut s = String::new();
        json_escape("a\u{1}b", &mut s);
        assert_eq!(s, "\"a\\u0001b\"");
    }
}
