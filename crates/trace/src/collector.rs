//! The off-thread collector: per-source ring buffers drained by a
//! dedicated collector thread, merged deterministically at the end.
//!
//! Workers (the engine thread, shard-executor workers, daemon sessions)
//! append events to one of a fixed set of lanes — a short per-lane lock,
//! never contended by more than a handful of sources. A collector thread
//! wakes when a lane fills past a threshold and sweeps everything into the
//! central store, so steady-state aggregation costs the hot threads
//! nothing. [`Tracer::flush`] sweeps synchronously (no event recorded
//! before the call can be lost), and [`Tracer::finish`] shuts the thread
//! down, performs a final sweep, and sorts the merged stream by
//! `(ts_us, source, seq)` — a total order that is a pure function of the
//! simulation, not of thread scheduling.

use crate::sink::Trace;
use crate::{Recorder, TraceEvent};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Number of independently locked buffers. Sources hash to lanes by
/// `source % LANES`; 16 keeps contention negligible for fleets of a few
/// dozen shards without allocating per-source.
const LANES: usize = 16;

/// Ring capacity per lane. Past this the lane drops (and counts) events
/// rather than growing without bound — a stalled collector must not OOM
/// the engine.
const LANE_CAP: usize = 1 << 20;

/// The collector wakes the drain thread every time a lane grows past a
/// multiple of this many events.
const DRAIN_BATCH: usize = 4096;

#[derive(Default)]
struct Lane {
    events: Vec<TraceEvent>,
    /// Per-source sequence counters. A source is only ever touched by one
    /// thread at a time, so its sequence reflects program order — the same
    /// under serial and parallel execution.
    seqs: BTreeMap<u32, u64>,
}

#[derive(Default)]
struct Signal {
    shutdown: bool,
    wakeups: u64,
}

struct Shared {
    lanes: Vec<Mutex<Lane>>,
    signal: Mutex<Signal>,
    cv: Condvar,
    drained: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    /// Moves every buffered event into the central store.
    fn sweep(&self) {
        let mut swept: Vec<TraceEvent> = Vec::new();
        for lane in &self.lanes {
            let mut lane = lock(lane);
            swept.append(&mut lane.events);
        }
        if !swept.is_empty() {
            lock(&self.drained).append(&mut swept);
        }
    }
}

/// The worker-facing half: implements [`Recorder`] by appending to the
/// owning tracer's lanes.
struct LaneRecorder {
    shared: Arc<Shared>,
}

impl Recorder for LaneRecorder {
    fn record(&self, mut ev: TraceEvent) {
        let shared = &self.shared;
        let lane_ix = ev.source as usize % LANES;
        let wake = {
            let mut lane = lock(&shared.lanes[lane_ix]);
            if lane.events.len() >= LANE_CAP {
                shared.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let seq = lane.seqs.entry(ev.source).or_insert(0);
            ev.seq = *seq;
            *seq += 1;
            lane.events.push(ev);
            lane.events.len().is_multiple_of(DRAIN_BATCH)
        };
        if wake {
            lock(&shared.signal).wakeups += 1;
            shared.cv.notify_one();
        }
    }

    fn flush(&self) {
        self.shared.sweep();
    }
}

/// Owns the collector thread and the merged trace. Create with
/// [`Tracer::start`], hand [`Tracer::recorder`] to `ofl_trace::install`,
/// and call [`Tracer::finish`] to get the ordered [`Trace`] back.
/// Dropping a tracer without finishing shuts the thread down cleanly
/// (no deadlock) and discards the events.
pub struct Tracer {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl Tracer {
    /// Spawns the collector thread and returns the handle.
    pub fn start() -> Tracer {
        let shared = Arc::new(Shared {
            lanes: (0..LANES).map(|_| Mutex::new(Lane::default())).collect(),
            signal: Mutex::new(Signal::default()),
            cv: Condvar::new(),
            drained: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        let worker = shared.clone();
        let handle = std::thread::Builder::new()
            .name("ofl-trace-collector".into())
            .spawn(move || loop {
                let shutdown = {
                    let mut sig = lock(&worker.signal);
                    while !sig.shutdown && sig.wakeups == 0 {
                        sig = match worker.cv.wait(sig) {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                    sig.wakeups = 0;
                    sig.shutdown
                };
                worker.sweep();
                if shutdown {
                    break;
                }
            })
            .ok();
        Tracer { shared, handle }
    }

    /// A [`Recorder`] feeding this tracer, for `ofl_trace::install`.
    pub fn recorder(&self) -> Arc<dyn Recorder> {
        Arc::new(LaneRecorder {
            shared: self.shared.clone(),
        })
    }

    /// Synchronous barrier: every event recorded before this call is in
    /// the central store afterwards, whatever the collector thread is
    /// doing.
    pub fn flush(&self) {
        self.shared.sweep();
    }

    /// Events dropped so far because a lane ring was full.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        {
            let mut sig = lock(&self.shared.signal);
            sig.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Stops the collector thread, sweeps the last events, and returns the
    /// merged trace sorted by `(ts_us, source, seq)`.
    pub fn finish(mut self) -> Trace {
        self.shutdown();
        self.shared.sweep();
        let mut events = std::mem::take(&mut *lock(&self.shared.drained));
        events.sort_by_key(|a| (a.ts_us, a.source, a.seq));
        Trace {
            events,
            dropped: self.shared.dropped.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, EventKind, FieldValue};

    fn ev(ts: u64, source: u32, name: &'static str) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            source,
            seq: 0,
            cat: Category::Engine,
            kind: EventKind::Instant,
            name,
            fields: Vec::new(),
        }
    }

    #[test]
    fn flush_loses_nothing_under_concurrent_recording() {
        let tracer = Tracer::start();
        let recorder = tracer.recorder();
        const THREADS: u32 = 8;
        const PER_THREAD: u64 = 5000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let recorder = recorder.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let mut e = ev(i, t, "load");
                        e.fields.push(("i", FieldValue::U64(i)));
                        recorder.record(e);
                    }
                });
            }
        });
        tracer.flush();
        let trace = tracer.finish();
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.events.len(), (THREADS as u64 * PER_THREAD) as usize);
    }

    #[test]
    fn finish_orders_by_ts_then_source_then_seq() {
        let tracer = Tracer::start();
        let recorder = tracer.recorder();
        // Record out of timestamp order, across sources sharing a lane.
        recorder.record(ev(50, 3, "c"));
        recorder.record(ev(10, 19, "b")); // 19 % 16 == 3: same lane as source 3
        recorder.record(ev(10, 3, "a"));
        recorder.record(ev(10, 3, "a2"));
        let trace = tracer.finish();
        let order: Vec<(u64, u32, u64)> = trace
            .events
            .iter()
            .map(|e| (e.ts_us, e.source, e.seq))
            .collect();
        assert_eq!(order, vec![(10, 3, 1), (10, 3, 2), (10, 19, 0), (50, 3, 0)]);
        assert_eq!(trace.events[0].name, "a");
        assert_eq!(trace.events[1].name, "a2");
        assert_eq!(trace.events[2].name, "b");
        assert_eq!(trace.events[3].name, "c");
    }

    #[test]
    fn per_source_seq_is_record_order() {
        let tracer = Tracer::start();
        let recorder = tracer.recorder();
        for i in 0..10 {
            recorder.record(ev(100 - i, 2, "x"));
        }
        let trace = tracer.finish();
        // Sorted by ts: the *later-recorded* events (lower ts) come first,
        // each still carrying its record-order seq.
        let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn drop_without_finish_does_not_deadlock() {
        let tracer = Tracer::start();
        let recorder = tracer.recorder();
        recorder.record(ev(1, 0, "orphan"));
        drop(tracer); // must join the collector thread and return
    }

    #[test]
    fn lane_cap_drops_and_counts_instead_of_growing() {
        let tracer = Tracer::start();
        // Bypass the collector by never waking it: record into one lane
        // past its cap in one burst, counting the overflow.
        let recorder = tracer.recorder();
        let burst = (super::LANE_CAP + 10) as u64;
        for i in 0..burst {
            recorder.record(ev(i, 1, "burst"));
        }
        // The collector may have swept mid-burst (making room), so the
        // only guarantee is conservation: kept + dropped == burst.
        tracer.flush();
        let dropped = tracer.dropped();
        let trace = tracer.finish();
        assert_eq!(trace.events.len() as u64 + dropped, burst);
    }
}
