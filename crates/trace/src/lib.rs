//! # ofl-trace — deterministic tracing and metrics keyed by virtual time
//!
//! Every other observability surface in the workspace (`hotpath` phase
//! counters, `MeteredProvider`, `WireCounter`, `DaemonStats`) is a disjoint
//! aggregate with no shared timeline. This crate gives them one: structured
//! trace events stamped with **virtual time** (the engine's `SimInstant`
//! microseconds), a stable **source id** (engine = 0, endpoint *i* = 1 + *i*)
//! and a per-source **sequence number**, so a trace is a pure function of the
//! seed — bit-reproducible across runs, backends, and serial/parallel
//! executors, under the same determinism contract as the digests.
//!
//! Three pillars:
//!
//! 1. **Span/event API** — [`trace_event!`] / [`trace_span!`] compile to a
//!    single relaxed atomic load when tracing is disabled; a [`Recorder`]
//!    trait (no-op by default — nothing installed) receives events when it
//!    is.
//! 2. **Off-thread collector** — [`Tracer`] hands workers per-source ring
//!    buffers; a collector thread drains them off the engine thread and
//!    [`Tracer::finish`] merges everything in deterministic
//!    `(timestamp, source, seq)` order into a [`Trace`] with JSONL and
//!    Chrome-trace (`chrome://tracing`) exporters.
//! 3. **Metrics registry** — [`metrics`]: counters, gauges, and
//!    fixed-bucket histograms iterated in name order, servable live over
//!    the wire (`Frame::Stats` in `ofl-rpc`).
//!
//! ## Determinism domain
//!
//! Categories split events into a backend-invariant core and opt-in
//! diagnostics. [`Category::Engine`], [`Category::World`],
//! [`Category::Provider`] and [`Category::Sign`] fire identically whether a
//! shard is in-process, piped, or behind a TCP socket, and are enabled by
//! default. [`Category::Codec`] and [`Category::Rpcd`] only fire when frames
//! actually cross a wire — enabling them trades cross-backend byte-identity
//! for wire-level detail. See `set_category_mask`.
//!
//! The crate is dependency-free and sits below `ofl-primitives` so every
//! layer of the stack can instrument itself.

#![forbid(unsafe_code)]

mod collector;
pub mod diff;
pub mod gzip;
pub mod metrics;
mod sink;

pub use collector::Tracer;
pub use sink::{ChromeSink, JsonlSink, Trace, TraceSink};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// Event category: the determinism domain an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Engine event-loop dispatch: deterministic on every backend.
    Engine,
    /// `World` slot mining and notification pumping.
    World,
    /// Provider decorators: injected faults, throttles, latency charges.
    Provider,
    /// Wallet signing.
    Sign,
    /// Frame encode/decode. Only fires when frames cross a wire —
    /// **opt-in**, breaks cross-backend trace identity.
    Codec,
    /// Daemon session handling. Backend-dependent — **opt-in**.
    Rpcd,
}

impl Category {
    /// Bit for category-mask filtering.
    pub const fn bit(self) -> u32 {
        1 << self as u32
    }

    /// Stable lowercase label used by the exporters.
    pub const fn label(self) -> &'static str {
        match self {
            Category::Engine => "engine",
            Category::World => "world",
            Category::Provider => "provider",
            Category::Sign => "sign",
            Category::Codec => "codec",
            Category::Rpcd => "rpcd",
        }
    }
}

/// The backend-invariant categories: traces restricted to these are
/// byte-identical across in-process, pipe, and TCP backends.
pub const DEFAULT_CATEGORIES: u32 = Category::Engine.bit()
    | Category::World.bit()
    | Category::Provider.bit()
    | Category::Sign.bit();

/// Every category, including the backend-dependent diagnostics.
pub const ALL_CATEGORIES: u32 = DEFAULT_CATEGORIES | Category::Codec.bit() | Category::Rpcd.bit();

/// Instant event, or one end of a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A point event.
    Instant,
    /// Span open (paired with a later `End` of the same name/source).
    Begin,
    /// Span close.
    End,
}

impl EventKind {
    /// One-letter code used by the JSONL exporter (and Chrome's `ph`).
    pub const fn code(self) -> &'static str {
        match self {
            EventKind::Instant => "i",
            EventKind::Begin => "b",
            EventKind::End => "e",
        }
    }
}

/// A typed field value. Kept deliberately small: trace fields should be
/// numbers (slot, owner, shard, byte counts) — strings are for names the
/// call site already owns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldValue {
    /// Unsigned quantity.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Short label.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<u16> for FieldValue {
    fn from(v: u16) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One structured trace event.
///
/// `(ts_us, source, seq)` totally orders a trace: `ts_us` is virtual time,
/// `source` is a stable small integer (0 = engine thread, 1 + *i* =
/// endpoint *i* — **not** an OS thread id, so serial and parallel executors
/// attribute identically), and `seq` is the per-source record order.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual-time stamp in microseconds.
    pub ts_us: u64,
    /// Stable source id.
    pub source: u32,
    /// Per-source sequence number, assigned by the recorder.
    pub seq: u64,
    /// Determinism domain.
    pub cat: Category,
    /// Instant / span-begin / span-end.
    pub kind: EventKind,
    /// Static event name, dot-namespaced (`"engine.dispatch"`).
    pub name: &'static str,
    /// Call-site fields in declaration order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

// ---------------------------------------------------------------------------
// Global gate + recorder registry
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static CATEGORY_MASK: AtomicU32 = AtomicU32::new(DEFAULT_CATEGORIES);
static RECORDER: Mutex<Option<Arc<dyn Recorder>>> = Mutex::new(None);

/// Receives trace events. The default state is "nothing installed":
/// every instrumentation site reduces to one relaxed atomic load.
///
/// `record` is called with `seq == 0`; a recorder that persists events is
/// expected to assign the per-source sequence number itself (the [`Tracer`]
/// does), because only the recorder knows how many events a source has
/// already emitted.
pub trait Recorder: Send + Sync {
    /// Record one event. Must not panic; must not block on the caller's
    /// own locks (it is called from engine and worker threads).
    fn record(&self, ev: TraceEvent);
    /// Best-effort barrier: all events recorded before the call are
    /// durable once it returns.
    fn flush(&self) {}
}

/// True when a recorder is installed. The fast path of every macro.
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True when `cat` passes the current category mask.
#[inline]
pub fn category_enabled(cat: Category) -> bool {
    CATEGORY_MASK.load(Ordering::Relaxed) & cat.bit() != 0
}

/// Replaces the category mask (see [`DEFAULT_CATEGORIES`] /
/// [`ALL_CATEGORIES`]). Takes effect immediately on all threads.
pub fn set_category_mask(mask: u32) {
    CATEGORY_MASK.store(mask, Ordering::Relaxed);
}

/// Current category mask.
pub fn category_mask() -> u32 {
    CATEGORY_MASK.load(Ordering::Relaxed)
}

fn recorder_slot() -> std::sync::MutexGuard<'static, Option<Arc<dyn Recorder>>> {
    match RECORDER.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Installs `rec` as the global recorder and enables tracing. Replaces any
/// previous recorder (runs are sequential; the last installer wins).
pub fn install(rec: Arc<dyn Recorder>) {
    *recorder_slot() = Some(rec);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables tracing and removes the recorder, returning it so the caller
/// can drain it. Safe to call when nothing is installed.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    ENABLED.store(false, Ordering::SeqCst);
    recorder_slot().take()
}

/// Starts a [`Tracer`], installs its recorder globally, and returns the
/// tracer handle. Pair with [`stop_tracing`].
pub fn start_tracing() -> Tracer {
    let tracer = Tracer::start();
    install(tracer.recorder());
    tracer
}

/// Uninstalls the global recorder and finishes `tracer`, returning the
/// merged, deterministically ordered [`Trace`].
pub fn stop_tracing(tracer: Tracer) -> Trace {
    uninstall();
    tracer.finish()
}

// ---------------------------------------------------------------------------
// Thread-local virtual-time / source context
// ---------------------------------------------------------------------------

thread_local! {
    static CTX: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
}

/// Sets this thread's virtual-time stamp (microseconds). The simulation
/// clock calls this on every advance; leaf sites (signing, decorators,
/// codec) then stamp events without plumbing a clock handle through.
#[inline]
pub fn set_vtime(us: u64) {
    CTX.with(|c| {
        let (_, src) = c.get();
        c.set((us, src));
    });
}

/// This thread's current virtual time in microseconds.
#[inline]
pub fn vtime() -> u64 {
    CTX.with(|c| c.get().0)
}

/// This thread's current source id.
#[inline]
pub fn source() -> u32 {
    CTX.with(|c| c.get().1)
}

/// Scopes this thread to `(source, vtime_us)` until the guard drops, then
/// restores the previous context. The shard executor wraps each
/// per-endpoint closure in one of these so events attribute to the
/// *endpoint*, not the worker thread — identical under serial and parallel
/// execution.
pub fn source_scope(source: u32, vtime_us: u64) -> SourceScope {
    let prev = CTX.with(|c| c.replace((vtime_us, source)));
    SourceScope { prev }
}

/// Restores the previous `(vtime, source)` context on drop.
#[must_use = "the scope ends when the guard drops"]
pub struct SourceScope {
    prev: (u64, u32),
}

impl Drop for SourceScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CTX.with(|c| c.set(prev));
    }
}

/// FNV-1a over `bytes`: the workspace's standard cheap content digest, so
/// instrumentation sites can stamp *what* they produced (a signed
/// transaction, a payload) into a trace field without hauling the bytes
/// along. Two same-seed runs produce the same digests; a seed mismatch
/// surfaces at the first event whose content differs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Recording entry points (macro plumbing)
// ---------------------------------------------------------------------------

/// Records one event through the installed recorder, stamping it with the
/// calling thread's virtual time and source id. Prefer the macros.
pub fn record_event(
    cat: Category,
    kind: EventKind,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
) {
    let rec = recorder_slot().clone();
    if let Some(rec) = rec {
        let (ts_us, source) = CTX.with(|c| c.get());
        rec.record(TraceEvent {
            ts_us,
            source,
            seq: 0,
            cat,
            kind,
            name,
            fields,
        });
    }
}

/// RAII span: emits `Begin` on creation (via [`span`]) and `End` — stamped
/// with the virtual time *at drop* — when it goes out of scope.
pub struct Span {
    cat: Category,
    name: &'static str,
    live: bool,
}

/// Opens a span; `fields` is `None` when tracing is off (the macro decides
/// so field expressions aren't even evaluated).
pub fn span(
    cat: Category,
    name: &'static str,
    fields: Option<Vec<(&'static str, FieldValue)>>,
) -> Span {
    let live = fields.is_some();
    if let Some(fields) = fields {
        record_event(cat, EventKind::Begin, name, fields);
    }
    Span { cat, name, live }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            record_event(self.cat, EventKind::End, self.name, Vec::new());
        }
    }
}

/// Records an instant event: `trace_event!(Category::World, "slot.mine",
/// "slot" => slot_secs, "blocks" => n)`. Field expressions are not
/// evaluated unless tracing is enabled *and* the category passes the mask.
#[macro_export]
macro_rules! trace_event {
    ($cat:expr, $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::tracing_enabled() && $crate::category_enabled($cat) {
            $crate::record_event(
                $cat,
                $crate::EventKind::Instant,
                $name,
                vec![$(($k, $crate::FieldValue::from($v))),*],
            );
        }
    };
}

/// Opens a span guard: `let _span = trace_span!(Category::World,
/// "slot.mine", "slot" => slot_secs);`. The span closes (and stamps its
/// end time) when the guard drops. Zero field evaluation when disabled.
#[macro_export]
macro_rules! trace_span {
    ($cat:expr, $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        $crate::span(
            $cat,
            $name,
            if $crate::tracing_enabled() && $crate::category_enabled($cat) {
                Some(vec![$(($k, $crate::FieldValue::from($v))),*])
            } else {
                None
            },
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CaptureRecorder {
        events: Mutex<Vec<TraceEvent>>,
    }

    impl Recorder for CaptureRecorder {
        fn record(&self, ev: TraceEvent) {
            self.events.lock().unwrap().push(ev);
        }
    }

    // The global recorder slot is shared process state; tests that install
    // into it serialize on this lock.
    static GLOBAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_macros_record_nothing_and_skip_field_eval() {
        let _g = GLOBAL.lock().unwrap();
        uninstall();
        let mut evaluated = false;
        trace_event!(Category::Engine, "never", "x" => {
            evaluated = true;
            1u64
        });
        let _span = trace_span!(Category::Engine, "never.span", "y" => {
            evaluated = true;
            2u64
        });
        assert!(!evaluated, "field expressions must not run when disabled");
    }

    #[test]
    fn events_carry_context_and_category_mask_filters() {
        let _g = GLOBAL.lock().unwrap();
        let rec = Arc::new(CaptureRecorder {
            events: Mutex::new(Vec::new()),
        });
        install(rec.clone());
        set_vtime(42);
        {
            let _scope = source_scope(7, 1000);
            trace_event!(Category::Provider, "flaky.drop", "which" => 3u64);
            trace_event!(Category::Codec, "codec.encode"); // masked out by default
        }
        trace_event!(Category::Engine, "after.scope");
        uninstall();
        set_category_mask(DEFAULT_CATEGORIES);

        let events = rec.events.lock().unwrap();
        assert_eq!(events.len(), 2, "codec event is masked by default");
        assert_eq!(events[0].name, "flaky.drop");
        assert_eq!(events[0].ts_us, 1000);
        assert_eq!(events[0].source, 7);
        assert_eq!(events[0].fields, vec![("which", FieldValue::U64(3))]);
        // The scope guard restored the pre-scope context.
        assert_eq!(events[1].ts_us, 42);
        assert_eq!(events[1].source, 0);
    }

    #[test]
    fn span_emits_begin_and_end() {
        let _g = GLOBAL.lock().unwrap();
        let rec = Arc::new(CaptureRecorder {
            events: Mutex::new(Vec::new()),
        });
        install(rec.clone());
        set_vtime(5);
        {
            let _span = trace_span!(Category::World, "slot.mine", "slot" => 9u64);
            set_vtime(8);
        }
        uninstall();
        let events = rec.events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].ts_us, 5);
        assert_eq!(events[1].kind, EventKind::End);
        assert_eq!(events[1].ts_us, 8, "span end is stamped at drop time");
    }

    #[test]
    fn category_bits_are_distinct_and_labeled() {
        let cats = [
            Category::Engine,
            Category::World,
            Category::Provider,
            Category::Sign,
            Category::Codec,
            Category::Rpcd,
        ];
        let mut seen = 0u32;
        for c in cats {
            assert_eq!(seen & c.bit(), 0, "duplicate bit for {c:?}");
            seen |= c.bit();
            assert!(!c.label().is_empty());
        }
        assert_eq!(seen, ALL_CATEGORIES);
    }
}
