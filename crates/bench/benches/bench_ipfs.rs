//! Micro-benchmarks of the content-addressed storage: adding and fetching
//! the paper's 317 KB model payload.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ofl_ipfs::cid::Cid;
use ofl_ipfs::dag::{build_dag, CHUNK_SIZE};
use ofl_ipfs::swarm::{IpfsNode, Swarm};

const MODEL_BYTES: usize = 318_064; // the paper's 317 KB model

fn bench_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipfs_dag");
    let model = vec![0x5au8; MODEL_BYTES];
    group.throughput(Throughput::Bytes(MODEL_BYTES as u64));
    group.bench_function("build_dag_317KB", |b| {
        b.iter(|| build_dag(black_box(&model), CHUNK_SIZE))
    });
    group.bench_function("cid_v0_317KB", |b| b.iter(|| Cid::v0_of(black_box(&model))));
    group.finish();
}

fn bench_add_fetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipfs_swarm");
    group.sample_size(20);
    let model = vec![0x77u8; MODEL_BYTES];
    group.throughput(Throughput::Bytes(MODEL_BYTES as u64));
    group.bench_function("add_317KB", |b| {
        b.iter_with_setup(
            || IpfsNode::new("bench"),
            |mut node| black_box(node.add(&model)),
        )
    });
    group.bench_function("fetch_317KB_from_peer", |b| {
        b.iter_with_setup(
            || {
                let mut swarm = Swarm::spawn("peer", 2);
                let root = swarm.node_mut(0).add(&model).root;
                (swarm, root)
            },
            |(mut swarm, root)| black_box(swarm.fetch(1, &root).unwrap().1),
        )
    });
    group.bench_function("cat_local_317KB", |b| {
        let mut node = IpfsNode::new("bench");
        let root = node.add(&model).root;
        b.iter(|| node.cat_local(black_box(&root)).unwrap())
    });
    group.finish();
}

fn bench_cid_text(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipfs_cid");
    let cid = Cid::v0_of(b"model");
    group.bench_function("to_string", |b| b.iter(|| black_box(&cid).to_string_form()));
    let s = cid.to_string_form();
    group.bench_function("parse", |b| b.iter(|| Cid::parse(black_box(&s)).unwrap()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dag, bench_add_fetch, bench_cid_text
}
criterion_main!(benches);
