//! Micro-benchmarks of the ML stack: matmul, local training, PFNM matching,
//! and the Hungarian solver.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ofl_data::mnist;
use ofl_fl::baselines::train_all_silos;
use ofl_fl::client::{train_local, TrainConfig};
use ofl_fl::hungarian::solve_min;
use ofl_fl::pfnm::{aggregate, PfnmConfig};
use ofl_tensor::serialize::{decode_model, encode_model};
use ofl_tensor::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    let mut rng = StdRng::seed_from_u64(0);
    // The paper's hidden layer: batch 64 × (784 → 100).
    let x = Tensor::randn(64, 784, 1.0, &mut rng);
    let w = Tensor::randn(100, 784, 0.05, &mut rng);
    group.throughput(Throughput::Elements(64 * 784 * 100));
    group.bench_function("matmul_nt_64x784x100", |b| {
        b.iter(|| black_box(&x).matmul_nt(black_box(&w)))
    });
    let dy = Tensor::randn(64, 100, 1.0, &mut rng);
    group.bench_function("matmul_tn_grad_64x784x100", |b| {
        b.iter(|| black_box(&dy).matmul_tn(black_box(&x)))
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    let (train, _) = mnist::generate(1, 400, 10);
    let cfg = TrainConfig {
        dims: vec![784, 100, 10],
        epochs: 1,
        ..TrainConfig::default()
    };
    group.bench_function("local_epoch_400_examples", |b| {
        b.iter(|| train_local(black_box(&train), &cfg))
    });
    group.finish();
}

fn bench_model_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_codec");
    let mut rng = StdRng::seed_from_u64(2);
    let model = ofl_tensor::nn::Mlp::new(&[784, 100, 10], &mut rng);
    group.throughput(Throughput::Bytes(318_064));
    group.bench_function("encode_317KB", |b| {
        b.iter(|| encode_model(black_box(&model)))
    });
    let bytes = encode_model(&model);
    group.bench_function("decode_317KB", |b| {
        b.iter(|| decode_model(black_box(&bytes)).unwrap())
    });
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    // PFNM's workhorse size: 100 local neurons × ~1100 columns.
    let cost: Vec<Vec<f64>> = (0..100)
        .map(|_| (0..1100).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect();
    group.bench_function("solve_100x1100", |b| b.iter(|| solve_min(black_box(&cost))));
    group.finish();
}

fn bench_pfnm(c: &mut Criterion) {
    let mut group = c.benchmark_group("pfnm");
    group.sample_size(10);
    let (train, _) = mnist::generate(4, 1_000, 10);
    let mut rng = StdRng::seed_from_u64(5);
    let silos = ofl_data::partition::iid(&train, 5, &mut rng);
    let cfg = TrainConfig {
        dims: vec![784, 50, 10],
        epochs: 2,
        ..TrainConfig::default()
    };
    let trained = train_all_silos(&silos, &cfg);
    let weights: Vec<usize> = trained.iter().map(|t| t.n_examples).collect();
    let models: Vec<_> = trained.into_iter().map(|t| t.model).collect();
    group.bench_function("aggregate_5x50_neurons", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            aggregate(
                black_box(&models),
                &weights,
                &PfnmConfig::default(),
                &mut rng,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_training, bench_model_codec, bench_hungarian, bench_pfnm
}
criterion_main!(benches);
