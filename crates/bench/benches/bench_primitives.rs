//! Micro-benchmarks of the cryptographic/encoding primitives: hashing
//! throughput, big-integer arithmetic, RLP, and text encodings.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ofl_primitives::u256::U256;
use ofl_primitives::{base58, keccak256, rlp, sha256};

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashes");
    for size in [32usize, 1024, 317 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("keccak256/{size}"), |b| {
            b.iter(|| keccak256(black_box(&data)))
        });
        group.bench_function(format!("sha256/{size}"), |b| {
            b.iter(|| sha256(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_u256(c: &mut Criterion) {
    let mut group = c.benchmark_group("u256");
    let a = U256::from_hex_str("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
        .unwrap();
    let b = U256::from_hex_str("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
        .unwrap();
    group.bench_function("wrapping_mul", |bench| {
        bench.iter(|| black_box(a).wrapping_mul(black_box(&b)))
    });
    group.bench_function("div_rem", |bench| {
        bench.iter(|| black_box(a).div_rem(black_box(&b)))
    });
    group.bench_function("mul_mod", |bench| {
        bench.iter(|| black_box(b).mul_mod(black_box(&b), black_box(&a)))
    });
    group.bench_function("to_dec_string", |bench| {
        bench.iter(|| black_box(a).to_dec_string())
    });
    group.finish();
}

fn bench_encodings(c: &mut Criterion) {
    let mut group = c.benchmark_group("encodings");
    let digest = sha256(b"model");
    let mh = [&[0x12u8, 0x20][..], &digest[..]].concat();
    group.bench_function("base58_encode_cid", |b| {
        b.iter(|| base58::encode(black_box(&mh)))
    });
    let cid_str = base58::encode(&mh);
    group.bench_function("base58_decode_cid", |b| {
        b.iter(|| base58::decode(black_box(&cid_str)).unwrap())
    });
    let tx_like = rlp::Item::List(vec![
        rlp::Item::u64(11155111),
        rlp::Item::u64(7),
        rlp::Item::uint(&U256::from(1_500_000_000u64)),
        rlp::Item::uint(&U256::from(30_000_000_000u64)),
        rlp::Item::u64(100_000),
        rlp::Item::bytes([0x42u8; 20]),
        rlp::Item::uint(&U256::from_u128(1_000_000_000_000_000)),
        rlp::Item::bytes([0xffu8; 100]),
        rlp::Item::List(vec![]),
    ]);
    group.bench_function("rlp_encode_tx", |b| {
        b.iter(|| rlp::encode(black_box(&tx_like)))
    });
    let encoded = rlp::encode(&tx_like);
    group.bench_function("rlp_decode_tx", |b| {
        b.iter(|| rlp::decode(black_box(&encoded)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hashes, bench_u256, bench_encodings
}
criterion_main!(benches);
