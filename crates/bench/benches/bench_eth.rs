//! Micro-benchmarks of the blockchain substrate: ECDSA, transaction
//! round-trips, and EVM execution of the CidStorage contract.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ofl_eth::chain::{Chain, ChainConfig};
use ofl_eth::contracts::{cid_storage_init_code, CidStorage};
use ofl_eth::secp256k1::{public_key, recover, sign, verify};
use ofl_eth::tx::{sign_tx, SignedTx, TxRequest};
use ofl_eth::wallet::Wallet;
use ofl_primitives::u256::U256;
use ofl_primitives::{keccak256, wei_per_eth, H160};

fn bench_ecdsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("secp256k1");
    group.sample_size(10);
    let key = U256::from(0xdeadbeefu64);
    let pk = public_key(&key).unwrap();
    let hash = keccak256(b"benchmark message");
    let sig = sign(&key, &hash).unwrap();
    group.bench_function("sign", |b| {
        b.iter(|| sign(black_box(&key), black_box(&hash)))
    });
    group.bench_function("verify", |b| {
        b.iter(|| verify(black_box(&pk), black_box(&hash), black_box(&sig)))
    });
    group.bench_function("recover", |b| {
        b.iter(|| recover(black_box(&hash), black_box(&sig)).unwrap())
    });
    group.finish();
}

fn bench_tx(c: &mut Criterion) {
    let mut group = c.benchmark_group("transaction");
    group.sample_size(10);
    let key = U256::from(0x1234u64);
    let req = TxRequest {
        chain_id: 11155111,
        nonce: 0,
        max_priority_fee_per_gas: U256::from(1_500_000_000u64),
        max_fee_per_gas: U256::from(30_000_000_000u64),
        gas_limit: 100_000,
        to: Some(H160::from_slice(&[0x42; 20])),
        value: U256::from(1u64),
        data: CidStorage::upload_cid_calldata("QmYwAPJzv5CZsnA625s3Xf2nemtYgPpHdWEz79ojWnPbdG"),
    };
    group.bench_function("sign_encode", |b| {
        b.iter(|| sign_tx(black_box(req.clone()), &key).unwrap().encode())
    });
    let raw = sign_tx(req, &key).unwrap().encode();
    group.bench_function("decode_recover_sender", |b| {
        b.iter(|| {
            SignedTx::decode(black_box(&raw))
                .unwrap()
                .recover_sender()
                .unwrap()
        })
    });
    group.finish();
}

fn bench_evm(c: &mut Criterion) {
    let mut group = c.benchmark_group("evm");
    // Deploy once, then benchmark call execution through eth_call (pure EVM
    // interpreter work: dispatch + keccak + storage reads).
    let wallet = Wallet::from_seed("bench", 1);
    let owner = wallet.addresses()[0];
    let mut chain = Chain::new(ChainConfig::default(), &[(owner, wei_per_eth())]);
    let hash = wallet
        .send(
            &mut chain,
            &owner,
            None,
            U256::ZERO,
            cid_storage_init_code(),
        )
        .unwrap();
    chain.mine_block(12);
    let contract = CidStorage::at(chain.receipt(&hash).unwrap().contract_address.unwrap());
    // Store one CID so getCid has work to do.
    wallet
        .send(
            &mut chain,
            &owner,
            Some(contract.address),
            U256::ZERO,
            CidStorage::upload_cid_calldata("QmYwAPJzv5CZsnA625s3Xf2nemtYgPpHdWEz79ojWnPbdG"),
        )
        .unwrap();
    chain.mine_block(24);

    group.bench_function("eth_call_getCid", |b| {
        b.iter(|| contract.get_cid(black_box(&chain), &owner, 0).unwrap())
    });
    group.bench_function("eth_call_cidCount", |b| {
        b.iter(|| contract.cid_count(black_box(&chain), &owner).unwrap())
    });
    group.bench_function("estimate_gas_uploadCid", |b| {
        let data = CidStorage::upload_cid_calldata("QmBenchmarkCidBenchmarkCidBenchmarkCidBench");
        b.iter(|| chain.estimate_gas(&owner, Some(&contract.address), black_box(&data)))
    });
    group.finish();
}

fn bench_block_production(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain");
    group.sample_size(10);
    group.bench_function("mine_block_10_transfers", |b| {
        b.iter_with_setup(
            || {
                let wallet = Wallet::from_seed("bench-mine", 11);
                let addrs = wallet.addresses();
                let mut chain = Chain::new(ChainConfig::default(), &[(addrs[0], wei_per_eth())]);
                for n in 0..10u64 {
                    let req = TxRequest {
                        chain_id: chain.config().chain_id,
                        nonce: n,
                        max_priority_fee_per_gas: U256::from(1_500_000_000u64),
                        max_fee_per_gas: U256::from(40_000_000_000u64),
                        gas_limit: 21_000,
                        to: Some(H160::from_slice(&[9; 20])),
                        value: U256::ONE,
                        data: vec![],
                    };
                    let key = wallet.account(&addrs[0]).unwrap().private_key;
                    chain.submit(sign_tx(req, &key).unwrap()).unwrap();
                }
                chain
            },
            |mut chain| {
                chain.mine_block(12);
                black_box(chain.height())
            },
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ecdsa, bench_tx, bench_evm, bench_block_production
}
criterion_main!(benches);
