//! **Figure 7** — Execution-time distribution on owners and buyers.
//!
//! The paper measures the full workflow on a unified campus network and
//! observes that blockchain interactions dominate both roles' wall-clock
//! time — the argument for one-shot FL on Web 3.0.
//!
//! Run: `cargo run -p ofl-bench --release --bin fig7_time_distribution`

use ofl_bench::{bar, header, write_record};
use ofl_core::config::MarketConfig;
use ofl_core::market::{buyer_phase, owner_phase, Marketplace};
use ofl_core::EndpointId;
use serde::Serialize;

#[derive(Serialize)]
struct Phase {
    name: String,
    seconds: f64,
    share: f64,
}

#[derive(Serialize)]
struct Record {
    owner_mean_phases: Vec<Phase>,
    buyer_phases: Vec<Phase>,
    owner_blockchain_share: f64,
    buyer_blockchain_share: f64,
    total_sim_seconds: f64,
}

fn main() {
    header("Figure 7: execution-time distribution (campus network, 12 s blocks)");
    let config = MarketConfig::default();
    let (market, report) = Marketplace::run(config).expect("session");

    // Owners: average the per-owner breakdowns.
    println!(
        "\n(a) model owners — mean across {} owners",
        market.owners.len()
    );
    let mut owner_totals: std::collections::BTreeMap<String, f64> = Default::default();
    for breakdown in &report.owner_breakdowns {
        for (phase, d, _) in breakdown {
            *owner_totals.entry(phase.clone()).or_default() += d.as_secs_f64();
        }
    }
    let n = report.owner_breakdowns.len().max(1) as f64;
    let owner_total: f64 = owner_totals.values().sum::<f64>() / n;
    let phase_order = [
        owner_phase::TRAIN,
        owner_phase::UPLOAD,
        owner_phase::SEND_CID,
    ];
    let mut owner_phases = Vec::new();
    for name in phase_order {
        let secs = owner_totals.get(name).copied().unwrap_or(0.0) / n;
        let share = secs / owner_total.max(1e-12);
        println!(
            "  {:<26} {:>8.3} s  {:>5.1} %  {}",
            name,
            secs,
            share * 100.0,
            bar(share, 30)
        );
        owner_phases.push(Phase {
            name: name.to_string(),
            seconds: secs,
            share,
        });
    }
    let owner_chain_share = owner_phases
        .iter()
        .find(|p| p.name == owner_phase::SEND_CID)
        .map(|p| p.share)
        .unwrap_or(0.0);

    println!("\n(b) model buyer");
    let _buyer_total: f64 = report
        .buyer_breakdown
        .iter()
        .map(|(_, d, _)| d.as_secs_f64())
        .sum();
    let mut buyer_phases = Vec::new();
    for (name, d, share) in &report.buyer_breakdown {
        println!(
            "  {:<26} {:>8.3} s  {:>5.1} %  {}",
            name,
            d.as_secs_f64(),
            share * 100.0,
            bar(*share, 30)
        );
        buyer_phases.push(Phase {
            name: name.clone(),
            seconds: d.as_secs_f64(),
            share: *share,
        });
    }
    // Blockchain-bound buyer phases: deployment + payment (both wait for
    // block inclusion).
    let buyer_chain_share: f64 = buyer_phases
        .iter()
        .filter(|p| p.name == buyer_phase::DEPLOY || p.name == buyer_phase::PAYMENT)
        .map(|p| p.share)
        .sum();

    println!(
        "\nblockchain-interaction share — owners: {:.1} %, buyer: {:.1} % \
         (paper: \"the bulk of time consumption is attributed to blockchain interactions\")",
        owner_chain_share * 100.0,
        buyer_chain_share * 100.0
    );
    println!(
        "total simulated session time: {:.1} s ({} blocks mined)",
        report.total_sim_seconds,
        market.world.chain(EndpointId(0)).height()
    );
    println!(
        "contrast: traditional FL at ≥100 rounds would multiply every owner's \
         blockchain time by the round count (see ablation_oneshot_vs_fedavg)"
    );

    write_record(
        "fig7_time_distribution",
        &Record {
            owner_mean_phases: owner_phases,
            buyer_phases,
            owner_blockchain_share: owner_chain_share,
            buyer_blockchain_share: buyer_chain_share,
            total_sim_seconds: report.total_sim_seconds,
        },
    );
}
