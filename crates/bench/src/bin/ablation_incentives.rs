//! **Ablation A4** — LOO vs Monte-Carlo Shapley payment allocation.
//!
//! The incentive function is pluggable in OFL-W3's Step 7; the paper uses
//! LOO "for illustration". This ablation pays the same ten owners under
//! both mechanisms and compares the allocations and their cost (value-
//! function evaluations, i.e. re-aggregations the buyer must run).
//!
//! Run: `cargo run -p ofl-bench --release --bin ablation_incentives`

use ofl_bench::{header, write_record};
use ofl_data::{mnist, partition};
use ofl_fl::baselines::train_all_silos;
use ofl_fl::client::TrainConfig;
use ofl_fl::pfnm::{aggregate, PfnmConfig};
use ofl_incentive::{allocate_payments, loo_scores, shapley_monte_carlo};
use ofl_primitives::u256::U256;
use ofl_primitives::{format_eth, wei_per_eth};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::HashMap;

#[derive(Serialize)]
struct Record {
    loo_payments_eth: Vec<String>,
    shapley_payments_eth: Vec<String>,
    loo_evaluations: usize,
    shapley_evaluations: usize,
    rank_agreement: f64,
}

fn main() {
    header("Ablation A4: LOO vs Monte-Carlo Shapley payments");
    let n_owners = 10usize;
    let budget = wei_per_eth().div_rem(&U256::from(100u64)).0; // 0.01 ETH
    let (train, test) = mnist::generate(42, 3_000, 800);
    let mut rng = StdRng::seed_from_u64(5);
    let silos = partition::dirichlet(&train, n_owners, 10, 0.5, &mut rng);
    let cfg = TrainConfig {
        dims: vec![784, 50, 10],
        epochs: 5,
        ..TrainConfig::default()
    };
    let trained = train_all_silos(&silos, &cfg);
    let weights: Vec<usize> = trained.iter().map(|t| t.n_examples).collect();
    let models: Vec<_> = trained.into_iter().map(|t| t.model).collect();
    let n = models.len();

    // Cached value function: subsets recur across permutations.
    let cache: RefCell<HashMap<Vec<usize>, f64>> = RefCell::new(HashMap::new());
    let evals = RefCell::new(0usize);
    let value = |subset: &[usize]| -> f64 {
        if subset.is_empty() {
            return 0.1; // random guessing on 10 classes
        }
        let key = subset.to_vec();
        if let Some(&v) = cache.borrow().get(&key) {
            return v;
        }
        *evals.borrow_mut() += 1;
        let sub_models: Vec<_> = subset.iter().map(|&i| models[i].clone()).collect();
        let sub_weights: Vec<usize> = subset.iter().map(|&i| weights[i]).collect();
        let mut rng = StdRng::seed_from_u64(1234);
        let acc = aggregate(&sub_models, &sub_weights, &PfnmConfig::default(), &mut rng)
            .map(|r| r.model.accuracy(&test.images, &test.labels))
            .unwrap_or(0.0);
        cache.borrow_mut().insert(key, acc);
        acc
    };

    // LOO.
    let loo = loo_scores(n, |s| value(s));
    let loo_evals = *evals.borrow();
    let loo_pay = allocate_payments(&loo.contributions, &budget).expect("owners present");

    // Monte-Carlo Shapley (8 permutations).
    *evals.borrow_mut() = 0;
    let mut rng2 = StdRng::seed_from_u64(6);
    let shapley = shapley_monte_carlo(n, 8, &mut rng2, |s| value(s));
    let shapley_evals = *evals.borrow();
    let shapley_pay = allocate_payments(&shapley, &budget).expect("owners present");

    println!(
        "\n{:<8} {:>16} {:>16} {:>12} {:>12}",
        "Owner", "LOO (ETH)", "Shapley (ETH)", "LOO score", "Shapley"
    );
    for i in 0..n {
        println!(
            "{:<8} {:>16} {:>16} {:>+12.4} {:>+12.4}",
            i,
            format_eth(&loo_pay[i], 8),
            format_eth(&shapley_pay[i], 8),
            loo.contributions[i],
            shapley[i]
        );
    }

    // Spearman-ish agreement: fraction of pairs ranked the same way.
    let mut agree = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            pairs += 1;
            let l = loo.contributions[i] >= loo.contributions[j];
            let s = shapley[i] >= shapley[j];
            if l == s {
                agree += 1;
            }
        }
    }
    let agreement = agree as f64 / pairs as f64;
    println!(
        "\nvalue-function evaluations: LOO {loo_evals} (n+1), Shapley {shapley_evals} \
         (≤ samples×n, cached)"
    );
    println!(
        "pairwise rank agreement between mechanisms: {:.0} %",
        agreement * 100.0
    );
    println!(
        "takeaway: LOO costs {loo_evals} re-aggregations and approximates the \
         Shapley ranking at a fraction of its cost — a reasonable demo choice."
    );

    write_record(
        "ablation_incentives",
        &Record {
            loo_payments_eth: loo_pay.iter().map(|p| format_eth(p, 8)).collect(),
            shapley_payments_eth: shapley_pay.iter().map(|p| format_eth(p, 8)).collect(),
            loo_evaluations: loo_evals,
            shapley_evaluations: shapley_evals,
            rank_agreement: agreement,
        },
    );
}
