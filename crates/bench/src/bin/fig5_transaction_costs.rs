//! **Figure 5** — Transaction costs shown on MetaMask.
//!
//! The paper reports three transaction types with distinct gas fees:
//! contract deployment the heaviest (≈0.002 ETH), CID submission and
//! payment both small writes, and CID downloads free (no state change).
//!
//! This binary measures all three from the EVM gas meter under the default
//! ~12 gwei base fee and prints MetaMask-style confirmation summaries.
//!
//! Run: `cargo run -p ofl-bench --release --bin fig5_transaction_costs`

use ofl_bench::{header, write_record};
use ofl_core::config::MarketConfig;
use ofl_core::market::Marketplace;
use ofl_core::EndpointId;
use ofl_primitives::format_eth;
use ofl_primitives::u256::U256;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    label: String,
    gas_used: u64,
    fee_eth: String,
}

#[derive(Serialize)]
struct Record {
    rows: Vec<Row>,
    deploy_fee_eth: String,
    mean_upload_fee_eth: String,
    payment_fee_eth: String,
    download_fee_eth: String,
    paper_deploy_fee_eth: f64,
}

fn mean_fee(rows: &[(u64, U256)]) -> U256 {
    if rows.is_empty() {
        return U256::ZERO;
    }
    let total = rows
        .iter()
        .fold(U256::ZERO, |acc, (_, f)| acc.wrapping_add(f));
    total.div_rem(&U256::from(rows.len() as u64)).0
}

fn main() {
    header("Figure 5: transaction costs (gas fees) by transaction type");
    // A smaller FL config keeps the run fast; gas numbers are independent of
    // the ML workload size (the CID is always 46 bytes).
    let mut config = MarketConfig::small_test();
    config.n_owners = 10;
    config.n_train = 1000;
    let (mut market, report) = Marketplace::run(config).expect("session");

    println!(
        "\n{:<16} {:>12} {:>16}",
        "Transaction", "Gas used", "Fee (ETH)"
    );
    let mut rows = Vec::new();
    let mut uploads = Vec::new();
    let mut payments = Vec::new();
    let mut deploy = (0u64, U256::ZERO);
    for g in &report.gas {
        println!(
            "{:<16} {:>12} {:>16}",
            g.label,
            g.gas_used,
            format_eth(&g.fee_wei, 8)
        );
        rows.push(Row {
            label: g.label.clone(),
            gas_used: g.gas_used,
            fee_eth: format_eth(&g.fee_wei, 8),
        });
        if g.label == "deploy" {
            deploy = (g.gas_used, g.fee_wei);
        } else if g.label.starts_with("uploadCid") {
            uploads.push((g.gas_used, g.fee_wei));
        } else if g.label.starts_with("payment") {
            payments.push((g.gas_used, g.fee_wei));
        }
    }
    println!(
        "{:<16} {:>12} {:>16}   (eth_call reads are free)",
        "downloadCid", 0, "0.00000000"
    );

    let mean_upload = mean_fee(&uploads);
    let mean_payment = mean_fee(&payments);
    println!("\nsummary (cf. paper Fig 5b–d):");
    println!(
        "  deployment       {:>10} gas   {} ETH   (paper: ~0.002 ETH, heaviest)",
        deploy.0,
        format_eth(&deploy.1, 8)
    );
    println!(
        "  uploadCid (mean) {:>10} gas   {} ETH",
        uploads.iter().map(|(g, _)| *g).sum::<u64>() / uploads.len().max(1) as u64,
        format_eth(&mean_upload, 8)
    );
    println!(
        "  payment (mean)   {:>10} gas   {} ETH",
        21_000,
        format_eth(&mean_payment, 8)
    );
    println!("  download CIDs             0 gas   0.00000000 ETH (no data written)");
    println!(
        "\nordering check: deploy > uploadCid > payment > download: {}",
        deploy.0 > uploads[0].0 && uploads[0].0 > 21_000
    );

    // MetaMask-style confirmation (Fig 5a) for an uploadCid. The dialog's
    // numbers come from the same RPC signing-environment batch the wallet
    // signs from — not a local chain read.
    let owner = market.owners[0].address;
    let contract = market.contract.expect("deployed").address;
    let data = ofl_eth::contracts::CidStorage::upload_cid_calldata(
        "QmYwAPJzv5CZsnA625s3Xf2nemtYgPpHdWEz79ojWnPbdG",
    );
    let (env, _rpc_cost) = market
        .world
        .tx_env(EndpointId(0), &owner, Some(&contract), &data)
        .expect("signing environment over RPC");
    let summary =
        market
            .session
            .wallet
            .summarize_with_env(&env, Some(&contract), &U256::ZERO, &data);
    println!("\nMetaMask confirmation dialog (Fig 5a analogue):");
    for line in summary.display().lines() {
        println!("  | {line}");
    }

    write_record(
        "fig5_transaction_costs",
        &Record {
            rows,
            deploy_fee_eth: format_eth(&deploy.1, 8),
            mean_upload_fee_eth: format_eth(&mean_upload, 8),
            payment_fee_eth: format_eth(&mean_payment, 8),
            download_fee_eth: "0".into(),
            paper_deploy_fee_eth: 0.002,
        },
    );
}
