//! **Table 1** — The payment table: per-wallet ETH paid from the buyer's
//! 0.01 ETH budget, proportional to LOO contribution.
//!
//! Run: `cargo run -p ofl-bench --release --bin table1_payments`

use ofl_bench::{header, write_record};
use ofl_core::config::MarketConfig;
use ofl_core::market::{render_payment_table, Marketplace};
use ofl_primitives::format_eth;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    wallets: Vec<String>,
    payments_eth: Vec<String>,
    total_eth: String,
    budget_eth: String,
    max_over_min: f64,
    paper_max_over_min: f64,
}

fn main() {
    header("Table 1: LOO payment table (budget 0.01 ETH, 10 owners)");
    let config = MarketConfig::default();
    let budget = config.budget_wei;
    let (_, report) = Marketplace::run(config).expect("session");

    println!("\n{}", render_payment_table(&report.payments));
    println!(
        "total paid: {} ETH (budget {} ETH)",
        format_eth(&report.total_paid(), 8),
        format_eth(&budget, 8)
    );

    let amounts: Vec<f64> = report
        .payments
        .iter()
        .map(|p| format_eth(&p.amount_wei, 18).parse::<f64>().unwrap_or(0.0))
        .collect();
    let max = amounts.iter().cloned().fold(0.0, f64::max);
    let min_nonzero = amounts
        .iter()
        .cloned()
        .filter(|&a| a > 0.0)
        .fold(f64::INFINITY, f64::min);
    let spread = if min_nonzero.is_finite() && min_nonzero > 0.0 {
        max / min_nonzero
    } else {
        f64::NAN
    };
    // Paper Table 1: max 0.00162366, min 0.00041129 → spread ≈ 3.95.
    println!("max/min payment spread: {spread:.2} (paper: ≈3.95)");
    assert_eq!(
        report.total_paid(),
        budget,
        "payments must exhaust the budget"
    );

    write_record(
        "table1_payments",
        &Record {
            wallets: report
                .payments
                .iter()
                .map(|p| p.address.to_checksum())
                .collect(),
            payments_eth: report
                .payments
                .iter()
                .map(|p| format_eth(&p.amount_wei, 8))
                .collect(),
            total_eth: format_eth(&report.total_paid(), 8),
            budget_eth: format_eth(&budget, 8),
            max_over_min: spread,
            paper_max_over_min: 3.95,
        },
    );
}
