//! **Engine bench** — serial workflow vs the discrete-event session engine.
//!
//! The serial driver pays one ~12 s blockchain confirmation *per owner*
//! because every participant acts alone on one clock. The event engine
//! lets owners train, upload, and broadcast concurrently, so their
//! `uploadCid` transactions share 12-second blocks and the whole session
//! collapses toward a handful of slots. This bench sweeps the owner count
//! and reports both engines' total *virtual* session time, the speedup,
//! and how many distinct owners the fullest block carried.
//!
//! Run: `cargo run -p ofl-bench --release --bin bench_session_engine`

use ofl_bench::{header, write_record};
use ofl_core::config::{MarketConfig, PartitionScheme};
use ofl_core::engine::{EngineConfig, MultiMarket};
use ofl_core::scenario::Scenario;
use ofl_fl::client::TrainConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    owners: usize,
    serial_secs: f64,
    event_secs: f64,
    speedup: f64,
    max_owners_in_one_block: usize,
    blocks_with_cid_txs: usize,
}

#[derive(Serialize)]
struct Record {
    rows: Vec<Row>,
    multi_market_4x8_secs: f64,
}

fn sweep_config(owners: usize) -> MarketConfig {
    MarketConfig {
        n_owners: owners,
        n_train: 200 * owners,
        n_test: 200,
        partition: PartitionScheme::Iid,
        seed: 42,
        train: TrainConfig {
            dims: vec![784, 16, 10],
            epochs: 1,
            ..TrainConfig::default()
        },
        ..MarketConfig::small_test()
    }
}

fn main() {
    header("Session engine: serial vs discrete-event virtual time");

    let mut rows = Vec::new();
    println!(
        "{:>7} {:>13} {:>13} {:>9} {:>22}",
        "owners", "serial (s)", "event (s)", "speedup", "max owners per block"
    );
    for owners in [4usize, 8, 16, 32] {
        let config = sweep_config(owners);
        let serial = Scenario::new(format!("serial-{owners}"), config.clone())
            .run()
            .expect("serial session");
        let (_, report) = MultiMarket::new(vec![config])
            .run(&EngineConfig::default(), &[])
            .expect("event-driven session");
        let event_secs = report.sessions[0].total_sim_seconds;
        let speedup = serial.total_sim_seconds / event_secs;
        println!(
            "{:>7} {:>13.1} {:>13.1} {:>8.1}x {:>22}",
            owners,
            serial.total_sim_seconds,
            event_secs,
            speedup,
            report.max_owners_sharing_block()
        );
        rows.push(Row {
            owners,
            serial_secs: serial.total_sim_seconds,
            event_secs,
            speedup,
            max_owners_in_one_block: report.max_owners_sharing_block(),
            blocks_with_cid_txs: report.cid_txs_per_block.len(),
        });
    }

    // One shared chain, four markets of eight owners each — the whole fleet
    // finishes in roughly the virtual time one serial owner used to need.
    let (_, multi) = MultiMarket::replicated(&sweep_config(8), 4)
        .run(&EngineConfig::default(), &[])
        .expect("multi-market run");
    println!(
        "\n4 markets × 8 owners on one chain: {:.1} virtual s total, fullest block carried {} owners",
        multi.total_sim_seconds,
        multi.max_owners_sharing_block()
    );

    write_record(
        "bench_session_engine",
        &Record {
            rows,
            multi_market_4x8_secs: multi.total_sim_seconds,
        },
    );
}
