//! **Engine bench** — serial workflow vs the discrete-event session engine.
//!
//! The serial driver pays one ~12 s blockchain confirmation *per owner*
//! because every participant acts alone on one clock. The event engine
//! lets owners train, upload, and broadcast concurrently, so their
//! `uploadCid` transactions share 12-second blocks and the whole session
//! collapses toward a handful of slots. This bench sweeps the owner count
//! and reports both engines' total *virtual* session time, the speedup,
//! and how many distinct owners the fullest block carried.
//!
//! Run: `cargo run -p ofl-bench --release --bin bench_session_engine`

use ofl_bench::{header, write_bench, write_record};
use ofl_core::config::{MarketConfig, PartitionScheme};
use ofl_core::engine::{EngineConfig, MultiMarket};
use ofl_core::scenario::Scenario;
use ofl_core::world::{ShardSpec, DEFAULT_TX_WIRE_BYTES};
use ofl_fl::client::TrainConfig;
use ofl_rpc::provision_socket_provider;
use ofl_rpcd::PipeTransport;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    owners: usize,
    serial_secs: f64,
    event_secs: f64,
    speedup: f64,
    max_owners_in_one_block: usize,
    blocks_with_cid_txs: usize,
}

#[derive(Serialize)]
struct PollingRow {
    mode: &'static str,
    provider_round_trips: u64,
    receipt_poll_requests: u64,
    receipt_poll_virtual_secs: f64,
    rpc_virtual_secs_total: f64,
    session_secs: f64,
}

#[derive(Serialize)]
struct CidReadRow {
    mode: &'static str,
    provider_round_trips: u64,
    eth_call_requests: u64,
    eth_call_virtual_secs: f64,
    download_phase_secs: f64,
}

#[derive(Serialize)]
struct BoundaryRow {
    backend: &'static str,
    provider_round_trips: u64,
    rpc_requests: u64,
    rpc_virtual_secs: f64,
    session_secs: f64,
    wall_millis: u64,
}

#[derive(Serialize)]
struct ShardRow {
    shards: usize,
    total_secs: f64,
    max_owners_in_one_block: usize,
    blocks_with_cid_txs: usize,
}

#[derive(Serialize)]
struct Record {
    rows: Vec<Row>,
    multi_market_4x8_secs: f64,
    receipt_polling_32_owners: Vec<PollingRow>,
    cid_reads_32_owners: Vec<CidReadRow>,
    sharding_4x8: Vec<ShardRow>,
    backend_boundary_8_owners: Vec<BoundaryRow>,
}

fn sweep_config(owners: usize) -> MarketConfig {
    MarketConfig {
        n_owners: owners,
        n_train: 200 * owners,
        n_test: 200,
        partition: PartitionScheme::Iid,
        seed: 42,
        train: TrainConfig {
            dims: vec![784, 16, 10],
            epochs: 1,
            ..TrainConfig::default()
        },
        ..MarketConfig::small_test()
    }
}

fn main() {
    header("Session engine: serial vs discrete-event virtual time");

    let mut rows = Vec::new();
    println!(
        "{:>7} {:>13} {:>13} {:>9} {:>22}",
        "owners", "serial (s)", "event (s)", "speedup", "max owners per block"
    );
    for owners in [4usize, 8, 16, 32] {
        let config = sweep_config(owners);
        let serial = Scenario::new(format!("serial-{owners}"), config.clone())
            .run()
            .expect("serial session");
        let (_, report) = MultiMarket::new(vec![config])
            .run(&EngineConfig::default(), &[])
            .expect("event-driven session");
        let event_secs = report.sessions[0].total_sim_seconds;
        let speedup = serial.total_sim_seconds / event_secs;
        println!(
            "{:>7} {:>13.1} {:>13.1} {:>8.1}x {:>22}",
            owners,
            serial.total_sim_seconds,
            event_secs,
            speedup,
            report.max_owners_sharing_block()
        );
        rows.push(Row {
            owners,
            serial_secs: serial.total_sim_seconds,
            event_secs,
            speedup,
            max_owners_in_one_block: report.max_owners_sharing_block(),
            blocks_with_cid_txs: report.cid_txs_per_block.len(),
        });
    }

    // One shared chain, four markets of eight owners each — the whole fleet
    // finishes in roughly the virtual time one serial owner used to need.
    let (_, multi) = MultiMarket::replicated(&sweep_config(8), 4)
        .run(&EngineConfig::default(), &[])
        .expect("multi-market run");
    println!(
        "\n4 markets × 8 owners on one chain: {:.1} virtual s total, fullest block carried {} owners",
        multi.total_sim_seconds,
        multi.max_owners_sharing_block()
    );

    // Batched vs per-call receipt polling for the 32-owner session: with
    // batching, the engine's per-slot poll for every pending transaction is
    // ONE provider round trip; without it, every pending hash pays its own.
    println!("\nreceipt polling, 32 owners (EthApi::batch vs one request per hash):");
    println!(
        "{:>10} {:>13} {:>15} {:>17} {:>15} {:>13}",
        "mode", "round trips", "poll requests", "poll virtual (s)", "rpc total (s)", "session (s)"
    );
    let polling: Vec<PollingRow> = [("batched", true), ("per-call", false)]
        .into_iter()
        .map(|(mode, batch_receipt_polls)| {
            let engine = EngineConfig {
                batch_receipt_polls,
                ..EngineConfig::default()
            };
            let (_, report) = MultiMarket::new(vec![sweep_config(32)])
                .run(&engine, &[])
                .expect("event-driven session");
            let polls = report.rpc.method("eth_getTransactionReceipt");
            let row = PollingRow {
                mode,
                provider_round_trips: report.rpc.round_trips,
                receipt_poll_requests: polls.calls,
                receipt_poll_virtual_secs: polls.cost.as_secs_f64(),
                rpc_virtual_secs_total: report.rpc.total_cost().as_secs_f64(),
                session_secs: report.sessions[0].total_sim_seconds,
            };
            println!(
                "{:>10} {:>13} {:>15} {:>17.3} {:>15.3} {:>13.1}",
                row.mode,
                row.provider_round_trips,
                row.receipt_poll_requests,
                row.receipt_poll_virtual_secs,
                row.rpc_virtual_secs_total,
                row.session_secs
            );
            row
        })
        .collect();

    // Batched vs per-index CID downloads for the 32-owner session: the
    // buyer's step-5 read (Fig 7b "download CIDs") is `cidCount` + ONE
    // batched `getCid` round trip, against one `eth_call` per index.
    println!("\nCID downloads, 32 owners (cidCount + one batch vs one eth_call per index):");
    println!(
        "{:>10} {:>13} {:>15} {:>17} {:>15}",
        "mode", "round trips", "eth_call reqs", "call virtual (s)", "download (s)"
    );
    let cid_reads: Vec<CidReadRow> = [("batched", true), ("per-call", false)]
        .into_iter()
        .map(|(mode, batch_cid_reads)| {
            let engine = EngineConfig {
                batch_cid_reads,
                ..EngineConfig::default()
            };
            let (_, report) = MultiMarket::new(vec![sweep_config(32)])
                .run(&engine, &[])
                .expect("event-driven session");
            let calls = report.rpc.method("eth_call");
            let download_phase_secs = report.sessions[0]
                .buyer_breakdown
                .iter()
                .find(|(label, _, _)| label == "download CIDs")
                .map(|(_, d, _)| d.as_secs_f64())
                .unwrap_or(0.0);
            let row = CidReadRow {
                mode,
                provider_round_trips: report.rpc.round_trips,
                eth_call_requests: calls.calls,
                eth_call_virtual_secs: calls.cost.as_secs_f64(),
                download_phase_secs,
            };
            println!(
                "{:>10} {:>13} {:>15} {:>17.3} {:>15.3}",
                row.mode,
                row.provider_round_trips,
                row.eth_call_requests,
                row.eth_call_virtual_secs,
                row.download_phase_secs
            );
            row
        })
        .collect();

    // Same-shard vs cross-shard placement for the 4×8 fleet: one chain
    // carrying all 32 CID transactions, versus two or four chains carrying
    // only their own markets'.
    println!("\nplacement, 4 markets x 8 owners (same-shard vs cross-shard):");
    println!(
        "{:>7} {:>12} {:>22} {:>20}",
        "shards", "total (s)", "max owners per block", "blocks w/ CID txs"
    );
    let sharding: Vec<ShardRow> = [1usize, 2, 4]
        .into_iter()
        .map(|shards| {
            let (_, report) = MultiMarket::replicated_sharded(&sweep_config(8), 4, shards)
                .run(&EngineConfig::default(), &[])
                .expect("sharded run");
            let row = ShardRow {
                shards,
                total_secs: report.total_sim_seconds,
                max_owners_in_one_block: report.max_owners_sharing_block(),
                blocks_with_cid_txs: report.cid_txs_per_block.len(),
            };
            println!(
                "{:>7} {:>12.1} {:>22} {:>20}",
                row.shards, row.total_secs, row.max_owners_in_one_block, row.blocks_with_cid_txs
            );
            row
        })
        .collect();

    // In-process vs socket-backed: the same 8-owner session served by the
    // local SimProvider and by an rpcd server connection over the
    // deterministic in-memory pipe (full frame codec both directions). The
    // boundary must cost zero *virtual* time and zero extra round trips —
    // only wall-clock serialization — or it is not a transparent backend.
    println!(
        "
backend boundary, 8 owners (in-process vs rpcd over the frame codec):"
    );
    println!(
        "{:>12} {:>13} {:>13} {:>15} {:>13} {:>11}",
        "backend", "round trips", "rpc requests", "rpc virtual (s)", "session (s)", "wall (ms)"
    );
    let boundary: Vec<BoundaryRow> = [("in-process", false), ("socket", true)]
        .into_iter()
        .map(|(backend, remote)| {
            let config = sweep_config(8);
            let profile = config.profile;
            let started = std::time::Instant::now();
            let mm = MultiMarket::with_shards_via(vec![config], 1, |shard| {
                if remote {
                    ShardSpec::Mounted(
                        provision_socket_provider(
                            Box::new(PipeTransport::new()),
                            shard.chain.clone(),
                            shard.genesis.clone(),
                            profile,
                            DEFAULT_TX_WIRE_BYTES,
                            shard.knobs(),
                        )
                        .expect("pipe provisions"),
                    )
                } else {
                    ShardSpec::Local(shard)
                }
            });
            let (_, report) = mm.run(&EngineConfig::default(), &[]).expect("boundary run");
            let row = BoundaryRow {
                backend,
                provider_round_trips: report.rpc.round_trips,
                rpc_requests: report.rpc.total_calls(),
                rpc_virtual_secs: report.rpc.total_cost().as_secs_f64(),
                session_secs: report.sessions[0].total_sim_seconds,
                wall_millis: started.elapsed().as_millis() as u64,
            };
            println!(
                "{:>12} {:>13} {:>13} {:>15.3} {:>13.1} {:>11}",
                row.backend,
                row.provider_round_trips,
                row.rpc_requests,
                row.rpc_virtual_secs,
                row.session_secs,
                row.wall_millis
            );
            row
        })
        .collect();
    assert_eq!(
        (
            boundary[0].provider_round_trips,
            boundary[0].rpc_virtual_secs,
            boundary[0].session_secs
        ),
        (
            boundary[1].provider_round_trips,
            boundary[1].rpc_virtual_secs,
            boundary[1].session_secs
        ),
        "the process boundary must be invisible in virtual time"
    );

    let record = Record {
        rows,
        multi_market_4x8_secs: multi.total_sim_seconds,
        receipt_polling_32_owners: polling,
        cid_reads_32_owners: cid_reads,
        sharding_4x8: sharding,
        backend_boundary_8_owners: boundary,
    };
    write_record("bench_session_engine", &record);
    // The same record also lands in the durable perf trajectory at the
    // repo root, where CI uploads it per PR.
    write_bench("session_engine", &record);
}
