//! **Engine bench** — serial workflow vs the discrete-event session engine.
//!
//! The serial driver pays one ~12 s blockchain confirmation *per owner*
//! because every participant acts alone on one clock. The event engine
//! lets owners train, upload, and broadcast concurrently, so their
//! `uploadCid` transactions share 12-second blocks and the whole session
//! collapses toward a handful of slots. This bench sweeps the owner count
//! and reports both engines' total *virtual* session time, the speedup,
//! and how many distinct owners the fullest block carried.
//!
//! Run: `cargo run -p ofl-bench --release --bin bench_session_engine`

use ofl_bench::{header, write_record};
use ofl_core::config::{MarketConfig, PartitionScheme};
use ofl_core::engine::{EngineConfig, MultiMarket};
use ofl_core::scenario::Scenario;
use ofl_fl::client::TrainConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    owners: usize,
    serial_secs: f64,
    event_secs: f64,
    speedup: f64,
    max_owners_in_one_block: usize,
    blocks_with_cid_txs: usize,
}

#[derive(Serialize)]
struct PollingRow {
    mode: &'static str,
    provider_round_trips: u64,
    receipt_poll_requests: u64,
    receipt_poll_virtual_secs: f64,
    rpc_virtual_secs_total: f64,
    session_secs: f64,
}

#[derive(Serialize)]
struct Record {
    rows: Vec<Row>,
    multi_market_4x8_secs: f64,
    receipt_polling_32_owners: Vec<PollingRow>,
}

fn sweep_config(owners: usize) -> MarketConfig {
    MarketConfig {
        n_owners: owners,
        n_train: 200 * owners,
        n_test: 200,
        partition: PartitionScheme::Iid,
        seed: 42,
        train: TrainConfig {
            dims: vec![784, 16, 10],
            epochs: 1,
            ..TrainConfig::default()
        },
        ..MarketConfig::small_test()
    }
}

fn main() {
    header("Session engine: serial vs discrete-event virtual time");

    let mut rows = Vec::new();
    println!(
        "{:>7} {:>13} {:>13} {:>9} {:>22}",
        "owners", "serial (s)", "event (s)", "speedup", "max owners per block"
    );
    for owners in [4usize, 8, 16, 32] {
        let config = sweep_config(owners);
        let serial = Scenario::new(format!("serial-{owners}"), config.clone())
            .run()
            .expect("serial session");
        let (_, report) = MultiMarket::new(vec![config])
            .run(&EngineConfig::default(), &[])
            .expect("event-driven session");
        let event_secs = report.sessions[0].total_sim_seconds;
        let speedup = serial.total_sim_seconds / event_secs;
        println!(
            "{:>7} {:>13.1} {:>13.1} {:>8.1}x {:>22}",
            owners,
            serial.total_sim_seconds,
            event_secs,
            speedup,
            report.max_owners_sharing_block()
        );
        rows.push(Row {
            owners,
            serial_secs: serial.total_sim_seconds,
            event_secs,
            speedup,
            max_owners_in_one_block: report.max_owners_sharing_block(),
            blocks_with_cid_txs: report.cid_txs_per_block.len(),
        });
    }

    // One shared chain, four markets of eight owners each — the whole fleet
    // finishes in roughly the virtual time one serial owner used to need.
    let (_, multi) = MultiMarket::replicated(&sweep_config(8), 4)
        .run(&EngineConfig::default(), &[])
        .expect("multi-market run");
    println!(
        "\n4 markets × 8 owners on one chain: {:.1} virtual s total, fullest block carried {} owners",
        multi.total_sim_seconds,
        multi.max_owners_sharing_block()
    );

    // Batched vs per-call receipt polling for the 32-owner session: with
    // batching, the engine's per-slot poll for every pending transaction is
    // ONE provider round trip; without it, every pending hash pays its own.
    println!("\nreceipt polling, 32 owners (EthApi::batch vs one request per hash):");
    println!(
        "{:>10} {:>13} {:>15} {:>17} {:>15} {:>13}",
        "mode", "round trips", "poll requests", "poll virtual (s)", "rpc total (s)", "session (s)"
    );
    let polling: Vec<PollingRow> = [("batched", true), ("per-call", false)]
        .into_iter()
        .map(|(mode, batch_receipt_polls)| {
            let engine = EngineConfig {
                batch_receipt_polls,
                ..EngineConfig::default()
            };
            let (_, report) = MultiMarket::new(vec![sweep_config(32)])
                .run(&engine, &[])
                .expect("event-driven session");
            let polls = report.rpc.method("eth_getTransactionReceipt");
            let row = PollingRow {
                mode,
                provider_round_trips: report.rpc.round_trips,
                receipt_poll_requests: polls.calls,
                receipt_poll_virtual_secs: polls.cost.as_secs_f64(),
                rpc_virtual_secs_total: report.rpc.total_cost().as_secs_f64(),
                session_secs: report.sessions[0].total_sim_seconds,
            };
            println!(
                "{:>10} {:>13} {:>15} {:>17.3} {:>15.3} {:>13.1}",
                row.mode,
                row.provider_round_trips,
                row.receipt_poll_requests,
                row.receipt_poll_virtual_secs,
                row.rpc_virtual_secs_total,
                row.session_secs
            );
            row
        })
        .collect();

    write_record(
        "bench_session_engine",
        &Record {
            rows,
            multi_market_4x8_secs: multi.total_sim_seconds,
            receipt_polling_32_owners: polling,
        },
    );
}
