//! **Ablation A3** — Why PFNM: one-shot aggregator comparison under three
//! partition regimes.
//!
//! Compares the one-shot aggregators this repo implements — PFNM, naive
//! weight averaging, ensemble soft-voting, FedOV-lite confidence voting —
//! plus FedAvg limited to a single round, across IID, Dirichlet(0.5), and
//! 2-shard partitions.
//!
//! Run: `cargo run -p ofl-bench --release --bin ablation_aggregators`

use ofl_bench::{header, write_record};
use ofl_data::{mnist, partition};
use ofl_fl::baselines::{average_weights, fedavg, train_all_silos, Ensemble};
use ofl_fl::client::TrainConfig;
use ofl_fl::pfnm::{aggregate, PfnmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    partition: String,
    algorithm: String,
    accuracy: f64,
    best_local: f64,
    worst_local: f64,
}

#[derive(Serialize)]
struct Record {
    n_owners: usize,
    rows: Vec<Row>,
}

fn main() {
    header("Ablation A3: one-shot aggregators across partition regimes");
    let n_owners = 10;
    let (train, test) = mnist::generate(42, 4_000, 1_000);
    let cfg = TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    };

    let mut rows = Vec::new();
    println!(
        "\n{:<16} {:<22} {:>10} {:>12} {:>12}",
        "Partition", "Algorithm", "Accuracy", "Best local", "Worst local"
    );
    for (pname, silos) in [
        ("IID", {
            let mut rng = StdRng::seed_from_u64(1);
            partition::iid(&train, n_owners, &mut rng)
        }),
        ("Dirichlet(0.5)", {
            let mut rng = StdRng::seed_from_u64(2);
            partition::dirichlet(&train, n_owners, 10, 0.5, &mut rng)
        }),
        ("2-shards", {
            let mut rng = StdRng::seed_from_u64(3);
            partition::shards(&train, n_owners, 2, &mut rng)
        }),
    ] {
        let trained = train_all_silos(&silos, &cfg);
        let weights: Vec<usize> = trained.iter().map(|t| t.n_examples).collect();
        let local_accs: Vec<f64> = trained
            .iter()
            .map(|t| t.model.accuracy(&test.images, &test.labels))
            .collect();
        let best = local_accs.iter().cloned().fold(0.0, f64::max);
        let worst = local_accs.iter().cloned().fold(1.0, f64::min);
        let models: Vec<_> = trained.into_iter().map(|t| t.model).collect();

        let mut rng = StdRng::seed_from_u64(9);
        let pfnm_acc = aggregate(&models, &weights, &PfnmConfig::default(), &mut rng)
            .map(|r| r.model.accuracy(&test.images, &test.labels))
            .unwrap_or(0.0);
        let naive_acc = average_weights(&models, &weights)
            .map(|m| m.accuracy(&test.images, &test.labels))
            .unwrap_or(0.0);
        let ensemble = Ensemble::new(models.clone(), &weights).expect("models present");
        let ens_acc = ensemble.accuracy(&test.images, &test.labels);
        let vote_acc = ensemble.accuracy_confidence_vote(&test.images, &test.labels);
        let fedavg1_acc = fedavg(&silos, &cfg, 1)
            .map(|m| m.accuracy(&test.images, &test.labels))
            .unwrap_or(0.0);

        for (alg, acc) in [
            ("PFNM (paper)", pfnm_acc),
            ("naive averaging", naive_acc),
            ("ensemble (soft)", ens_acc),
            ("FedOV-lite vote", vote_acc),
            ("FedAvg (1 round)", fedavg1_acc),
        ] {
            println!(
                "{:<16} {:<22} {:>9.2} % {:>11.2} % {:>11.2} %",
                pname,
                alg,
                acc * 100.0,
                best * 100.0,
                worst * 100.0
            );
            rows.push(Row {
                partition: pname.into(),
                algorithm: alg.into(),
                accuracy: acc,
                best_local: best,
                worst_local: worst,
            });
        }
        println!();
    }

    println!(
        "expected shape: PFNM and the ensemble dominate naive averaging and \
         single-round FedAvg, with the gap widening as partitions skew — \
         the reason the paper adopts PFNM for one-shot aggregation."
    );

    write_record("ablation_aggregators", &Record { n_owners, rows });
}
