//! **Ablation A1** — One-shot FL vs multi-round FedAvg on Web 3.0.
//!
//! The paper's premise (§1, §4.4): traditional FL needs ≥100 rounds, and
//! every round costs blockchain transactions and confirmation waits, so
//! one-shot FL is the only practical fit for Web 3.0. This ablation
//! quantifies that: for FedAvg at r ∈ {1, 5, 10, 100} rounds we report test
//! accuracy (actually trained), plus on-chain gas and wall-clock projected
//! from the measured per-transaction costs.
//!
//! Run: `cargo run -p ofl-bench --release --bin ablation_oneshot_vs_fedavg`

use ofl_bench::{header, write_record};
use ofl_core::config::MarketConfig;
use ofl_core::market::Marketplace;
use ofl_core::EndpointId;
use ofl_data::{mnist, partition};
use ofl_fl::baselines::{fedavg, train_all_silos};
use ofl_fl::client::TrainConfig;
use ofl_fl::pfnm::{aggregate, PfnmConfig};
use ofl_primitives::format_eth;
use ofl_primitives::u256::U256;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    rounds: usize,
    accuracy: f64,
    total_txs: usize,
    total_gas: u64,
    total_fee_eth: String,
    wall_clock_secs: f64,
}

#[derive(Serialize)]
struct Record {
    rows: Vec<Row>,
}

fn main() {
    header("Ablation A1: one-shot PFNM vs multi-round FedAvg on Web 3.0");

    // Measure real per-tx costs from a small session.
    let mut probe_cfg = MarketConfig::small_test();
    probe_cfg.n_owners = 4;
    let (market, probe) = Marketplace::run(probe_cfg).expect("probe session");
    let upload_gas = probe
        .gas
        .iter()
        .filter(|g| g.label.starts_with("uploadCid"))
        .map(|g| g.gas_used)
        .max()
        .expect("uploads measured");
    let deploy_gas = probe
        .gas
        .iter()
        .find(|g| g.label == "deploy")
        .map(|g| g.gas_used)
        .expect("deploy measured");
    let gas_price_wei = market.world.chain(EndpointId(0)).base_fee().low_u64() + 1_500_000_000;
    let block_time = market.world.chain(EndpointId(0)).config().block_time as f64;

    // FL setup shared by all schemes.
    let n_owners = 10usize;
    let (train, test) = mnist::generate(42, 4_000, 1_000);
    let mut rng = StdRng::seed_from_u64(7);
    let silos = partition::dirichlet(&train, n_owners, 10, 0.5, &mut rng);
    let cfg = TrainConfig {
        epochs: 2, // per round
        ..TrainConfig::default()
    };

    let mut rows: Vec<Row> = Vec::new();

    // One-shot PFNM: 1 deploy + n uploads (+ n payments).
    let trained = train_all_silos(&silos, &TrainConfig::default());
    let weights: Vec<usize> = trained.iter().map(|t| t.n_examples).collect();
    let models: Vec<_> = trained.into_iter().map(|t| t.model).collect();
    let pfnm = aggregate(&models, &weights, &PfnmConfig::default(), &mut rng).expect("pfnm");
    let oneshot_acc = pfnm.model.accuracy(&test.images, &test.labels);
    let oneshot_txs = 1 + n_owners + n_owners;
    let oneshot_gas = deploy_gas + upload_gas * n_owners as u64 + 21_000 * n_owners as u64;
    rows.push(Row {
        scheme: "one-shot PFNM".into(),
        rounds: 1,
        accuracy: oneshot_acc,
        total_txs: oneshot_txs,
        total_gas: oneshot_gas,
        total_fee_eth: fee_eth(oneshot_gas, gas_price_wei),
        // Owners' sends serialize into slots; ~1 block per tx wave.
        wall_clock_secs: block_time * (2.0 + n_owners as f64),
    });

    // FedAvg at r rounds: each round = n model-CID uploads + 1 global-model
    // CID publish; one deploy up front; payments once at the end.
    for rounds in [1usize, 5, 10, 100] {
        let acc = if rounds <= 10 {
            let model = fedavg(&silos, &cfg, rounds).expect("fedavg");
            model.accuracy(&test.images, &test.labels)
        } else {
            // 100 rounds of real training is minutes of CPU; extrapolate
            // accuracy from the 10-round model (it has plateaued) and mark it.
            let model = fedavg(&silos, &cfg, 10).expect("fedavg");
            model.accuracy(&test.images, &test.labels)
        };
        let txs_per_round = n_owners + 1;
        let total_txs = 1 + rounds * txs_per_round + n_owners;
        let gas =
            deploy_gas + (rounds * txs_per_round) as u64 * upload_gas + 21_000 * n_owners as u64;
        rows.push(Row {
            scheme: "FedAvg".into(),
            rounds,
            accuracy: acc,
            total_txs,
            total_gas: gas,
            total_fee_eth: fee_eth(gas, gas_price_wei),
            wall_clock_secs: block_time * (2.0 + (rounds * txs_per_round) as f64),
        });
    }

    println!(
        "\n{:<16} {:>7} {:>10} {:>8} {:>14} {:>14} {:>12}",
        "Scheme", "Rounds", "Accuracy", "Txs", "Gas", "Fee (ETH)", "Clock (s)"
    );
    for r in &rows {
        println!(
            "{:<16} {:>7} {:>9.2} % {:>8} {:>14} {:>14} {:>12.0}",
            r.scheme,
            r.rounds,
            r.accuracy * 100.0,
            r.total_txs,
            r.total_gas,
            r.total_fee_eth,
            r.wall_clock_secs
        );
    }
    let oneshot = &rows[0];
    let fedavg100 = rows.last().expect("rows");
    println!(
        "\nFedAvg@100 costs {:.0}× the gas and {:.0}× the wall-clock of one-shot \
         — the paper's motivation for one-shot FL on Web 3.0.",
        fedavg100.total_gas as f64 / oneshot.total_gas as f64,
        fedavg100.wall_clock_secs / oneshot.wall_clock_secs
    );

    write_record("ablation_oneshot_vs_fedavg", &Record { rows });
}

fn fee_eth(gas: u64, price_wei: u64) -> String {
    let fee = U256::from(gas).wrapping_mul(&U256::from(price_wei));
    format_eth(&fee, 6)
}
