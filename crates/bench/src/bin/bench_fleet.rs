//! **Fleet bench** — thousand-owner load generation through the event
//! engine, against in-process and socket backends.
//!
//! Builds a `MultiMarket` fleet (owners split across decorrelated market
//! cells, round-robined over shards) using the linear-time
//! `FinalizePolicy::FedAvgProportional` pipeline, and drives the same
//! seeded run four ways:
//!
//! 1. **in-process** — every shard a local `SimProvider` (the reference).
//! 2. **socket / jumbo** — every shard mounted over a real TCP `rpcd`
//!    daemon, batches shipped as one `Frame::Batch` (the PR-5 wire mode).
//! 3. **socket / lockstep** — one request-id frame per RPC request, each
//!    awaited before the next is sent.
//! 4. **socket / pipelined** — the *same* frames as lockstep, but a window
//!    of N kept in flight per connection.
//!
//! All four runs must be bit-identical in virtual time and metering (the
//! backend boundary and the wire discipline are invisible to the
//! simulation), and lockstep/pipelined must exchange identical frames. A
//! fifth leg re-runs the in-process fleet with the shard executor flipped
//! (parallel workers vs strictly serial) and pins the digests equal — the
//! determinism contract of `ofl_netsim::par`. A final *wire drive* then
//! ships the same fleet-scale frame load through `roundtrip_many` at
//! window 1 vs window N against a live daemon, where pipelining must
//! strictly cut wall-clock time at equal round trips. Results — including
//! the sign/codec/queue/aggregate/wire hot-path breakdown of the reference
//! leg — go to the durable perf trajectory `BENCH_fleet.json` at the repo
//! root.
//!
//! With `--subscribe`, a further leg re-runs the in-process fleet with the
//! engine's push watchers open on every shard and records the push-vs-poll
//! round-trip comparison in a `subscription` block of the record.
//!
//! Run: `cargo run -p ofl-bench --release --bin bench_fleet -- \
//!       [--owners 1024] [--markets N] [--shards 4] [--window 64] \
//!       [--serial] [--subscribe] [--json]`

use ofl_bench::{header, write_bench};
use ofl_core::config::MarketConfig;
use ofl_core::engine::{EngineConfig, EngineReport, MultiMarket};
use ofl_core::world::{ShardConfig, ShardSpec, DEFAULT_TX_WIRE_BYTES};
use ofl_eth::chain::ChainConfig;
use ofl_netsim::par::set_parallel;
use ofl_primitives::{phase_snapshot, reset_phase_times, set_phase_timing, PhaseTimes};
use ofl_rpc::{
    provision_socket_provider_via, BackstageOp, BackstageReply, Frame, ProviderMetrics,
    RemoteEndpoint, WireCounter, WireMode,
};
use ofl_rpcd::DaemonOptions;
use serde::Serialize;
use std::net::TcpListener;

#[derive(Serialize)]
struct EndpointRow {
    endpoint: usize,
    round_trips: u64,
    rpc_requests: u64,
    rpc_errors: u64,
    rpc_virtual_secs: f64,
}

#[derive(Serialize)]
struct RunRow {
    backend: &'static str,
    wire_mode: String,
    wall_secs: f64,
    virtual_secs: f64,
    owners_per_virtual_sec: f64,
    owners_per_wall_sec: f64,
    round_trips: u64,
    rpc_requests: u64,
    wire_frames_sent: u64,
    wire_frames_received: u64,
    wire_recv_wait_secs: f64,
    per_endpoint: Vec<EndpointRow>,
}

#[derive(Serialize)]
struct WireDriveRow {
    wire_mode: String,
    window: usize,
    round_trips: u64,
    wall_secs: f64,
    frames_per_sec: f64,
    recv_wait_secs: f64,
}

#[derive(Serialize)]
struct Comparison {
    round_trips: u64,
    lockstep_wall_secs: f64,
    pipelined_wall_secs: f64,
    wall_speedup: f64,
    equal_round_trips: bool,
    pipelined_strictly_faster: bool,
}

/// The serial-vs-parallel determinism leg: the same fleet run twice with
/// the shard executor flipped, digests pinned equal.
#[derive(Serialize)]
struct ParallelCheck {
    serial_wall_secs: f64,
    parallel_wall_secs: f64,
    parallel_speedup: f64,
    digest_equal: bool,
}

/// The `--subscribe` leg: the same fleet re-run with the engine's push
/// watchers open on every shard (`newHeads` + all-logs + `pendingTxs`),
/// compared against the unwatched reference. Push deliveries ride the
/// existing wire, so the only extra round trips are the subscription
/// handshakes — versus the per-block head read plus range query a
/// cursor-polling watcher fleet would pay to observe the same streams.
#[derive(Serialize)]
struct SubscriptionLeg {
    wall_secs: f64,
    /// Push deliveries the watchers received across the run.
    events_observed: u64,
    /// Order-sensitive digest of the delivered stream — pinned equal
    /// across executors by the CI schema check.
    event_digest: u64,
    /// Blocks mined across all shards (the poll watcher's cost driver).
    blocks_mined: u64,
    push_round_trips: u64,
    push_virtual_secs: f64,
    baseline_round_trips: u64,
    baseline_virtual_secs: f64,
    /// Wire cost of watching: `push - baseline` round trips, i.e. the
    /// subscription setup; deliveries add none.
    push_extra_round_trips: u64,
    /// What a cursor-polling watcher fleet needs at minimum for the same
    /// coverage: one head read + one log range query per mined block.
    poll_equivalent_round_trips: u64,
    /// Watching must not perturb the simulation: virtual time and every
    /// aggregated accuracy identical to the unwatched reference.
    outcome_unchanged: bool,
}

#[derive(Serialize)]
struct Record {
    owners: usize,
    markets: usize,
    owners_per_market: usize,
    shards: usize,
    window: usize,
    /// False when `--serial` pinned the reference leg (and the socket
    /// legs) to the one-thread executor.
    parallel: bool,
    /// Hot-path wall-clock breakdown of the reference in-process leg.
    phase_times: PhaseTimes,
    parallel_check: ParallelCheck,
    runs: Vec<RunRow>,
    wire_drive: Vec<WireDriveRow>,
    pipelined_vs_lockstep: Comparison,
    /// Present when `--subscribe` ran the push-vs-poll leg; `null`
    /// otherwise.
    subscription: Option<SubscriptionLeg>,
}

struct Args {
    owners: usize,
    markets: usize,
    shards: usize,
    window: usize,
    serial: bool,
    subscribe: bool,
    trace: bool,
    json: bool,
}

fn parse_args() -> Args {
    let mut owners = 1024usize;
    let mut markets: Option<usize> = None;
    let mut shards = 4usize;
    let mut window = 64usize;
    let mut serial = false;
    let mut subscribe = false;
    let mut trace = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    let number = |args: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage(&format!("{flag} needs a positive integer")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--owners" => owners = number(&mut args, "--owners"),
            "--markets" => markets = Some(number(&mut args, "--markets")),
            "--shards" => shards = number(&mut args, "--shards"),
            "--window" => window = number(&mut args, "--window"),
            "--serial" => serial = true,
            "--subscribe" => subscribe = true,
            "--trace" => trace = true,
            "--json" => json = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if owners == 0 {
        usage("--owners must be positive");
    }
    let markets = markets.unwrap_or_else(|| (owners / 32).max(1));
    Args {
        owners,
        markets,
        shards: shards.max(1).min(markets),
        window: window.max(1),
        serial,
        subscribe,
        trace,
        json,
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("bench_fleet: {error}");
    }
    eprintln!(
        "usage: bench_fleet [--owners N] [--markets M] [--shards S] [--window W] \
         [--serial] [--subscribe] [--trace] [--json]"
    );
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}

/// The digest a run must reproduce regardless of backend and wire mode.
fn digest(report: &EngineReport) -> (f64, Vec<f64>, ProviderMetrics) {
    (
        report.total_sim_seconds,
        report
            .sessions
            .iter()
            .map(|s| s.aggregated_accuracy)
            .collect(),
        report.rpc.clone(),
    )
}

fn run_row(
    backend: &'static str,
    wire_mode: String,
    owners: usize,
    report: &EngineReport,
    wall_secs: f64,
    counters: &[WireCounter],
) -> RunRow {
    RunRow {
        backend,
        wire_mode,
        wall_secs,
        virtual_secs: report.total_sim_seconds,
        owners_per_virtual_sec: owners as f64 / report.total_sim_seconds,
        owners_per_wall_sec: owners as f64 / wall_secs.max(1e-9),
        round_trips: report.rpc.round_trips,
        rpc_requests: report.rpc.total_calls(),
        wire_frames_sent: counters.iter().map(|c| c.frames_sent()).sum(),
        wire_frames_received: counters.iter().map(|c| c.frames_received()).sum(),
        wire_recv_wait_secs: counters.iter().map(|c| c.recv_wait_secs()).sum(),
        per_endpoint: report
            .rpc_per_endpoint
            .iter()
            .enumerate()
            .map(|(endpoint, m)| EndpointRow {
                endpoint,
                round_trips: m.round_trips,
                rpc_requests: m.total_calls(),
                rpc_errors: m.total_errors(),
                rpc_virtual_secs: m.total_cost().as_secs_f64(),
            })
            .collect(),
    }
}

/// One socket-backed fleet run: a real `rpcd` daemon on an ephemeral TCP
/// port, every shard mounted over its own connection with the given wire
/// mode, wire counters watching each connection from the outside.
fn socket_run(
    configs: Vec<MarketConfig>,
    shards: usize,
    mode: WireMode,
) -> (EngineReport, f64, Vec<WireCounter>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind rpcd listener");
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        ofl_rpcd::serve_listener_with(listener, DaemonOptions::max(shards))
    });

    let profile = configs[0].profile;
    let mut counters = Vec::new();
    let started = std::time::Instant::now();
    let mm = MultiMarket::with_shards_via(configs, shards, |config: ShardConfig| {
        let (transport, counter) = RemoteEndpoint::Tcp(addr.clone())
            .connect_counted()
            .expect("connect to rpcd");
        counters.push(counter);
        ShardSpec::Mounted(
            provision_socket_provider_via(
                transport,
                config.chain.clone(),
                config.genesis.clone(),
                profile,
                DEFAULT_TX_WIRE_BYTES,
                config.knobs(),
                mode,
            )
            .expect("provision over tcp"),
        )
    });
    let (mm, report) = mm
        .run(&EngineConfig::default(), &[])
        .expect("socket-backed fleet run");
    let wall = started.elapsed().as_secs_f64();
    // Dropping the world closes every connection; the daemon drains.
    drop(mm);
    let stats = server.join().expect("rpcd server thread exits");
    assert_eq!(stats.connections as usize, shards);
    (report, wall, counters)
}

/// One leg of the wire-turnaround drive: ship `frames` backstage requests
/// through [`ofl_rpc::FrameTransport::roundtrip_many`] at the given window against
/// a freshly provisioned daemon backend, and time the whole exchange.
fn drive_one(addr: &str, frames: usize, label: String, window: usize) -> WireDriveRow {
    let (mut transport, counter) = RemoteEndpoint::Tcp(addr.to_string())
        .connect_counted()
        .expect("connect to rpcd");
    transport
        .send(&Frame::Provision {
            chain: ChainConfig::default(),
            genesis: Vec::new(),
        })
        .expect("send provision");
    assert!(matches!(
        transport.recv().expect("provision reply"),
        Frame::Provisioned
    ));
    let load: Vec<Frame> = (0..frames)
        .map(|_| Frame::Backstage(BackstageOp::Height))
        .collect();
    let started = std::time::Instant::now();
    let replies = transport
        .roundtrip_many(&load, window)
        .expect("drive frames");
    let wall = started.elapsed().as_secs_f64();
    assert!(
        replies
            .iter()
            .all(|r| matches!(r, Frame::BackstageReply(BackstageReply::Height(0)))),
        "every drive frame must come back as the height reply"
    );
    transport.send(&Frame::Shutdown).expect("send shutdown");
    assert!(matches!(transport.recv().expect("goodbye"), Frame::Goodbye));
    WireDriveRow {
        wire_mode: label,
        window,
        round_trips: frames as u64,
        wall_secs: wall,
        frames_per_sec: frames as f64 / wall.max(1e-9),
        recv_wait_secs: counter.recv_wait_secs(),
    }
}

/// The wire-turnaround drive at fleet scale: the same `owners * 16`
/// request-id frames against one daemon, first strictly lockstep
/// (window 1), then pipelined. Engine compute is out of the picture, so
/// the measured gap is exactly the per-frame turnaround that the
/// pipeline window exists to hide — the quantity the fleet runs above
/// bury under simulation work.
fn wire_drive(owners: usize, window: usize) -> (WireDriveRow, WireDriveRow) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind rpcd listener");
    let addr = listener.local_addr().unwrap().to_string();
    let server =
        std::thread::spawn(move || ofl_rpcd::serve_listener_with(listener, DaemonOptions::max(2)));
    let frames = owners * 16;
    let lockstep = drive_one(&addr, frames, "lockstep".into(), 1);
    let pipelined = drive_one(&addr, frames, format!("pipelined(w={window})"), window);
    let stats = server.join().expect("rpcd server thread exits");
    assert_eq!(stats.connections, 2);
    (lockstep, pipelined)
}

fn main() {
    let args = parse_args();
    let owners_per_market = (args.owners / args.markets).max(1);
    let owners = owners_per_market * args.markets;
    header(&format!(
        "Fleet load: {owners} owners = {} markets x {owners_per_market}, {} shards, window {}{}",
        args.markets,
        args.shards,
        args.window,
        if args.serial { ", serial executor" } else { "" }
    ));
    set_parallel(!args.serial);
    set_phase_timing(true);

    let mut base = MarketConfig::fleet(owners_per_market);
    // Size each shard's block capacity to its market load: a 10k-owner
    // fleet on 4 shards queues ~80 markets of transactions per chain, and
    // at the default 30M gas limit the backlog outlives the 2×-base-fee
    // cap (EIP-1559 climbs 9/8 per full block, so anything waiting longer
    // than ~6 full blocks gets evicted). Keep the default for fleets up to
    // 8 markets per shard — the pinned 32/256/1k digests — and grow
    // linearly past that, the L2-scale-blocks-for-L2-scale-fleets sizing.
    let markets_per_shard = args.markets.div_ceil(args.shards.max(1));
    if markets_per_shard > 8 {
        base.chain.gas_limit = base.chain.gas_limit / 8 * markets_per_shard as u64;
    }
    let configs = || MultiMarket::replica_configs(&base, args.markets, args.shards);

    println!(
        "{:>12} {:>18} {:>10} {:>12} {:>13} {:>13} {:>12} {:>12}",
        "backend",
        "wire mode",
        "wall (s)",
        "virtual (s)",
        "owners/vs",
        "owners/ws",
        "round trips",
        "wire frames"
    );
    let print = |row: &RunRow| {
        println!(
            "{:>12} {:>18} {:>10.2} {:>12.1} {:>13.1} {:>13.1} {:>12} {:>12}",
            row.backend,
            row.wire_mode,
            row.wall_secs,
            row.virtual_secs,
            row.owners_per_virtual_sec,
            row.owners_per_wall_sec,
            row.round_trips,
            row.wire_frames_sent
        );
    };

    // Reference: every shard in-process, hot-path phase timers running.
    reset_phase_times();
    let started = std::time::Instant::now();
    let (_, local) = MultiMarket::with_shards(configs(), args.shards)
        .run(&EngineConfig::default(), &[])
        .expect("in-process fleet run");
    let local_wall = started.elapsed().as_secs_f64();
    let phase_times = phase_snapshot();
    let reference = digest(&local);
    let mut runs = vec![run_row(
        "in-process",
        "local".into(),
        owners,
        &local,
        local_wall,
        &[],
    )];
    print(&runs[0]);
    println!(
        "  hot paths: sign {:.3}s, codec {:.3}s, queue {:.3}s, aggregate {:.3}s, wire {:.3}s",
        phase_times.sign_ns as f64 / 1e9,
        phase_times.codec_ns as f64 / 1e9,
        phase_times.queue_ns as f64 / 1e9,
        phase_times.aggregate_ns as f64 / 1e9,
        phase_times.wire_ns as f64 / 1e9,
    );

    // Determinism leg: the same fleet with the shard executor flipped.
    // Parallel workers merge results in endpoint order, so the digest —
    // virtual time, accuracies, every metered counter — must be
    // bit-identical to the strictly serial run.
    set_parallel(args.serial);
    let flip_started = std::time::Instant::now();
    let (_, flipped) = MultiMarket::with_shards(configs(), args.shards)
        .run(&EngineConfig::default(), &[])
        .expect("flipped-executor fleet run");
    let flip_wall = flip_started.elapsed().as_secs_f64();
    set_parallel(!args.serial);
    assert_eq!(
        digest(&flipped),
        reference,
        "parallel and serial shard execution must produce bit-identical fleets"
    );
    let (serial_wall, parallel_wall) = if args.serial {
        (local_wall, flip_wall)
    } else {
        (flip_wall, local_wall)
    };
    let parallel_check = ParallelCheck {
        serial_wall_secs: serial_wall,
        parallel_wall_secs: parallel_wall,
        parallel_speedup: serial_wall / parallel_wall.max(1e-9),
        digest_equal: true,
    };
    println!(
        "  executor: serial {serial_wall:.2}s vs parallel {parallel_wall:.2}s -> {:.2}x, digests equal",
        parallel_check.parallel_speedup
    );

    let socket_modes = [
        ("jumbo".to_string(), WireMode::Jumbo),
        ("lockstep".to_string(), WireMode::Lockstep),
        (
            format!("pipelined(w={})", args.window),
            WireMode::Pipelined {
                window: args.window,
            },
        ),
    ];
    for (label, mode) in socket_modes {
        let (report, wall, counters) = socket_run(configs(), args.shards, mode);
        assert_eq!(
            digest(&report),
            reference,
            "a {label} socket backend must reproduce the in-process run bit-identically"
        );
        let row = run_row("socket", label, owners, &report, wall, &counters);
        print(&row);
        runs.push(row);
    }

    // The engine runs above carry heavy simulation work per request, which
    // buries the per-frame turnaround in compute noise; the fleet rows pin
    // *identical digests and identical frame counts* across wire modes.
    // The drive below measures the turnaround itself: the same frame load
    // at fleet scale, window 1 vs window N, nothing else on the wire.
    assert_eq!(
        (runs[2].round_trips, runs[2].wire_frames_sent),
        (runs[3].round_trips, runs[3].wire_frames_sent),
        "lockstep and pipelined fleet runs must exchange the same frames at the same metered round trips"
    );
    let (drive_lockstep, drive_pipelined) = wire_drive(owners, args.window);
    let comparison = Comparison {
        round_trips: drive_lockstep.round_trips,
        lockstep_wall_secs: drive_lockstep.wall_secs,
        pipelined_wall_secs: drive_pipelined.wall_secs,
        wall_speedup: drive_lockstep.wall_secs / drive_pipelined.wall_secs.max(1e-9),
        equal_round_trips: drive_lockstep.round_trips == drive_pipelined.round_trips,
        pipelined_strictly_faster: drive_pipelined.wall_secs < drive_lockstep.wall_secs,
    };
    println!(
        "\nwire drive ({} frames): lockstep {:.3}s ({:.0} frames/s) vs pipelined {:.3}s \
         ({:.0} frames/s) -> {:.2}x",
        comparison.round_trips,
        drive_lockstep.wall_secs,
        drive_lockstep.frames_per_sec,
        drive_pipelined.wall_secs,
        drive_pipelined.frames_per_sec,
        comparison.wall_speedup,
    );
    assert!(
        comparison.equal_round_trips,
        "the two drive legs must ship the same number of frames"
    );
    assert!(
        comparison.pipelined_strictly_faster,
        "pipelining must strictly cut wall-clock time at equal round trips \
         (lockstep {:.3}s, pipelined {:.3}s)",
        comparison.lockstep_wall_secs, comparison.pipelined_wall_secs
    );

    // The push-vs-poll leg: the same fleet with the engine's shard
    // watchers open. Deliveries ride replies already crossing the wire, so
    // the watched run's extra round trips are the subscription handshakes
    // alone — pitted against the two-RPCs-per-mined-block floor of a
    // cursor-polling watcher fleet with the same coverage.
    let subscription = args.subscribe.then(|| {
        let watched_engine = EngineConfig {
            watch_events: true,
            ..EngineConfig::default()
        };
        let started = std::time::Instant::now();
        let (_, watched) = MultiMarket::with_shards(configs(), args.shards)
            .run(&watched_engine, &[])
            .expect("watched fleet run");
        let wall = started.elapsed().as_secs_f64();
        let outcome_unchanged = watched.total_sim_seconds == local.total_sim_seconds
            && watched
                .sessions
                .iter()
                .map(|s| s.aggregated_accuracy)
                .eq(local.sessions.iter().map(|s| s.aggregated_accuracy));
        let leg = SubscriptionLeg {
            wall_secs: wall,
            events_observed: watched.events_observed,
            event_digest: watched.event_digest,
            blocks_mined: watched.blocks_mined,
            push_round_trips: watched.rpc.round_trips,
            push_virtual_secs: watched.total_sim_seconds,
            baseline_round_trips: local.rpc.round_trips,
            baseline_virtual_secs: local.total_sim_seconds,
            push_extra_round_trips: watched
                .rpc
                .round_trips
                .saturating_sub(local.rpc.round_trips),
            poll_equivalent_round_trips: 2 * watched.blocks_mined,
            outcome_unchanged,
        };
        assert!(
            leg.events_observed > 0,
            "a watched fleet run must deliver push events"
        );
        assert!(
            leg.outcome_unchanged,
            "opening subscriptions must not change virtual time or accuracies"
        );
        println!(
            "\nsubscription leg: {} events over {} blocks, push +{} round trips vs \
             poll-equivalent {} ({:.1}x cheaper), virtual time unchanged at {:.1}s",
            leg.events_observed,
            leg.blocks_mined,
            leg.push_extra_round_trips,
            leg.poll_equivalent_round_trips,
            leg.poll_equivalent_round_trips as f64 / (leg.push_extra_round_trips.max(1)) as f64,
            leg.push_virtual_secs,
        );
        leg
    });

    // The traced leg: the same fleet with the ofl-trace collector running.
    // Two invariants ride on it — tracing must not perturb the simulation
    // (digest unchanged), and the JSONL artifact is a pure function of the
    // seed (the gzip container uses MTIME=0 stored blocks, so the .gz
    // bytes are deterministic too).
    if args.trace {
        let tracer = ofl_trace::start_tracing();
        let started = std::time::Instant::now();
        let (_, traced) = MultiMarket::with_shards(configs(), args.shards)
            .run(&EngineConfig::default(), &[])
            .expect("traced fleet run");
        let wall = started.elapsed().as_secs_f64();
        let trace = ofl_trace::stop_tracing(tracer);
        assert_eq!(
            digest(&traced),
            reference,
            "tracing must not perturb the simulation"
        );
        assert_eq!(trace.dropped, 0, "collector lanes must not overflow");
        assert!(!trace.events.is_empty(), "a traced fleet run emits events");
        let jsonl = trace.to_jsonl();
        let gz = ofl_trace::gzip::gzip_stored(jsonl.as_bytes());
        let path =
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../TRACE_fleet.jsonl.gz");
        std::fs::write(&path, &gz).expect("write trace artifact");
        println!(
            "\ntraced leg: {} events, 0 dropped, {wall:.2}s, digest unchanged -> {}",
            trace.events.len(),
            path.display()
        );
    }

    let record = Record {
        owners,
        markets: args.markets,
        owners_per_market,
        shards: args.shards,
        window: args.window,
        parallel: !args.serial,
        phase_times,
        parallel_check,
        runs,
        wire_drive: vec![drive_lockstep, drive_pipelined],
        pipelined_vs_lockstep: comparison,
        subscription,
    };
    write_bench("fleet", &record);
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&record).expect("serializable record")
        );
    }
}
