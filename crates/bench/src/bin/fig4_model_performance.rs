//! **Figure 4** — Single local model quality among 10 model owners.
//!
//! The paper trains 10 owners on non-IID MNIST partitions (PFNM
//! partitioning, MLP 784-100-10, batch 64, lr 0.001, 10 local epochs) and
//! reports each local model's test accuracy against the PFNM-aggregated
//! model's 93.87 %, with the worst local model 58.87 points below the
//! aggregate.
//!
//! Run: `cargo run -p ofl-bench --release --bin fig4_model_performance`

use ofl_bench::{bar, header, write_record};
use ofl_core::config::MarketConfig;
use ofl_core::market::Marketplace;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    local_accuracies: Vec<f64>,
    aggregated_accuracy: f64,
    worst_local: f64,
    margin_over_worst_points: f64,
    global_neurons: usize,
    paper_aggregated_accuracy: f64,
    paper_margin_points: f64,
}

fn main() {
    header("Figure 4: single local model quality among 10 model owners");
    let config = MarketConfig::default();
    println!(
        "setup: {} owners, MLP {:?}, batch {}, lr 0.001, {} local epochs, Dirichlet non-IID",
        config.n_owners, config.train.dims, config.train.batch_size, config.train.epochs
    );
    let (_, report) = Marketplace::run(config).expect("session");

    println!("\n{:<8} {:>14}", "Model", "Test accuracy");
    for (i, acc) in report.local_accuracies.iter().enumerate() {
        println!("{:<8} {:>13.2} %  {}", i, acc * 100.0, bar(*acc, 40));
    }
    println!(
        "{:<8} {:>13.2} %  {}  <- PFNM one-shot aggregate",
        "AGG",
        report.aggregated_accuracy * 100.0,
        bar(report.aggregated_accuracy, 40)
    );
    let worst = report.worst_local_accuracy();
    let margin = (report.aggregated_accuracy - worst) * 100.0;
    println!(
        "\naggregate − worst local = {margin:.2} points (paper: 58.87 points, aggregate 93.87 %)"
    );
    println!(
        "global hidden neurons after matching: {}",
        report.global_neurons
    );

    write_record(
        "fig4_model_performance",
        &Record {
            local_accuracies: report.local_accuracies.clone(),
            aggregated_accuracy: report.aggregated_accuracy,
            worst_local: worst,
            margin_over_worst_points: margin,
            global_neurons: report.global_neurons,
            paper_aggregated_accuracy: 0.9387,
            paper_margin_points: 58.87,
        },
    );
}
