//! **Ablation A2** — CID indirection vs storing models on-chain.
//!
//! Step 4 of the paper: sending a CID "conserves on-chain space, with each
//! model occupying only 256 bits. As a comparison, at least Kb-level storage
//! is needed if directly saving the model on the blockchain, which proves to
//! be impractical within the ETH network."
//!
//! We measure `uploadCid` gas for growing payload sizes on the real EVM (the
//! contract's long-string path is a generic blob store), fit the per-byte
//! cost, and extrapolate to the paper's 317 KB model.
//!
//! Run: `cargo run -p ofl-bench --release --bin ablation_storage_cost`

use ofl_bench::{header, write_record};
use ofl_eth::chain::{Chain, ChainConfig};
use ofl_eth::contracts::{cid_storage_init_code, CidStorage};
use ofl_eth::wallet::Wallet;
use ofl_primitives::u256::U256;
use ofl_primitives::{format_eth, wei_per_eth};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    payload_bytes: usize,
    gas_used: u64,
    fee_eth: String,
}

#[derive(Serialize)]
struct Record {
    cid_point: Point,
    sweep: Vec<Point>,
    gas_per_byte: f64,
    model_bytes: usize,
    projected_model_gas: u64,
    block_gas_limit: u64,
    blocks_needed: f64,
    fee_ratio_model_over_cid: f64,
}

fn main() {
    header("Ablation A2: on-chain CID (32 B digest) vs on-chain model (317 KB)");

    let wallet = Wallet::from_seed("storage-ablation", 1);
    let owner = wallet.addresses()[0];
    let mut chain = Chain::new(
        ChainConfig::default(),
        &[(owner, wei_per_eth().wrapping_mul(&U256::from(100u64)))],
    );
    let hash = wallet
        .send(
            &mut chain,
            &owner,
            None,
            U256::ZERO,
            cid_storage_init_code(),
        )
        .expect("deploy");
    chain.mine_block(12);
    let contract = chain
        .receipt(&hash)
        .expect("mined")
        .contract_address
        .expect("created");

    let price = chain.base_fee().low_u64() as f64 + 1.5e9;

    // Measured sweep: a CID-sized string, then growing blobs.
    let mut sweep = Vec::new();
    let mut time = 12u64;
    let measure = |chain: &mut Chain, time: &mut u64, payload: usize| -> (u64, U256) {
        let blob: String = "a".repeat(payload);
        let hash = wallet
            .send(
                chain,
                &owner,
                Some(contract),
                U256::ZERO,
                CidStorage::upload_cid_calldata(&blob),
            )
            .expect("upload blob");
        *time += 12;
        chain.mine_block(*time);
        let r = chain.receipt(&hash).expect("mined").clone();
        assert!(r.is_success(), "blob of {payload} B failed");
        (r.gas_used, r.fee)
    };

    let (cid_gas, cid_fee) = measure(&mut chain, &mut time, 46); // CIDv0 string
    let cid_point = Point {
        payload_bytes: 46,
        gas_used: cid_gas,
        fee_eth: format_eth(&cid_fee, 8),
    };
    println!("\nmeasured on the EVM (long-string storage path):");
    println!("{:<16} {:>12} {:>14}", "Payload (B)", "Gas", "Fee (ETH)");
    println!(
        "{:<16} {:>12} {:>14}   <- 46-byte CID (what OFL-W3 stores)",
        46,
        cid_gas,
        format_eth(&cid_fee, 8)
    );
    // 16 KiB is the largest blob whose gas (≈12 M) still fits a block after
    // the wallet's 1.5× limit margin; beyond that the chain itself refuses —
    // which is the point of this ablation.
    for payload in [256usize, 1024, 4096, 8_192, 16_384] {
        let (gas, fee) = measure(&mut chain, &mut time, payload);
        println!("{payload:<16} {gas:>12} {:>14}", format_eth(&fee, 8));
        sweep.push(Point {
            payload_bytes: payload,
            gas_used: gas,
            fee_eth: format_eth(&fee, 8),
        });
    }

    // Per-byte slope from the two largest measurements.
    let a = &sweep[sweep.len() - 2];
    let b = &sweep[sweep.len() - 1];
    let gas_per_byte =
        (b.gas_used - a.gas_used) as f64 / (b.payload_bytes - a.payload_bytes) as f64;
    let model_bytes = 318_064usize; // the paper's 317 KB model
    let projected = b.gas_used as f64 + gas_per_byte * (model_bytes - b.payload_bytes) as f64;
    let block_limit = chain.config().gas_limit;
    let blocks_needed = projected / block_limit as f64;
    let ratio = projected / cid_gas as f64;

    println!("\nper-byte storage cost: {gas_per_byte:.1} gas/byte");
    println!(
        "projected cost to store the 317 KB model on-chain: {:.0} gas ≈ {:.4} ETH",
        projected,
        projected * price / 1e18
    );
    println!(
        "  = {blocks_needed:.1}× the {block_limit} block gas limit → cannot fit in any block \
         (the paper: \"impractical within the ETH network\")"
    );
    println!("  = {ratio:.0}× the cost of storing the CID");

    write_record(
        "ablation_storage_cost",
        &Record {
            cid_point,
            sweep,
            gas_per_byte,
            model_bytes,
            projected_model_gas: projected as u64,
            block_gas_limit: block_limit,
            blocks_needed,
            fee_ratio_model_over_cid: ratio,
        },
    );
}
