//! **Figure 6** — Test accuracy under Leave-one-out (LOO).
//!
//! For each owner i the buyer re-aggregates the other nine models and
//! evaluates; high accuracy-without-i means owner i contributed little
//! (the paper finds model 7 "the most useless").
//!
//! Run: `cargo run -p ofl-bench --release --bin fig6_loo`

use ofl_bench::{bar, header, write_record};
use ofl_core::config::MarketConfig;
use ofl_core::market::Marketplace;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    aggregated_accuracy: f64,
    loo_drop_accuracies: Vec<f64>,
    contributions: Vec<f64>,
    least_useful_owner: usize,
}

fn main() {
    header("Figure 6: test accuracy when each model is dropped (LOO)");
    let config = MarketConfig::default();
    let (_, report) = Marketplace::run(config).expect("session");

    println!(
        "\nfull aggregate: {:.2} %\n",
        report.aggregated_accuracy * 100.0
    );
    println!(
        "{:<8} {:>18} {:>15}",
        "Model", "Acc. w/o model", "Contribution"
    );
    for (i, (drop, contrib)) in report
        .loo_drop_accuracies
        .iter()
        .zip(&report.contributions)
        .enumerate()
    {
        println!(
            "{:<8} {:>16.2} %  {:>+13.4}  {}",
            i,
            drop * 100.0,
            contrib,
            bar(*drop, 40)
        );
    }
    let least = report.least_useful_owner();
    println!(
        "\nleast useful owner: model {least} (highest accuracy when dropped) — the paper finds model 7"
    );

    write_record(
        "fig6_loo",
        &Record {
            aggregated_accuracy: report.aggregated_accuracy,
            loo_drop_accuracies: report.loo_drop_accuracies.clone(),
            contributions: report.contributions.clone(),
            least_useful_owner: least,
        },
    );
}
